"""Synthetic Zillow substitute: the properties the paper's Figure 3 needs."""

import numpy as np
from scipy import stats as scipy_stats

from repro.data import ZILLOW_ATTRIBUTES, generate_zillow, generate_zillow_raw


def test_attribute_schema():
    # The paper: "2M records with five attributes: number of bathrooms,
    # number of bedrooms, living area, price, and lot area".
    assert ZILLOW_ATTRIBUTES == (
        "bathrooms", "bedrooms", "living_area", "price", "lot_area"
    )
    raw = generate_zillow_raw(100, seed=80)
    assert raw.shape == (100, 5)


def test_room_counts_are_small_integers():
    raw = generate_zillow_raw(2000, seed=81)
    bathrooms, bedrooms = raw[:, 0], raw[:, 1]
    assert np.array_equal(bathrooms, np.round(bathrooms))
    assert np.array_equal(bedrooms, np.round(bedrooms))
    assert bathrooms.min() >= 1 and bathrooms.max() <= 6
    assert bedrooms.min() >= 1 and bedrooms.max() <= 8


def test_continuous_attributes_are_right_skewed():
    # "Zillow is highly skewed" is the paper's explanation of Figure 3's
    # CPU results; the substitute must preserve heavy right tails.
    raw = generate_zillow_raw(20000, seed=82)
    for column in (2, 3, 4):  # living area, price, lot area
        skewness = scipy_stats.skew(raw[:, column])
        assert skewness > 1.0, ZILLOW_ATTRIBUTES[column]


def test_size_attributes_positively_correlated():
    raw = generate_zillow_raw(20000, seed=83)
    log_price = np.log(raw[:, 3])
    log_area = np.log(raw[:, 2])
    assert np.corrcoef(log_area, log_price)[0, 1] > 0.4
    assert np.corrcoef(raw[:, 1], log_area)[0, 1] > 0.4
    # Lot area is only loosely coupled.
    lot_corr = np.corrcoef(np.log(raw[:, 4]), log_price)[0, 1]
    assert lot_corr < 0.4


def test_normalized_dataset_in_unit_cube_with_price_flipped():
    ds = generate_zillow(3000, seed=84)
    assert ds.dims == 5
    assert ds.matrix.min() >= 0.0 and ds.matrix.max() <= 1.0
    raw = generate_zillow_raw(3000, seed=84)
    cheapest = int(np.argmin(raw[:, 3]))
    most_expensive = int(np.argmax(raw[:, 3]))
    # Cheaper is better: the cheapest home gets price-score 1.
    assert ds.vector(cheapest)[3] == 1.0
    assert ds.vector(most_expensive)[3] == 0.0


def test_determinism():
    a = generate_zillow(500, seed=85)
    b = generate_zillow(500, seed=85)
    assert np.array_equal(a.matrix, b.matrix)
