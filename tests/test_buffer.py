"""Unit tests for the LRU buffer pool (the paper's 2% write-back buffer)."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, DiskManager, Page


def make_disk_with_pages(n, page_size=32):
    disk = DiskManager(page_size=page_size)
    ids = []
    for i in range(n):
        page_id = disk.allocate()
        disk.write_page(Page(page_id, page_size, bytes([i]) * 4))
        ids.append(page_id)
    disk.stats.reset()
    return disk, ids


def test_miss_then_hit():
    disk, ids = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity=2)
    pool.get_page(ids[0])
    assert disk.stats.page_reads == 1
    pool.get_page(ids[0])
    assert disk.stats.page_reads == 1  # second access is a hit
    assert disk.stats.buffer_hits == 1


def test_lru_eviction_order():
    disk, ids = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity=2)
    pool.get_page(ids[0])
    pool.get_page(ids[1])
    pool.get_page(ids[0])          # refresh 0: now 1 is LRU
    pool.get_page(ids[2])          # evicts 1
    assert pool.is_resident(ids[0])
    assert not pool.is_resident(ids[1])
    assert pool.is_resident(ids[2])
    assert disk.stats.buffer_evictions == 1


def test_clean_eviction_does_not_write():
    disk, ids = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity=1)
    pool.get_page(ids[0])
    pool.get_page(ids[1])
    assert disk.stats.page_writes == 0


def test_dirty_eviction_writes_back():
    disk, ids = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity=1)
    pool.put_page(Page(ids[0], 32, b"dirty"))
    assert disk.stats.page_writes == 0  # write-back is lazy
    pool.get_page(ids[1])               # evicts the dirty frame
    assert disk.stats.page_writes == 1
    assert disk.read_page(ids[0]).data == b"dirty"


def test_put_page_hit_updates_in_place():
    disk, ids = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity=2)
    pool.get_page(ids[0])
    pool.put_page(Page(ids[0], 32, b"v2"))
    assert pool.get_page(ids[0]).data == b"v2"
    assert disk.stats.page_writes == 0  # still only in the pool


def test_flush_writes_dirty_frames_once():
    disk, ids = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity=2)
    pool.put_page(Page(ids[0], 32, b"a"))
    pool.put_page(Page(ids[1], 32, b"b"))
    pool.flush()
    assert disk.stats.page_writes == 2
    pool.flush()  # nothing dirty anymore
    assert disk.stats.page_writes == 2


def test_repeated_updates_cost_one_physical_write():
    # The point of write-back: a hot page updated many times hits disk once.
    disk, ids = make_disk_with_pages(1)
    pool = BufferPool(disk, capacity=1)
    for i in range(50):
        pool.put_page(Page(ids[0], 32, bytes([i])))
    pool.flush()
    assert disk.stats.page_writes == 1


def test_discard_drops_without_writeback():
    disk, ids = make_disk_with_pages(1)
    pool = BufferPool(disk, capacity=1)
    pool.put_page(Page(ids[0], 32, b"doomed"))
    pool.discard(ids[0])
    pool.flush()
    assert disk.stats.page_writes == 0


def test_clear_flushes_and_empties():
    disk, ids = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity=2)
    pool.put_page(Page(ids[0], 32, b"z"))
    pool.clear()
    assert pool.num_resident == 0
    assert disk.read_page(ids[0]).data == b"z"


def test_resize_shrink_evicts_lru():
    disk, ids = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity=3)
    for page_id in ids:
        pool.get_page(page_id)
    pool.resize(1)
    assert pool.num_resident == 1
    assert pool.is_resident(ids[2])  # the most recently used survives


def test_fraction_of_disk_sizing():
    disk, _ = make_disk_with_pages(200)
    pool = BufferPool.fraction_of_disk(disk, fraction=0.02)
    assert pool.capacity == 4  # 2% of 200
    small = BufferPool.fraction_of_disk(disk, fraction=0.001, minimum=4)
    assert small.capacity == 4  # floor applies


def test_invalid_capacity_and_fraction():
    disk, _ = make_disk_with_pages(1)
    with pytest.raises(StorageError):
        BufferPool(disk, capacity=0)
    with pytest.raises(StorageError):
        BufferPool.fraction_of_disk(disk, fraction=0.0)
    pool = BufferPool(disk, capacity=1)
    with pytest.raises(StorageError):
        pool.resize(0)
