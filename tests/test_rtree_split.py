"""Split strategy unit tests (R* topological split and quadratic split)."""

import pytest

from repro.errors import RTreeError
from repro.geometry import MBR
from repro.rtree import Entry
from repro.rtree.split import quadratic_split, rstar_split


def entries_from_points(points):
    return [Entry.for_object(i, p) for i, p in enumerate(points)]


@pytest.mark.parametrize("split_fn", [rstar_split, quadratic_split])
def test_split_partitions_all_entries(split_fn):
    entries = entries_from_points(
        [(x / 12, (x * 7 % 12) / 12) for x in range(12)]
    )
    group1, group2 = split_fn(entries, min_fill=4)
    assert len(group1) + len(group2) == 12
    assert len(group1) >= 4 and len(group2) >= 4
    ids = sorted(e.child for e in group1 + group2)
    assert ids == list(range(12))


@pytest.mark.parametrize("split_fn", [rstar_split, quadratic_split])
def test_split_respects_min_fill(split_fn):
    entries = entries_from_points([(x / 9, 0.5) for x in range(9)])
    group1, group2 = split_fn(entries, min_fill=3)
    assert min(len(group1), len(group2)) >= 3


@pytest.mark.parametrize("split_fn", [rstar_split, quadratic_split])
def test_too_few_entries_rejected(split_fn):
    entries = entries_from_points([(0.1, 0.1), (0.9, 0.9)])
    with pytest.raises(RTreeError):
        split_fn(entries, min_fill=2)


def test_rstar_separates_two_clusters_cleanly():
    left = [(0.05 + i * 0.01, 0.5 + i * 0.01) for i in range(5)]
    right = [(0.9 + i * 0.01, 0.4 + i * 0.01) for i in range(5)]
    entries = entries_from_points(left + right)
    group1, group2 = rstar_split(entries, min_fill=3)
    sides = [
        {e.child < 5 for e in group} for group in (group1, group2)
    ]
    # Each group contains entries from exactly one cluster.
    assert sides[0] in ({True}, {False})
    assert sides[1] in ({True}, {False})
    assert sides[0] != sides[1]


def test_rstar_split_minimizes_overlap():
    # A grid: the chosen split must have zero overlap between groups.
    entries = entries_from_points(
        [(x / 4 + 0.01, y / 4 + 0.01) for x in range(4) for y in range(4)]
    )
    group1, group2 = rstar_split(entries, min_fill=5)
    mbr1 = MBR.union_all(e.mbr for e in group1)
    mbr2 = MBR.union_all(e.mbr for e in group2)
    assert mbr1.overlap_area(mbr2) == pytest.approx(0.0)


def test_splits_work_with_branch_entries():
    boxes = [
        Entry(MBR((0.1 * i, 0.0), (0.1 * i + 0.05, 0.3)), i)
        for i in range(8)
    ]
    for split_fn in (rstar_split, quadratic_split):
        group1, group2 = split_fn(boxes, min_fill=3)
        assert len(group1) + len(group2) == 8


def test_split_deterministic():
    entries = entries_from_points(
        [((x * 13 % 17) / 17, (x * 5 % 17) / 17) for x in range(15)]
    )
    first = rstar_split(entries, min_fill=5)
    second = rstar_split(entries, min_fill=5)
    assert [e.child for e in first[0]] == [e.child for e in second[0]]
    assert [e.child for e in first[1]] == [e.child for e in second[1]]
