"""Regression tests for the concurrency defects the lint rules caught.

Each test here pins one real finding from the first ``repro.lint`` run
over the serving layer (see ``docs/guides/static-analysis.md``): the
fix is in the engine, the test proves the *behaviour*, and the lint
suite (``test_lint_self.py``) proves the pattern can't silently come
back.
"""

import asyncio
import threading

import pytest

import repro
from repro.core import Matching, MatchPair
from repro.engine.async_service import AsyncMatchingService
from repro.engine.cache import ResultCache
from repro.errors import (
    DimensionalityError,
    GeometryError,
    MatchingError,
    ReproError,
    RTreeError,
)
from repro.geometry import MBR
from repro.prefs import generate_preferences


def test_aclose_teardown_does_not_block_the_event_loop():
    """async-safety finding: ``aclose`` called the synchronous
    ``executor.shutdown(wait=True)`` / ``service.close()`` directly on
    the loop. A slow drain froze every other coroutine; the fix routes
    both through ``run_in_executor``. The heartbeat below can only tick
    — and therefore release the slow close — if the loop stays live
    while ``aclose`` waits."""
    objects = repro.generate_independent(n=60, dims=2, seed=7)
    service = repro.MatchingService(objects, algorithm="sb",
                                    backend="memory")
    release = threading.Event()
    original_close = service.close

    def slow_close():
        assert release.wait(5.0), "event loop never ticked during aclose"
        original_close()

    service.close = slow_close

    async def run():
        front = AsyncMatchingService(service, max_wait_ms=0)
        await front.submit(generate_preferences(3, 2, seed=9))
        heartbeats = 0

        async def heartbeat():
            nonlocal heartbeats
            while not release.is_set():
                heartbeats += 1
                if heartbeats >= 3:
                    release.set()
                await asyncio.sleep(0.01)

        beat = asyncio.get_running_loop().create_task(heartbeat())
        await front.aclose(close_service=True)
        await beat
        return heartbeats

    assert asyncio.run(run()) >= 3


def test_invalidate_takes_the_serve_lock():
    """lock-guard finding: ``invalidate`` (and the session-event
    callback) bumped ``objects_version`` without ``_serve_lock``, so a
    concurrent submit could pair a pre-churn result with a post-churn
    cache key. The bump must now block behind a held serve lock."""
    objects = repro.generate_independent(n=40, dims=2, seed=11)
    prepared = repro.plan(algorithm="sb", backend="memory").prepare(objects)
    try:
        acquired = threading.Event()
        release = threading.Event()

        def hold_lock():
            with prepared._serve_lock:
                acquired.set()
                release.wait(5.0)

        holder = threading.Thread(target=hold_lock)
        holder.start()
        assert acquired.wait(5.0)
        before = prepared.objects_version

        bumper = threading.Thread(target=prepared.invalidate)
        bumper.start()
        bumper.join(0.2)
        assert bumper.is_alive(), "invalidate did not wait for the serve lock"
        assert prepared.objects_version == before

        release.set()
        bumper.join(5.0)
        holder.join(5.0)
        assert not bumper.is_alive()
        assert prepared.objects_version == before + 1
    finally:
        release.set()
        prepared.close()


def test_session_event_bump_takes_the_serve_lock():
    """Same defect as :func:`test_invalidate_takes_the_serve_lock`, via
    the dynamic-session callback path: an insert routed through a bound
    session must also serialize its version bump with serving."""
    objects = repro.generate_independent(n=40, dims=2, seed=13)
    prepared = repro.plan(algorithm="sb", backend="memory").prepare(objects)
    try:
        functions = generate_preferences(3, 2, seed=14)
        session = prepared.open_session(functions)
        before = prepared.objects_version

        acquired = threading.Event()
        release = threading.Event()

        def hold_lock():
            with prepared._serve_lock:
                acquired.set()
                release.wait(5.0)

        holder = threading.Thread(target=hold_lock)
        holder.start()
        assert acquired.wait(5.0)

        inserter = threading.Thread(
            target=session.insert_object, args=(9999, (0.5, 0.5)),
        )
        inserter.start()
        inserter.join(0.2)
        blocked_version = prepared.objects_version

        release.set()
        inserter.join(5.0)
        holder.join(5.0)
        assert not inserter.is_alive()
        assert blocked_version == before
        assert prepared.objects_version == before + 1
    finally:
        release.set()
        prepared.close()


def test_service_repr_synchronizes_with_serving_state():
    """lock-guard finding: ``MatchingService.__repr__`` read the
    ``requests`` counter (guarded by ``_state_cv``) lock-free. Render
    it from one thread while another serves — no exception, and the
    final repr reflects every completed submission."""
    objects = repro.generate_independent(n=80, dims=2, seed=17)
    with repro.MatchingService(objects, algorithm="sb",
                               backend="memory") as service:
        errors = []
        total = 60

        def churn():
            try:
                for s in range(total):
                    service.submit(
                        generate_preferences(2, 2, seed=200 + s % 5)
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def render():
            try:
                for _ in range(300):
                    assert "MatchingService(" in repr(service)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=churn),
                   threading.Thread(target=render)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert f"requests={total}" in repr(service)


def test_public_surface_raises_typed_errors_only():
    """exception-contract findings: the first whole-program run caught
    ``ValueError``/``AssertionError`` escaping through the public
    ``__all__`` surface — a duplicate pair in :class:`Matching`, a bad
    cache size, inverted/empty MBRs, region-dimensionality drift. Every
    one of those paths must now raise a :class:`ReproError` subclass,
    so ``except ReproError`` actually catches what the library throws."""
    with pytest.raises(MatchingError):
        Matching([MatchPair(1, 10, 0.5), MatchPair(1, 11, 0.6)])
    with pytest.raises(MatchingError):
        Matching([MatchPair(1, 10, 0.5), MatchPair(2, 10, 0.6)])
    with pytest.raises(MatchingError):
        ResultCache(maxsize=-1)
    with pytest.raises(GeometryError):
        MBR((1.0, 0.0), (0.0, 1.0))
    with pytest.raises(GeometryError):
        MBR.union_all([])
    objects = repro.generate_independent(n=10, dims=3, seed=3)
    with pytest.raises(MatchingError, match="not both"):
        repro.MatchingService(
            objects, repro.MatchingConfig(backend="memory"),
            plan=repro.plan(backend="memory"),
        )
    # Each of those is catchable as the one documented base class.
    for exc in (MatchingError, GeometryError, RTreeError,
                DimensionalityError):
        assert issubclass(exc, ReproError)


def test_cache_repr_is_consistent_under_concurrent_mutation():
    """lock-guard finding: ``ResultCache.__repr__`` read the entry map
    and counters without the lock. Now it snapshots under the lock —
    hammer it from a mutating thread and it must never raise."""
    cache = ResultCache(maxsize=8)
    stop = threading.Event()
    errors = []

    def churn():
        i = 0
        while not stop.is_set():
            cache.put(i % 32, i)
            cache.get((i + 1) % 32)
            i += 1

    def render():
        try:
            for _ in range(500):
                text = repr(cache)
                assert text.startswith("ResultCache(")
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    writer = threading.Thread(target=churn)
    reader = threading.Thread(target=render)
    writer.start()
    reader.start()
    reader.join(10.0)
    stop.set()
    writer.join(5.0)
    assert not errors
