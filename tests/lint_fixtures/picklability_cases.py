"""picklability fixtures: process-boundary objects that do / do not
reconstruct under the default pickler."""

from dataclasses import dataclass


class BadShardError(Exception):  # EXPECT: picklability
    """Custom __init__ signature, no __reduce__: unpickling replays
    self.args into the wrong signature and kills the process pool."""

    def __init__(self, shard, reason):
        super().__init__(f"shard {shard} failed: {reason}")
        self.shard = shard


class GoodShardError(Exception):
    """Same shape, but reconstructs from positional args."""

    def __init__(self, shard, reason):
        super().__init__(f"shard {shard} failed: {reason}")
        self.shard = shard
        self.reason = reason

    def __reduce__(self):
        return (self.__class__, (self.shard, self.reason))


class PlainMessageError(Exception):
    """No custom __init__ at all: default reduction just works."""


class BadBoundary:  # lint: pickled; EXPECT: picklability
    """Marked as crossing the process boundary, but neither a
    dataclass nor reconstructible."""

    def __init__(self, payload):
        self.payload = payload


@dataclass
class GoodBoundary:  # lint: pickled
    """Dataclasses round-trip under the default pickler."""

    payload: int = 0


class GoodStatefulBoundary:  # lint: pickled
    """Hand-rolled, but pickle-aware via __getstate__."""

    def __init__(self, payload):
        self.payload = payload

    def __getstate__(self):
        return {"payload": self.payload}


def bad_fan_out(pool, items):
    return pool.map(lambda item: item + 1, items)  # EXPECT: picklability


def _work(item):
    return item + 1


def good_fan_out(pool, executor, items):
    ordered = pool.map(_work, items)
    executor.submit(_work, items[0])
    return ordered


def non_pool_receivers_are_ignored(stream, items):
    return stream.map(lambda item: item + 1, items)
