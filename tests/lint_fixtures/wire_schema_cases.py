"""wire-schema fixtures: dataclasses versus their codec functions.

``GoodRecord`` round-trips exactly (including a ``# wire:`` alias and
a declared envelope extra) and must stay silent. ``DriftedRecord``
shows both drift directions: its encoder misses a field that was
added later, its decoder reads a key nothing declares.
``OneWayRecord`` has an encoder but no decoder anywhere, which is a
finding on its own — one-way wire types cannot round-trip.
"""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class GoodRecord:
    """Round-trips exactly."""

    ident: int  # wire: id
    payload: Tuple[float, ...]
    note: str = ""


@dataclass(frozen=True)
class DriftedRecord:
    """Its codecs below drifted in both directions."""

    ident: int
    added_later: float = 0.0


@dataclass(frozen=True)
class OneWayRecord:
    """Encoded, never decoded."""

    value: int


def encode_good(record):  # lint: encodes=GoodRecord extra=kind
    return {
        "kind": "good",
        "id": record.ident,
        "payload": list(record.payload),
        "note": record.note,
    }


def decode_good(payload):  # lint: decodes=GoodRecord extra=kind
    if payload["kind"] != "good":
        return None
    return GoodRecord(
        payload["id"],
        tuple(payload["payload"]),
        payload.get("note", ""),
    )


def encode_drifted(record):  # lint: encodes=DriftedRecord  # EXPECT: wire-schema
    # Misses added_later: the exact added-field drift the rule exists
    # to catch.
    return {"ident": record.ident}


def decode_drifted(payload):  # lint: decodes=DriftedRecord  # EXPECT: wire-schema
    # Reads a key that is neither a field's wire key nor an extra.
    payload["stowaway"]
    return DriftedRecord(payload["ident"], payload["added_later"])


def encode_one_way(record):  # lint: encodes=OneWayRecord  # EXPECT: wire-schema
    return {"value": record.value}


def decode_without_payload():  # lint: decodes=GoodRecord  # EXPECT: wire-schema
    return None
