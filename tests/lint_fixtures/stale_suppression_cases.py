# lint: disable-file=picklability
"""stale-suppression fixtures: comments that silence nothing.

Stale suppressions are not findings — they never fail a run — but the
engine reports them (``report.stale_suppressions``) so dead
``disable=`` comments get deleted instead of rotting into false
documentation. Three stale cases live here: the file-wide picklability
disable above (nothing here pickles), an inline disable on an access
that is already correctly guarded, and a ``holds-lock=`` contract on a
method that never touches a guarded attribute. ``live_suppression``
keeps one *working* suppression next to them, proving the engine
credits real uses before calling anything stale.
"""

import threading


class LiveAndDead:
    """One live suppression, two dead ones."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def live_suppression(self):
        return self.value  # lint: disable=lock-guard

    def dead_suppression(self):
        with self._lock:
            return self.value  # lint: disable=lock-guard

    def dead_contract(self):  # lint: holds-lock=_lock
        return True
