"""lock-cycle fixtures: the textbook two-lock deadlock.

Thread A (``worker``) takes ``_jobs_lock`` and then — through a helper
call, so the edge is *interprocedural* — ``_stats_lock``; thread B
(``reporter``) takes the same two locks in the opposite order. Neither
function is wrong in isolation; the deadlock only exists in the
project-wide graph, which is exactly what ``lock-cycle`` checks. The
majority direction (jobs -> stats, two sites) wins the derived order,
so the single reporter site is both the ``lock-order`` violation and
the ``lock-cycle`` anchor. ``AcyclicPair`` nests two locks in one
direction only and must stay silent.
"""

import threading


class DeadlockedPool:
    """Holds the two locks whose acquisition orders contradict."""

    def __init__(self):
        self._jobs_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.completed = 0

    def _bump_stats(self):
        with self._stats_lock:
            self.completed += 1

    def worker(self):
        # Takes _stats_lock via the helper while _jobs_lock is held:
        # the cycle edge the analyzer can only see interprocedurally.
        with self._jobs_lock:
            self._bump_stats()

    def drain(self):
        with self._jobs_lock:
            with self._stats_lock:
                self.completed += 1

    def reporter(self):
        with self._stats_lock:
            with self._jobs_lock:  # EXPECT: lock-order EXPECT: lock-cycle
                return self.completed


class AcyclicPair:
    """One consistent direction: a hierarchy, not a deadlock."""

    def __init__(self):
        self._intake_lock = threading.Lock()
        self._flush_lock = threading.Lock()

    def hand_over(self):
        with self._intake_lock:
            with self._flush_lock:
                return True

    def flush_only(self):
        with self._flush_lock:
            return True
