"""api-surface fixtures: __all__ hygiene, checked purely from the AST."""

__all__ = [
    "documented_function",
    "DocumentedClass",
    "reexported_name",
    "missing_name",  # EXPECT: api-surface
    "undocumented_function",
    "UndocumentedClass",
]

from collections import OrderedDict as reexported_name  # noqa: E402,F401


def documented_function():
    """Exported and documented: silent."""


class DocumentedClass:
    """Exported and documented: silent."""


def undocumented_function():  # EXPECT: api-surface
    return None


class UndocumentedClass:  # EXPECT: api-surface
    pass


def _private_helper_needs_no_docstring():
    return None
