"""lock-order fixtures: nested acquisitions with and against the
derived hierarchy.

The canonical order is no longer hardcoded — ``lock-order`` derives it
from the project-wide acquisition graph, flagging the *minority*
direction of every contradiction. The majority direction here is
``_state_cv -> _serve_lock -> _lock`` (the ``canonical*`` methods give
it weight), so the two inverted sites below are the ones that fire.
An inversion is also, by construction, a cycle in the graph, so the
companion ``lock-cycle`` rule reports the component once, anchored at
the first site running against the derived order.
"""

import threading


class Hierarchy:
    """One holder of all three ranked locks."""

    def __init__(self):
        self._state_cv = threading.Condition()
        self._serve_lock = threading.RLock()
        self._lock = threading.RLock()
        self._other = threading.Lock()

    def canonical(self):
        with self._state_cv:
            with self._serve_lock:
                with self._lock:
                    return True

    def canonical_again(self):
        # A second site in the majority direction: the derived order
        # must side with serve -> lock even though inverted() disagrees.
        with self._serve_lock:
            with self._lock:
                return True

    def skipping_a_rank_is_fine(self):
        with self._state_cv:
            with self._lock:
                return True

    def reentrant_same_lock(self):
        with self._serve_lock:
            with self._serve_lock:
                return True

    def one_way_locks_never_fire(self):
        with self._other:
            with self._state_cv:
                return True

    def nested_callable_starts_fresh(self):
        with self._lock:
            def later():
                with self._serve_lock:
                    return True
            return later

    def inverted(self):
        with self._lock:
            with self._serve_lock:  # EXPECT: lock-order EXPECT: lock-cycle
                return True

    def inverted_multi_item(self):
        with self._serve_lock, self._state_cv:  # EXPECT: lock-order
            return True
