"""lock-order fixtures: nested acquisitions with and against the
canonical ``_state_cv -> _serve_lock -> _lock`` hierarchy."""

import threading


class Hierarchy:
    """One holder of all three ranked locks."""

    def __init__(self):
        self._state_cv = threading.Condition()
        self._serve_lock = threading.RLock()
        self._lock = threading.RLock()
        self._other = threading.Lock()

    def canonical(self):
        with self._state_cv:
            with self._serve_lock:
                with self._lock:
                    return True

    def skipping_a_rank_is_fine(self):
        with self._state_cv:
            with self._lock:
                return True

    def reentrant_same_lock(self):
        with self._serve_lock:
            with self._serve_lock:
                return True

    def unranked_locks_are_ignored(self):
        with self._other:
            with self._state_cv:
                return True

    def nested_callable_starts_fresh(self):
        with self._lock:
            def later():
                with self._serve_lock:
                    return True
            return later

    def inverted(self):
        with self._lock:
            with self._serve_lock:  # EXPECT: lock-order
                return True

    def inverted_multi_item(self):
        with self._serve_lock, self._state_cv:  # EXPECT: lock-order
            return True
