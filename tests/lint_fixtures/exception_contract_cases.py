"""exception-contract fixtures: what the exported surface may raise.

The fixture ships its own miniature ``ReproError`` hierarchy — the
rule resolves the name through the project model, so a stand-in class
works exactly like the real one. Entry points are the ``__all__``
names (class exports expand to their methods); the rule then walks the
resolved call graph, so ``_quietly_explodes`` is flagged even though
it is private. Docstring ``Raises`` sections are opt-in but must not
drift in either direction once present.
"""

__all__ = [
    "Exported",
    "documented_and_true",
    "documents_base_class",
    "documents_ghost_error",
    "forgets_to_document",
    "outer_entry",
    "raises_builtin",
    "raises_untyped",
]


class ReproError(Exception):
    """Stand-in for the library's base error."""


class FixtureError(ReproError):
    """A typed error: fine to raise anywhere."""


class GhostError(ReproError):
    """Documented by one docstring below, raised by nothing."""


class OtherError(ReproError):
    """Typed, but not what the drifting docstring documents."""


class UntypedError(Exception):
    """Outside the hierarchy: raising it breaks the contract."""


class Exported:
    """An exported class: its methods are entry points too."""

    def lookup(self, table, key):
        """Entry method raising a builtin."""
        if key not in table:
            raise KeyError(key)  # EXPECT: exception-contract
        return table[key]

    def abstract_hook(self):
        """NotImplementedError is idiom, not contract breakage."""
        raise NotImplementedError


def raises_builtin(n):
    """Raising a builtin from an entry point is a finding."""
    if n < 0:
        raise ValueError("negative")  # EXPECT: exception-contract
    return n


def raises_untyped():
    """Raising a project class outside the hierarchy is a finding."""
    raise UntypedError("outside the hierarchy")  # EXPECT: exception-contract


def _quietly_explodes():
    raise TypeError("reached through the call graph")  # EXPECT: exception-contract


def outer_entry():
    """The public door to the private raiser above."""
    return _quietly_explodes()


def documented_and_true(flag):
    """A Raises section that matches reality (numpy style).

    Raises
    ------
    FixtureError
        When ``flag`` is set.
    """
    if flag:
        raise FixtureError("bad flag")
    return True


def documents_base_class():
    """Documenting the base covers every subclass raised.

    Raises:
        ReproError: on any internal failure.
    """
    raise FixtureError("the refinement of what is documented")


def documents_ghost_error():  # EXPECT: exception-contract
    """Documents an error nothing raises (Google style).

    Raises:
        GhostError: never actually happens.
    """
    return None


def forgets_to_document():  # EXPECT: exception-contract
    """Raises OtherError but only admits to FixtureError.

    Raises
    ------
    FixtureError
        The documented half.
    """
    if True:
        raise FixtureError("documented")
    raise OtherError("undocumented")


def _never_called_is_out_of_scope():
    raise ValueError("unreachable from the exported surface")
