# lint: replay-root
"""determinism fixtures: a pretend replay root.

The ``replay-root`` marker above puts this module — and everything it
imports, such as ``determinism_helper_cases`` — on the replay-reachable
set, so banned wall-clock/entropy calls and ordered set iteration fire
here. ``determinism_unmarked_cases`` holds the same sins without the
marker and must stay silent.
"""

import random
import time
from datetime import datetime

import determinism_helper_cases


def stamps_with_wall_clock():
    return time.time()  # EXPECT: determinism


def stamps_with_datetime():
    return datetime.now().isoformat()  # EXPECT: determinism


def draws_global_randomness():
    return random.random()  # EXPECT: determinism


def seeded_generator_is_fine(seed):
    return random.Random(seed).random()


def duration_clock_is_fine():
    start = time.perf_counter()
    time.sleep(0.0)
    return time.perf_counter() - start


def order_dependent_output():
    pending = {3, 1, 2}
    out = []
    for item in pending:  # EXPECT: determinism
        out.append(item)
    return out


def renders_set_directly():
    tags = {"b", "a"}
    return ", ".join(tags)  # EXPECT: determinism


def sorted_set_is_fine():
    pending = {3, 1, 2}
    return [item for item in sorted(pending)]


def delegates_to_helper():
    return determinism_helper_cases.helper_stamp()
