"""api-surface drift fixture: an ``examples/``-style script using both
live and rotted repro names. Parse-only, never executed."""

import repro
from repro import match  # a real export: silent
from repro import definitely_not_an_export  # EXPECT: api-surface
from repro.engine import no_such_submodule_name  # EXPECT: api-surface


def main():
    objects = repro.generate_independent(n=10, dims=2, seed=1)
    functions = repro.generate_preferences(n=2, dims=2, seed=2)

    ok = match(objects, functions, algorithm="sb", backend="memory")
    also_ok = repro.match(objects, functions, algorithm="skyline")

    rotted = repro.match(
        objects, functions,
        algorithm="simulated-annealing",  # EXPECT: api-surface
    )
    wrong_backend = repro.match(
        objects, functions,
        backend="postgres",  # EXPECT: api-surface
    )
    gone = repro.renamed_entry_point(objects)  # EXPECT: api-surface
    return ok, also_ok, rotted, wrong_backend, gone
