"""async-safety fixtures: blocking calls inside coroutine bodies."""

import asyncio
import subprocess
import time


async def bad_sleep():
    time.sleep(0.1)  # EXPECT: async-safety


async def bad_file_read(path):
    return open(path).read()  # EXPECT: async-safety


async def bad_subprocess():
    subprocess.run(["true"])  # EXPECT: async-safety


async def bad_sync_serve(service, batch):
    return service.submit_many(batch)  # EXPECT: async-safety


async def bad_executor_teardown(executor):
    executor.shutdown(wait=True)  # EXPECT: async-safety


async def good_sleep():
    await asyncio.sleep(0.1)


async def good_serve(loop, service, batch):
    return await loop.run_in_executor(None, service.submit_many, batch)


async def good_awaited_coordination(lock, front):
    await lock.acquire()
    await front.close()


async def good_nested_sync_helper():
    def helper():
        time.sleep(0.1)
        return open("somewhere")
    return helper


def good_plain_sync(service, batch):
    time.sleep(0.0)
    return service.submit_many(batch)
