"""lock-guard fixtures: guarded attributes touched with and without
their declared lock. Never imported — parse-only."""

import threading


class BadCounter:
    """Positive cases: guarded attribute touched lock-free."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def bump(self):
        self.value += 1  # EXPECT: lock-guard

    def peek(self):
        return self.value  # EXPECT: lock-guard

    def deferred(self):
        def later():
            return self.value  # EXPECT: lock-guard
        with self._lock:
            return later


class GoodCounter:
    """Negative cases: the lock held, claimed, or explicitly waived."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.value += 1

    def snapshot(self):
        with self._lock:
            local = self.value
        return local

    def helper(self):  # lint: holds-lock=_lock
        return self.value

    def fast_peek(self):
        return self.value  # lint: disable=lock-guard

    def __del__(self):
        self.value = -1
