"""The same nondeterminism sources as the marked fixture — but this
module is neither a replay root nor imported by one, so the
determinism rule must leave it alone."""

import time


def free_to_read_the_clock():
    return time.time()


def free_to_iterate_sets():
    return list({3, 1, 2})
