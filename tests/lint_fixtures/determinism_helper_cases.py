"""Imported by the marked replay root: reachability, not markers, is
what puts a module in the determinism rule's scope."""

import uuid


def helper_stamp():
    return uuid.uuid4().hex  # EXPECT: determinism
