"""frozen-mutation fixtures: immutable types mutated (or not) after
construction."""

from dataclasses import dataclass


@dataclass(frozen=True)
class BadFrozenCounter:
    """Positive: a frozen dataclass sneaking writes past the freeze."""

    count: int = 0

    def bump(self):
        object.__setattr__(self, "count", self.count + 1)  # EXPECT: frozen-mutation

    def reset(self):
        setattr(self, "count", 0)  # EXPECT: frozen-mutation


class BadMarkedResult:  # lint: frozen
    """Positive: a hand-rolled immutable whose method reassigns."""

    def __init__(self, pairs):
        self.pairs = tuple(pairs)

    def extend(self, more):
        self.pairs = self.pairs + tuple(more)  # EXPECT: frozen-mutation

    def grow(self, n):
        self.total = n  # EXPECT: frozen-mutation


@dataclass(frozen=True)
class GoodFrozenCounter:
    """Negative: constructors may assign; methods return new values."""

    count: int = 0

    def __post_init__(self):
        object.__setattr__(self, "count", int(self.count))

    def bumped(self):
        return GoodFrozenCounter(self.count + 1)


class GoodMarkedResult:  # lint: frozen
    """Negative: __init__ builds derived state, nothing mutates later."""

    def __init__(self, pairs):
        self.pairs = tuple(pairs)
        self.by_id = {pair[0]: pair for pair in self.pairs}

    def lookup(self, key):
        return self.by_id.get(key)

    def __reduce__(self):
        return (self.__class__, (self.pairs,))


@dataclass
class MutableOutcome:
    """Negative: not frozen, not marked — free to mutate."""

    total: int = 0

    def bump(self):
        self.total += 1
