"""Property-based tests for dominance relations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline import canonical_skyline_naive, dominates, weakly_dominates

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def points(dims, min_size=0, max_size=30):
    return st.lists(
        st.tuples(*([unit] * dims)), min_size=min_size, max_size=max_size
    )


@given(st.tuples(unit, unit, unit))
def test_strict_dominance_is_irreflexive(p):
    assert not dominates(p, p)


@given(st.tuples(unit, unit, unit))
def test_weak_dominance_is_reflexive(p):
    assert weakly_dominates(p, p)


@given(st.tuples(unit, unit), st.tuples(unit, unit))
def test_strict_dominance_is_antisymmetric(a, b):
    assert not (dominates(a, b) and dominates(b, a))


@given(st.tuples(unit, unit), st.tuples(unit, unit))
def test_strict_implies_weak(a, b):
    if dominates(a, b):
        assert weakly_dominates(a, b)


@given(st.tuples(unit, unit, unit), st.tuples(unit, unit, unit),
       st.tuples(unit, unit, unit))
def test_weak_dominance_is_transitive(a, b, c):
    if weakly_dominates(a, b) and weakly_dominates(b, c):
        assert weakly_dominates(a, c)


@given(st.tuples(unit, unit), st.tuples(unit, unit))
def test_weak_equals_strict_or_equal(a, b):
    assert weakly_dominates(a, b) == (dominates(a, b) or a == b)


@settings(max_examples=60, deadline=None)
@given(points(3))
def test_skyline_members_are_mutually_incomparable(items):
    indexed = list(enumerate(items))
    skyline = canonical_skyline_naive(indexed)
    for i, (_, a) in enumerate(skyline):
        for _, b in skyline[i + 1:]:
            assert not dominates(a, b)
            assert not dominates(b, a)


@settings(max_examples=60, deadline=None)
@given(points(3))
def test_every_non_member_is_weakly_dominated_by_a_member(items):
    indexed = list(enumerate(items))
    skyline = canonical_skyline_naive(indexed)
    member_ids = {oid for oid, _ in skyline}
    member_points = [p for _, p in skyline]
    for oid, point in indexed:
        if oid in member_ids:
            continue
        assert any(weakly_dominates(m, point) for m in member_points)


@settings(max_examples=60, deadline=None)
@given(points(2))
def test_skyline_is_independent_of_input_order(items):
    indexed = list(enumerate(items))
    forward = canonical_skyline_naive(indexed)
    backward = canonical_skyline_naive(list(reversed(indexed)))
    assert forward == backward
