"""Unit tests for fixed-size pages."""

import pytest

from repro.errors import PageSizeError
from repro.storage import DEFAULT_PAGE_SIZE, Page


def test_default_page_size_is_4k():
    # The paper's setup: "an R-tree with 4Kbytes page size".
    assert DEFAULT_PAGE_SIZE == 4096


def test_empty_page():
    page = Page(3)
    assert page.page_id == 3
    assert page.data == b""
    assert len(page) == 0
    assert page.size == DEFAULT_PAGE_SIZE


def test_write_and_read_back():
    page = Page(0, size=16)
    page.write(b"hello")
    assert page.data == b"hello"
    assert len(page) == 5


def test_overwrite_replaces_payload():
    page = Page(0, size=16, data=b"first")
    page.write(b"second")
    assert page.data == b"second"


def test_payload_at_exact_capacity():
    page = Page(0, size=8)
    page.write(b"12345678")
    assert len(page) == 8


def test_oversized_payload_rejected():
    page = Page(0, size=8)
    with pytest.raises(PageSizeError):
        page.write(b"123456789")


def test_oversized_initial_payload_rejected():
    with pytest.raises(PageSizeError):
        Page(0, size=4, data=b"12345")


def test_nonpositive_size_rejected():
    with pytest.raises(PageSizeError):
        Page(0, size=0)
    with pytest.raises(PageSizeError):
        Page(0, size=-1)


def test_copy_is_independent():
    page = Page(7, size=16, data=b"abc")
    clone = page.copy()
    clone.write(b"xyz")
    assert page.data == b"abc"
    assert clone.page_id == 7


def test_data_is_immutable_bytes():
    page = Page(0, size=16, data=bytearray(b"abc"))
    assert isinstance(page.data, bytes)
