"""Capacitated (many-to-one) matching via virtual-object expansion."""

import pytest

from repro.core import (
    BruteForceMatcher,
    CapacitatedMatching,
    MatchingProblem,
    MatchPair,
    match_with_capacities,
)
from repro.data import Dataset, generate_independent
from repro.errors import MatchingError
from repro.prefs import LinearPreference, generate_preferences


def test_single_object_with_capacity_serves_many():
    objects = Dataset([[0.9, 0.9], [0.2, 0.2]])
    functions = generate_preferences(3, 2, seed=210)
    result = match_with_capacities(objects, functions, {0: 2, 1: 1})
    assert len(result) == 3
    assert sorted(result.usage.items()) == [(0, 2), (1, 1)]
    assert len(result.assignments_of(0)) == 2


def test_capacity_equals_duplicate_objects():
    # Capacity-c matching must equal the 1-1 matching over c duplicates.
    objects = Dataset([[0.8, 0.6], [0.5, 0.9], [0.3, 0.3]])
    functions = generate_preferences(5, 2, seed=211)
    capacitated = match_with_capacities(
        objects, functions, {0: 2, 1: 2, 2: 1}
    )
    duplicated = Dataset(
        [[0.8, 0.6], [0.8, 0.6], [0.5, 0.9], [0.5, 0.9], [0.3, 0.3]]
    )
    owner = {0: 0, 1: 0, 2: 1, 3: 1, 4: 2}
    problem = MatchingProblem.build(duplicated, functions)
    from repro.core import SkylineMatcher

    flat = SkylineMatcher(problem).run()
    want = {(p.function_id, owner[p.object_id]) for p in flat.pairs}
    got = {(p.function_id, p.object_id) for p in capacitated.pairs}
    assert got == want


def test_zero_capacity_removes_object():
    objects = Dataset([[0.9, 0.9], [0.5, 0.5]])
    functions = generate_preferences(2, 2, seed=212)
    result = match_with_capacities(objects, functions, {0: 0, 1: 5})
    assert {pair.object_id for pair in result.pairs} == {1}
    assert result.usage[0] == 0


def test_default_capacity_is_one():
    objects = generate_independent(20, 2, seed=213)
    functions = generate_preferences(10, 2, seed=214)
    result = match_with_capacities(objects, functions, {})
    assert len(result) == 10
    assert all(count <= 1 for count in result.usage.values())


def test_insufficient_capacity_leaves_functions_unmatched():
    objects = Dataset([[0.9, 0.9]])
    functions = generate_preferences(4, 2, seed=215)
    result = match_with_capacities(objects, functions, {0: 2})
    assert len(result) == 2
    assert len(result.unmatched_functions) == 2


def test_negative_capacity_rejected():
    objects = Dataset([[0.5, 0.5]])
    functions = generate_preferences(1, 2, seed=216)
    with pytest.raises(MatchingError):
        match_with_capacities(objects, functions, {0: -1})


def test_alternative_matcher_factory():
    objects = Dataset([[0.9, 0.3], [0.4, 0.8]])
    functions = generate_preferences(3, 2, seed=217)
    sb = match_with_capacities(objects, functions, {0: 2, 1: 1})
    bf = match_with_capacities(
        objects, functions, {0: 2, 1: 1},
        matcher_factory=BruteForceMatcher,
    )
    assert {(p.function_id, p.object_id) for p in sb.pairs} == {
        (p.function_id, p.object_id) for p in bf.pairs
    }


def test_capacitated_matching_validates_consistency():
    with pytest.raises(MatchingError):
        CapacitatedMatching(
            [MatchPair(0, 0, 0.5), MatchPair(1, 0, 0.5)],
            [], {0: 1},
        )
    with pytest.raises(MatchingError):
        CapacitatedMatching(
            [MatchPair(0, 0, 0.5), MatchPair(0, 1, 0.5)],
            [], {0: 1, 1: 1},
        )
