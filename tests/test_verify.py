"""Stability verification and blocking-pair detection."""

from repro.core import (
    Matching,
    MatchingProblem,
    MatchPair,
    SkylineMatcher,
    find_blocking_pairs,
    greedy_reference_matching,
    verify_stable_matching,
)
from repro.data import Dataset, generate_independent
from repro.prefs import LinearPreference, generate_preferences


def two_by_two():
    # Object 0 is better than object 1 everywhere; both functions prefer
    # it, and f1 (x-heavy) scores it highest: f1(o0)=0.88 > f0(o0)=0.85.
    objects = Dataset([[0.9, 0.8], [0.2, 0.1]])
    functions = [
        LinearPreference(0, (0.5, 0.5)),
        LinearPreference(1, (0.8, 0.2)),
    ]
    return objects, functions


def test_stable_matching_passes():
    objects, functions = two_by_two()
    # Stable assignment: the global best pair is (f1, o0); f0 takes o1.
    matching = Matching([
        MatchPair(1, 0, functions[1].score(objects.vector(0))),
        MatchPair(0, 1, functions[0].score(objects.vector(1))),
    ])
    assert find_blocking_pairs(matching, objects, functions) == []
    assert verify_stable_matching(matching, objects, functions)


def test_unstable_matching_detected():
    objects, functions = two_by_two()
    # Swap the assignment: (f1, o0) now blocks (both prefer each other).
    matching = Matching([
        MatchPair(1, 1, functions[1].score(objects.vector(1))),
        MatchPair(0, 0, functions[0].score(objects.vector(0))),
    ])
    blocking = find_blocking_pairs(matching, objects, functions)
    assert blocking
    pair = blocking[0]
    assert (pair.function_id, pair.object_id) == (1, 0)
    assert not verify_stable_matching(matching, objects, functions)


def test_missing_function_fails_shape_check():
    objects, functions = two_by_two()
    matching = Matching(
        [MatchPair(0, 0, functions[0].score(objects.vector(0)))],
        unmatched_functions=[],  # function 1 unaccounted for
    )
    assert not verify_stable_matching(matching, objects, functions)


def test_not_maximum_cardinality_fails():
    objects, functions = two_by_two()
    matching = Matching([], unmatched_functions=[0, 1])
    assert not verify_stable_matching(matching, objects, functions)


def test_unknown_object_fails():
    objects, functions = two_by_two()
    matching = Matching([
        MatchPair(0, 7, 0.5),
        MatchPair(1, 1, functions[1].score(objects.vector(1))),
    ])
    assert not verify_stable_matching(matching, objects, functions)


def test_limit_caps_reported_pairs():
    # An everything-blocked matching on a bigger instance.
    objects = generate_independent(30, 2, seed=170)
    functions = generate_preferences(10, 2, seed=171)
    worst = Matching(
        [
            MatchPair(f.fid, oid, -1.0)
            for f, oid in zip(functions, range(20, 30))
        ],
        unmatched_functions=[],
    )
    blocking = find_blocking_pairs(worst, objects, functions, limit=3)
    assert len(blocking) == 3


def test_real_matcher_output_verifies():
    objects = generate_independent(150, 3, seed=172)
    functions = generate_preferences(12, 3, seed=173)
    problem = MatchingProblem.build(objects, functions)
    matching = SkylineMatcher(problem).run()
    assert verify_stable_matching(matching, objects, functions)


def test_empty_inputs():
    objects = Dataset([[0.5]])
    assert find_blocking_pairs(Matching([]), objects, []) == []
    reference = greedy_reference_matching(objects, [])
    assert verify_stable_matching(reference, objects, [])
