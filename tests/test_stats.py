"""Unit tests for I/O and search counters."""

from repro.storage import IOStats, SearchStats


def test_io_accesses_sums_reads_and_writes():
    stats = IOStats(page_reads=3, page_writes=4)
    assert stats.io_accesses == 7


def test_snapshot_is_immutable_copy():
    stats = IOStats()
    stats.page_reads = 5
    snap = stats.snapshot()
    stats.page_reads = 9
    assert snap.page_reads == 5
    assert snap.io_accesses == 5


def test_snapshot_delta():
    stats = IOStats()
    stats.page_reads = 2
    stats.page_writes = 1
    before = stats.snapshot()
    stats.page_reads = 10
    stats.page_writes = 4
    stats.buffer_hits = 7
    delta = stats.snapshot().delta(before)
    assert delta.page_reads == 8
    assert delta.page_writes == 3
    assert delta.buffer_hits == 7
    assert delta.io_accesses == 11


def test_reset_zeroes_everything():
    stats = IOStats(page_reads=1, page_writes=2, buffer_hits=3,
                    buffer_evictions=4, pages_allocated=5, pages_freed=6)
    stats.reset()
    assert stats.snapshot() == IOStats().snapshot()


def test_search_stats_reset():
    stats = SearchStats(dominance_checks=1, score_evaluations=2,
                        heap_pushes=3, heap_pops=4, comparisons=5)
    stats.reset()
    assert stats.dominance_checks == 0
    assert stats.score_evaluations == 0
    assert stats.heap_pushes == 0
    assert stats.heap_pops == 0
    assert stats.comparisons == 0
