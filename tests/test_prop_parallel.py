"""Property test: sharded matching equals single-process matching.

Random small instances — coarse grids included, to maximize exact score
ties and duplicate points — across shard counts, algorithms, and
backends. The sharded result must reproduce the single-process
``repro.match()`` triple-for-triple (function, object, score) every
time; this is the acceptance property of the parallel subsystem.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.data import Dataset
from repro.prefs import LinearPreference

# Coarse grids maximize exact score ties and duplicate points. Fine
# coordinates are rounded to 6 decimals: the library's canonical-tie
# discipline assumes general position (score ties only between exact
# duplicate points — see repro.dynamic.repair), and raw floats can
# break it spuriously (a subnormal coordinate makes one point dominate
# another while rounding their scores float-identical, a state no exact
# arithmetic produces). A 1e-6 grid keeps differences representable
# through every score sum while still exercising dense data and, after
# rounding, exact duplicates.
coarse = st.integers(min_value=0, max_value=3).map(lambda v: v / 3)
fine = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                 allow_infinity=False).map(lambda v: round(v, 6))
coordinate = st.one_of(coarse, fine)
positive = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)

instances = st.tuples(
    st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=24),
    st.lists(st.tuples(positive, positive), min_size=1, max_size=8),
    st.integers(min_value=2, max_value=6),                  # shards
    st.sampled_from(["sb", "bf", "chain", "gs"]),
    st.sampled_from(["memory", "disk"]),
)


def build(points, raw_weights):
    objects = Dataset([list(point) for point in points])
    functions = [
        LinearPreference.normalized(fid, list(weights))
        for fid, weights in enumerate(raw_weights)
    ]
    return objects, functions


def triples(result):
    return sorted(
        (pair.function_id, pair.object_id, pair.score)
        for pair in result.pairs
    )


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(instances)
def test_sharded_equals_single_process(instance):
    points, raw_weights, shards, algorithm, backend = instance
    objects, functions = build(points, raw_weights)
    single = repro.match(objects, functions, algorithm=algorithm,
                         backend=backend)
    sharded = repro.match(objects, functions, algorithm=algorithm,
                          backend=backend, shards=shards,
                          executor="serial")
    assert triples(sharded) == triples(single)
    assert sorted(sharded.unmatched_functions) == sorted(
        single.unmatched_functions
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.tuples(coarse, coarse), min_size=1, max_size=16),
    st.lists(st.tuples(positive, positive), min_size=1, max_size=6),
    st.integers(min_value=2, max_value=5),
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=16),
)
def test_sharded_capacitated_equals_single_process(points, raw_weights,
                                                   shards, raw_caps):
    objects, functions = build(points, raw_weights)
    capacities = {
        object_id: raw_caps[object_id % len(raw_caps)]
        for object_id, _ in objects.items()
    }
    single = repro.match(objects, functions, backend="memory",
                         capacities=capacities)
    sharded = repro.match(objects, functions, backend="memory",
                          capacities=capacities, shards=shards,
                          executor="serial")
    assert triples(sharded) == triples(single)
