"""Structural validation of the MkDocs documentation site.

``mkdocs build --strict`` runs in CI (the ``docs`` job); this test
keeps the site's skeleton honest in environments without mkdocs
installed: the config parses, every nav entry exists, every relative
markdown link resolves, and the site actually documents all five layers
and both subsystems.
"""

import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"


class _AnyTagLoader(yaml.SafeLoader):
    """Safe loader that tolerates mkdocs' ``!!python/name:`` tags."""


_AnyTagLoader.add_multi_constructor(
    "tag:yaml.org,2002:python/name:",
    lambda loader, suffix, node: f"python/name:{suffix}",
)


def load_config():
    return yaml.load(MKDOCS_YML.read_text(), Loader=_AnyTagLoader)


def nav_files(entries):
    """Flatten the mkdocs nav tree into its markdown file targets."""
    files = []
    for entry in entries:
        if isinstance(entry, str):
            files.append(entry)
        elif isinstance(entry, dict):
            for value in entry.values():
                if isinstance(value, str):
                    files.append(value)
                else:
                    files.extend(nav_files(value))
    return files


def test_mkdocs_config_parses_and_is_strict():
    config = load_config()
    assert config["site_name"]
    assert config["strict"] is True
    assert config["nav"]


def test_every_nav_entry_exists():
    config = load_config()
    targets = nav_files(config["nav"])
    assert "index.md" in targets
    for target in targets:
        assert (DOCS / target).is_file(), f"nav entry {target} missing"


def test_relative_markdown_links_resolve():
    link = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(#[^)\s]*)?\)")
    checked = 0
    for page in DOCS.rglob("*.md"):
        for match in link.finditer(page.read_text()):
            href = match.group(1)
            if href.startswith(("http://", "https://", "mailto:")):
                continue
            target = (page.parent / href).resolve()
            assert target.exists(), f"{page.name}: broken link {href}"
            checked += 1
    assert checked >= 10  # the site is actually cross-linked


def test_site_documents_every_layer_and_subsystem():
    architecture = (DOCS / "architecture.md").read_text()
    for layer in ("repro.engine", "repro.core", "repro.skyline",
                  "repro.rtree", "repro.storage"):
        assert layer in architecture, f"architecture page misses {layer}"
    assert "mermaid" in architecture  # the layering diagram
    for subsystem, page in [
        ("dynamic", DOCS / "guides" / "dynamic-sessions.md"),
        ("parallel", DOCS / "guides" / "parallel.md"),
    ]:
        assert page.is_file(), f"{subsystem} guide missing"
        assert len(page.read_text()) > 1000


def test_docs_extra_and_ci_job_exist():
    setup = (REPO / "setup.py").read_text()
    assert "mkdocs" in setup and '"docs"' in setup
    workflow = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "mkdocs build --strict" in workflow
