"""MatchingProblem construction and storage wiring."""

import pytest

from repro.core import MatchingProblem
from repro.data import generate_independent
from repro.errors import DimensionalityError, MatchingError
from repro.prefs import LinearPreference, generate_preferences


def test_build_wires_tree_disk_buffer():
    objects = generate_independent(2000, 3, seed=100)
    functions = generate_preferences(50, 3, seed=101)
    problem = MatchingProblem.build(objects, functions)
    assert problem.dims == 3
    assert problem.tree.num_objects == 2000
    assert problem.disk.num_pages > 10
    # 2% buffer, floored at 4 frames.
    assert problem.buffer.capacity == max(4, int(problem.disk.num_pages * 0.02))
    # Build cost is recorded but excluded from the live counters.
    assert problem.build_io.io_accesses > 0
    assert problem.io_stats.io_accesses == 0


def test_build_with_absolute_buffer_capacity():
    objects = generate_independent(500, 3, seed=102)
    problem = MatchingProblem.build(objects, [], buffer_capacity=7)
    assert problem.buffer.capacity == 7


def test_dimensionality_mismatch_rejected():
    objects = generate_independent(10, 3, seed=103)
    with pytest.raises(DimensionalityError):
        MatchingProblem.build(objects, [LinearPreference(0, (0.5, 0.5))])


def test_duplicate_function_ids_rejected():
    objects = generate_independent(10, 2, seed=104)
    functions = [
        LinearPreference(1, (0.5, 0.5)),
        LinearPreference(1, (0.4, 0.6)),
    ]
    with pytest.raises(MatchingError):
        MatchingProblem.build(objects, functions)


def test_reset_io_gives_cold_start():
    objects = generate_independent(1500, 3, seed=105)
    problem = MatchingProblem.build(objects, [])
    from repro.skyline import compute_skyline

    compute_skyline(problem.tree)
    assert problem.io_stats.page_reads > 0
    problem.reset_io()
    assert problem.io_stats.io_accesses == 0
    assert problem.buffer.num_resident == 0


def test_rebuild_is_equivalent_but_fresh():
    objects = generate_independent(800, 3, seed=106)
    functions = generate_preferences(20, 3, seed=107)
    problem = MatchingProblem.build(objects, functions)
    points = dict(objects.items())
    problem.tree.delete(objects.ids[0], points[objects.ids[0]])
    rebuilt = problem.rebuild()
    assert rebuilt.tree.num_objects == 800          # mutation not carried over
    assert rebuilt.disk is not problem.disk
    assert rebuilt.buffer.capacity == problem.buffer.capacity
    assert problem.tree.num_objects == 799


def test_page_size_controls_tree_pages():
    objects = generate_independent(3000, 3, seed=108)
    small = MatchingProblem.build(objects, [], page_size=1024)
    large = MatchingProblem.build(objects, [], page_size=8192)
    assert small.disk.num_pages > large.disk.num_pages
