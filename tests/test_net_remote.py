"""The shard-worker protocol: remote execution is pair-identical.

``executor="remote"`` must be a pure *placement* decision — the same
merge, the same repair, the same pairs as running every shard locally.
These tests put real :class:`~repro.net.ShardWorkerServer` instances on
the loopback and drive full matchings through them, including tie-heavy
coarse grids (the canonical trap for any path that reorders shard
work), plus the protocol-level behaviours: worker-raised exceptions
re-raise in the caller with their original type, dead workers fail
loudly, and malformed frames answer typed errors instead of hanging.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.data import Dataset
from repro.errors import (ConnectionRetriesExceededError, MatchingError,
                          NetworkError, PreferenceError)
from repro.net import RemoteExecutor, ShardWorkerServer
from repro.net.frames import connect_with_retry, recv_frame, send_frame
from repro.net.server import ServerThread
from repro.net.worker import resolve_worker_addresses
from repro.prefs import LinearPreference


@pytest.fixture(scope="module")
def worker_address():
    """One shard worker on the loopback, shared across the module."""
    with ServerThread(ShardWorkerServer()) as harness:
        host, port = harness.server.address
        yield f"{host}:{port}"


def triples(result):
    return sorted(
        (pair.function_id, pair.object_id, pair.score)
        for pair in result.pairs
    )


# ----------------------------------------------------------------------
# Pair identity
# ----------------------------------------------------------------------
def test_remote_match_equals_serial_match(worker_address):
    objects = repro.generate_independent(n=150, dims=2, seed=3)
    prefs = repro.generate_preferences(n=8, dims=2, seed=5)
    serial = repro.match(objects, prefs, backend="memory", shards=3,
                         executor="serial")
    remote = repro.match(objects, prefs, backend="memory", shards=3,
                         executor="remote",
                         remote_workers=(worker_address,))
    assert triples(remote) == triples(serial)
    assert sorted(remote.unmatched_functions) == sorted(
        serial.unmatched_functions
    )


coarse = st.integers(min_value=0, max_value=3).map(lambda v: v / 3)
positive = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.tuples(coarse, coarse), min_size=1, max_size=16),
    st.lists(st.tuples(positive, positive), min_size=1, max_size=5),
    st.integers(min_value=2, max_value=4),
)
def test_remote_equals_single_process_on_tie_heavy_grids(points,
                                                         raw_weights,
                                                         shards):
    # The module fixture cannot feed @given, so each property run gets
    # a short-lived worker; 10 examples keep this affordable.
    objects = Dataset([list(point) for point in points])
    functions = [
        LinearPreference.normalized(fid, list(weights))
        for fid, weights in enumerate(raw_weights)
    ]
    single = repro.match(objects, functions, backend="memory")
    with ServerThread(ShardWorkerServer()) as harness:
        host, port = harness.server.address
        remote = repro.match(objects, functions, backend="memory",
                             shards=shards, executor="remote",
                             remote_workers=(f"{host}:{port}",))
    assert triples(remote) == triples(single)


def test_remote_round_robins_over_several_workers():
    objects = repro.generate_independent(n=160, dims=2, seed=7)
    prefs = repro.generate_preferences(n=6, dims=2, seed=9)
    serial = repro.match(objects, prefs, backend="memory", shards=4,
                         executor="serial")
    with ServerThread(ShardWorkerServer()) as one:
        with ServerThread(ShardWorkerServer()) as two:
            addresses = tuple(
                "%s:%d" % harness.server.address for harness in (one, two)
            )
            remote = repro.match(objects, prefs, backend="memory",
                                 shards=4, executor="remote",
                                 remote_workers=addresses)
            assert triples(remote) == triples(serial)
            # Round-robin: both workers actually executed tasks.
            assert one.server.tasks_served > 0
            assert two.server.tasks_served > 0


def test_prepared_serving_reuses_remote_connections(worker_address):
    objects = repro.generate_independent(n=120, dims=2, seed=11)
    prefs = repro.generate_preferences(n=5, dims=2, seed=13)
    prepared = repro.plan(
        backend="memory", shards=3, executor="remote",
        remote_workers=(worker_address,),
    ).prepare(objects)
    try:
        first = prepared.run(prefs)
        second = prepared.run(prefs)
        assert triples(first) == triples(second)
        # One RemoteExecutor construction across repeated runs.
        assert prepared.pool.spawn_count == 1
    finally:
        prepared.close()


# ----------------------------------------------------------------------
# Failure modes
# ----------------------------------------------------------------------
def test_worker_raised_errors_re_raise_with_their_type(worker_address):
    # The facade validates dimensionality locally, so a bad task has to
    # be handed to the executor directly: 2-d shard items against a
    # 3-weight function blow up inside the worker's matcher, and the
    # pickled error frame must re-raise here as the library's own
    # exception type, not a generic network failure.
    from repro.engine.config import MatchingConfig
    from repro.errors import DimensionalityError
    from repro.parallel.shard import ShardTask

    task = ShardTask(
        index=0, dims=2,
        items=((0, (0.25, 0.75)), (1, (0.5, 0.5))),
        functions=(LinearPreference.normalized(0, [1.0, 1.0, 1.0]),),
        config=MatchingConfig(backend="memory"),
    )
    with RemoteExecutor((worker_address,)) as executor:
        with pytest.raises((DimensionalityError, PreferenceError,
                            MatchingError)) as excinfo:
            executor.run([task])
    assert not isinstance(excinfo.value, NetworkError)


def test_unreachable_workers_fail_loudly_never_fall_back():
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead = "127.0.0.1:%d" % probe.getsockname()[1]
    objects = repro.generate_independent(n=60, dims=2, seed=3)
    prefs = repro.generate_preferences(n=4, dims=2, seed=5)
    with pytest.raises(ConnectionRetriesExceededError) as excinfo:
        repro.match(objects, prefs, backend="memory", shards=2,
                    executor="remote", remote_workers=(dead,))
    assert excinfo.value.address == dead
    assert excinfo.value.attempts >= 1


def test_remote_without_addresses_is_a_configuration_error(monkeypatch):
    monkeypatch.delenv("REPRO_REMOTE_WORKERS", raising=False)
    objects = repro.generate_independent(n=60, dims=2, seed=3)
    prefs = repro.generate_preferences(n=4, dims=2, seed=5)
    with pytest.raises(MatchingError):
        repro.match(objects, prefs, backend="memory", shards=2,
                    executor="remote")


def test_worker_addresses_fall_back_to_the_environment(monkeypatch):
    monkeypatch.setenv("REPRO_REMOTE_WORKERS", "alpha:9001, beta:9002")
    assert resolve_worker_addresses(None) == ("alpha:9001", "beta:9002")
    assert resolve_worker_addresses(("gamma:1",)) == ("gamma:1",)
    monkeypatch.setenv("REPRO_REMOTE_WORKERS", "not-an-address")
    with pytest.raises(NetworkError):
        resolve_worker_addresses(None)


# ----------------------------------------------------------------------
# Protocol-level behaviour
# ----------------------------------------------------------------------
def test_ping_and_malformed_frames(worker_address):
    host, _, port = worker_address.rpartition(":")
    sock = connect_with_retry(host, int(port))
    try:
        send_frame(sock, pickle.dumps(("ping", None)))
        assert pickle.loads(recv_frame(sock)) == ("ok", "pong")
        # A task frame without a ShardTask answers a typed error...
        send_frame(sock, pickle.dumps(("task", "not-a-task")))
        kind, payload = pickle.loads(recv_frame(sock))
        assert kind == "error"
        assert isinstance(payload, NetworkError)
        # ...as does an unknown op, and the connection stays usable.
        send_frame(sock, pickle.dumps(("??", None)))
        kind, payload = pickle.loads(recv_frame(sock))
        assert kind == "error"
        send_frame(sock, pickle.dumps(("ping", None)))
        assert pickle.loads(recv_frame(sock)) == ("ok", "pong")
    finally:
        sock.close()


def test_remote_executor_ping_and_close(worker_address):
    executor = RemoteExecutor((worker_address,))
    assert executor.ping()
    executor.close()
    executor.close()  # idempotent
    with pytest.raises(MatchingError):
        executor.run([object()])
