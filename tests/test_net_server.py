"""The matching protocol end to end: server, clients, and lifecycle.

The acceptance property of the socket front-end is *transparency*: a
client talking to a loopback server must see exactly what an in-process
``service.submit()`` caller sees — same pairs, same scores, same typed
errors for overload — plus the network-only behaviours (retry/backoff
on dead endpoints, graceful drain on shutdown, 503 while draining).
Everything here is deterministic: overload is staged through the
service's admission hooks, drain through a gated ``submit_many``.
"""

import socket
import threading
import time

import pytest

import repro
from repro.errors import (ConnectionRetriesExceededError, RemoteError,
                          ServiceOverloadedError)
from repro.net import (AsyncMatchingClient, MatchingClient, MatchingServer,
                       ServerThread)


def make_service(**overrides):
    objects = repro.generate_independent(n=100, dims=2, seed=3)
    options = dict(backend="memory", deletion_mode="filter")
    options.update(overrides)
    return objects, repro.MatchingService(objects, **options)


def free_port():
    """A port that was just free (nothing listens there afterwards)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture()
def served():
    objects, service = make_service()
    server = MatchingServer(service, close_service=True)
    with ServerThread(server) as harness:
        host, port = harness.server.address
        yield objects, service, harness, host, port


# ----------------------------------------------------------------------
# Transparency: the wire adds nothing and loses nothing
# ----------------------------------------------------------------------
def test_client_submit_equals_service_submit(served):
    objects, service, harness, host, port = served
    prefs = repro.generate_preferences(n=5, dims=2, seed=7)
    request = repro.MatchingRequest(prefs)
    local = service.submit(request)
    with MatchingClient(host, port) as client:
        remote = client.submit(request)
    assert remote.as_set() == local.as_set()
    assert ([pair.score for pair in remote]
            == [pair.score for pair in local])
    assert remote.algorithm == local.algorithm
    assert remote.backend == local.backend


def test_submit_many_pipelines_a_batch_over_one_connection(served):
    objects, service, harness, host, port = served
    workloads = [
        repro.generate_preferences(n=3, dims=2, seed=seed)
        for seed in range(5)
    ]
    local = service.submit_many(workloads)
    with MatchingClient(host, port) as client:
        remote = client.submit_many(workloads)
    assert len(remote) == len(local)
    for got, want in zip(remote, local):
        assert got.as_set() == want.as_set()
        assert ([pair.score for pair in got]
                == [pair.score for pair in want])


def test_stats_and_health_rpcs(served):
    objects, service, harness, host, port = served
    prefs = repro.generate_preferences(n=3, dims=2, seed=9)
    with MatchingClient(host, port) as client:
        client.submit(repro.MatchingRequest(prefs))
        snap = client.stats()
        assert snap["requests"] >= 1
        assert set(snap) == set(service.snapshot().to_dict())
        health = client.health()
        assert health["status"] == "ok"


def test_async_client_matches_sync_client(served):
    import asyncio

    objects, service, harness, host, port = served
    prefs = repro.generate_preferences(n=4, dims=2, seed=11)
    request = repro.MatchingRequest(prefs)
    with MatchingClient(host, port) as client:
        sync_result = client.submit(request)

    async def go():
        async with AsyncMatchingClient(host, port) as client:
            results = await client.submit_many([request, request])
            health = await client.health()
        return results, health

    results, health = asyncio.run(go())
    assert health["status"] == "ok"
    for result in results:
        assert result.as_set() == sync_result.as_set()


def test_codec_rejection_travels_as_a_typed_error(served):
    from repro.errors import CodecError
    from repro.prefs import MinPreference

    objects, service, harness, host, port = served
    with MatchingClient(host, port) as client:
        with pytest.raises(CodecError):
            client.submit(repro.MatchingRequest(
                [MinPreference(0, (0.5, 0.5))]
            ))
        # The connection survives a client-side rejection.
        prefs = repro.generate_preferences(n=2, dims=2, seed=1)
        assert client.submit(repro.MatchingRequest(prefs)).pairs


# ----------------------------------------------------------------------
# Admission control across the wire
# ----------------------------------------------------------------------
def test_overload_surfaces_as_service_overloaded_error():
    objects, service = make_service(max_inflight=1, admission="reject")
    server = MatchingServer(service, close_service=True)
    prefs = repro.generate_preferences(n=2, dims=2, seed=5)
    with ServerThread(server) as harness:
        host, port = harness.server.address
        with MatchingClient(host, port) as client:
            # Deterministic overload: occupy the single admission slot
            # through the service's own hooks, no racing threads.
            service._admit(1, None)
            try:
                with pytest.raises(ServiceOverloadedError):
                    client.submit(repro.MatchingRequest(prefs))
            finally:
                service._release(1)
            # The slot freed: the same connection serves the retry.
            assert client.submit(repro.MatchingRequest(prefs)).pairs


# ----------------------------------------------------------------------
# Lifecycle: retry/backoff and graceful drain
# ----------------------------------------------------------------------
def test_connect_retries_give_up_with_the_last_error_attached():
    port = free_port()
    client = MatchingClient("127.0.0.1", port, connect_attempts=3,
                            backoff=0.001)
    prefs = repro.generate_preferences(n=2, dims=2, seed=5)
    with pytest.raises(ConnectionRetriesExceededError) as excinfo:
        client.submit(repro.MatchingRequest(prefs))
    error = excinfo.value
    assert error.attempts == 3
    assert error.address == f"127.0.0.1:{port}"
    assert isinstance(error.last_error, OSError)


def test_draining_server_rejects_new_requests_with_503(served):
    objects, service, harness, host, port = served
    prefs = repro.generate_preferences(n=2, dims=2, seed=5)
    harness.server._draining = True
    try:
        with MatchingClient(host, port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.submit(repro.MatchingRequest(prefs))
        assert excinfo.value.code == 503
    finally:
        harness.server._draining = False


def test_graceful_drain_answers_in_flight_requests():
    objects, service = make_service()
    gate = threading.Event()
    started = threading.Event()
    original = service.submit_many

    def gated_submit_many(requests):
        started.set()
        assert gate.wait(10), "drain test gate never opened"
        return original(requests)

    service.submit_many = gated_submit_many
    server = MatchingServer(service, close_service=True)
    harness = ServerThread(server)
    host, port = harness.start()
    outcome = {}

    def submit():
        with MatchingClient(host, port) as client:
            prefs = repro.generate_preferences(n=2, dims=2, seed=5)
            outcome["result"] = client.submit(repro.MatchingRequest(prefs))

    client_thread = threading.Thread(target=submit, daemon=True)
    client_thread.start()
    assert started.wait(10), "request never reached the service"

    stopper = threading.Thread(target=harness.stop, daemon=True)
    stopper.start()
    # The drain must wait for the in-flight request, not abandon it.
    time.sleep(0.05)
    assert stopper.is_alive(), "stop() returned with a request in flight"

    gate.set()
    stopper.join(10)
    client_thread.join(10)
    assert not stopper.is_alive()
    assert "result" in outcome, "in-flight request was dropped by drain"
    assert outcome["result"].pairs


def test_server_thread_reports_bind_failures():
    objects, service = make_service()
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    _, taken = blocker.getsockname()
    try:
        server = MatchingServer(service, port=taken, close_service=True)
        with pytest.raises(OSError):
            ServerThread(server).start()
    finally:
        blocker.close()
        service.close()
