"""Chain matcher (the Wong et al. adaptation of Section V)."""

import pytest

from repro.core import ChainMatcher, MatchingProblem, greedy_reference_matching
from repro.data import generate_anticorrelated, generate_independent, generate_zillow
from repro.errors import MatchingError
from repro.prefs import generate_preferences


def make_problem(n=400, dims=3, nf=25, generator=generate_independent,
                 seed=120):
    objects = generator(n, dims, seed=seed)
    functions = generate_preferences(nf, dims, seed=seed + 1)
    return MatchingProblem.build(objects, functions)


@pytest.mark.parametrize("generator", [
    generate_independent, generate_anticorrelated,
])
def test_matches_greedy_reference(generator):
    problem = make_problem(generator=generator)
    matching = ChainMatcher(problem).run()
    reference = greedy_reference_matching(problem.objects, problem.functions)
    assert matching.as_set() == reference.as_set()


def test_zillow_workload():
    objects = generate_zillow(400, seed=121)
    functions = generate_preferences(20, 5, seed=122)
    problem = MatchingProblem.build(objects, functions)
    matching = ChainMatcher(problem).run()
    reference = greedy_reference_matching(objects, functions)
    assert matching.as_set() == reference.as_set()


def test_restart_and_stack_variants_same_matching():
    problem_a = make_problem(seed=123)
    problem_b = make_problem(seed=123)
    restart = ChainMatcher(problem_a, restart=True).run()
    retained = ChainMatcher(problem_b, restart=False).run()
    assert restart.as_set() == retained.as_set()


def test_stack_retention_needs_fewer_searches():
    problem_a = make_problem(n=600, nf=60, seed=124)
    problem_b = make_problem(n=600, nf=60, seed=124)
    restart = ChainMatcher(problem_a, restart=True)
    retained = ChainMatcher(problem_b, restart=False)
    restart.run()
    retained.run()
    assert retained.top1_searches <= restart.top1_searches


def test_chain_scores_equal_both_directions():
    # The emitted score must be the same whether the mutual pair closed on
    # the object side or the function side (canonical arithmetic).
    problem = make_problem(seed=125)
    for pair in ChainMatcher(problem).pairs():
        function = next(
            f for f in problem.functions if f.fid == pair.function_id
        )
        expected = function.score(problem.objects.vector(pair.object_id))
        assert pair.score == expected  # bitwise


def test_filter_mode_equivalent():
    problem_a = make_problem(seed=126)
    problem_b = make_problem(seed=126)
    a = ChainMatcher(problem_a, deletion_mode="delete").run()
    b = ChainMatcher(problem_b, deletion_mode="filter").run()
    assert a.as_set() == b.as_set()
    assert problem_b.tree.num_objects == 400


def test_more_functions_than_objects():
    objects = generate_independent(8, 2, seed=127)
    functions = generate_preferences(20, 2, seed=128)
    problem = MatchingProblem.build(objects, functions)
    matching = ChainMatcher(problem).run()
    assert len(matching) == 8
    assert len(matching.unmatched_functions) == 12
    reference = greedy_reference_matching(objects, functions)
    assert matching.as_set() == reference.as_set()


def test_empty_sides():
    problem = MatchingProblem.build(generate_independent(5, 2, seed=129), [])
    assert len(ChainMatcher(problem).run()) == 0
    problem = MatchingProblem.build(
        generate_independent(0, 2, seed=130),
        generate_preferences(3, 2, seed=131),
    )
    assert len(ChainMatcher(problem).run()) == 0


def test_invalid_deletion_mode():
    problem = make_problem(n=10, nf=2)
    with pytest.raises(MatchingError):
        ChainMatcher(problem, deletion_mode="wipe")


def test_function_fanout_variants_agree():
    results = []
    for fanout in (4, 64):
        problem = make_problem(seed=132)
        results.append(
            ChainMatcher(problem, function_fanout=fanout).run().as_set()
        )
    assert results[0] == results[1]
