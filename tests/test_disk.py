"""Unit tests for the simulated disk manager."""

import pytest

from repro.errors import PageNotFoundError, PageSizeError
from repro.storage import DiskManager, Page


def test_allocate_returns_distinct_ids():
    disk = DiskManager()
    ids = [disk.allocate() for _ in range(10)]
    assert len(set(ids)) == 10
    assert disk.num_pages == 10


def test_allocation_is_free_of_io():
    disk = DiskManager()
    disk.allocate()
    assert disk.stats.io_accesses == 0
    assert disk.stats.pages_allocated == 1


def test_read_write_roundtrip_counts_io():
    disk = DiskManager(page_size=64)
    page_id = disk.allocate()
    disk.write_page(Page(page_id, 64, b"payload"))
    page = disk.read_page(page_id)
    assert page.data == b"payload"
    assert disk.stats.page_writes == 1
    assert disk.stats.page_reads == 1
    assert disk.stats.io_accesses == 2


def test_read_unallocated_page_fails():
    disk = DiskManager()
    with pytest.raises(PageNotFoundError) as excinfo:
        disk.read_page(99)
    assert excinfo.value.page_id == 99


def test_write_unallocated_page_fails():
    disk = DiskManager(page_size=32)
    with pytest.raises(PageNotFoundError):
        disk.write_page(Page(5, 32, b"x"))


def test_write_wrong_page_size_fails():
    disk = DiskManager(page_size=32)
    page_id = disk.allocate()
    with pytest.raises(PageSizeError):
        disk.write_page(Page(page_id, 64, b"x"))


def test_free_releases_and_reuses_ids():
    disk = DiskManager()
    first = disk.allocate()
    disk.free(first)
    assert not disk.exists(first)
    assert disk.num_pages == 0
    again = disk.allocate()
    assert again == first  # freed ids are recycled
    assert disk.stats.pages_freed == 1
    assert disk.stats.pages_allocated == 2


def test_free_unallocated_fails():
    disk = DiskManager()
    with pytest.raises(PageNotFoundError):
        disk.free(1)


def test_read_after_free_fails():
    disk = DiskManager()
    page_id = disk.allocate()
    disk.free(page_id)
    with pytest.raises(PageNotFoundError):
        disk.read_page(page_id)


def test_invalid_page_size():
    with pytest.raises(PageSizeError):
        DiskManager(page_size=0)


def test_shared_stats_object():
    from repro.storage import IOStats

    stats = IOStats()
    disk = DiskManager(stats=stats)
    page_id = disk.allocate()
    disk.read_page(page_id)
    assert stats.page_reads == 1
