"""Dataset container tests."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.errors import DatasetError


def test_basic_construction():
    ds = Dataset([[0.1, 0.2], [0.3, 0.4]], name="tiny")
    assert len(ds) == 2
    assert ds.dims == 2
    assert ds.ids == [0, 1]
    assert ds.vector(1) == (0.3, 0.4)
    assert list(ds) == [(0, (0.1, 0.2)), (1, (0.3, 0.4))]


def test_explicit_ids():
    ds = Dataset([[0.5, 0.5]], ids=[42])
    assert ds.ids == [42]
    assert 42 in ds and 0 not in ds
    assert ds.vector(42) == (0.5, 0.5)
    with pytest.raises(DatasetError):
        ds.vector(0)


def test_validation_errors():
    with pytest.raises(DatasetError):
        Dataset([0.1, 0.2])  # not 2-D
    with pytest.raises(DatasetError):
        Dataset([[0.1, float("nan")]])
    with pytest.raises(DatasetError):
        Dataset([[1.5, 0.0]])  # out of range
    with pytest.raises(DatasetError):
        Dataset([[-0.1, 0.0]])
    with pytest.raises(DatasetError):
        Dataset([[0.1, 0.2]], ids=[1, 2])  # length mismatch
    with pytest.raises(DatasetError):
        Dataset([[0.1, 0.2], [0.3, 0.4]], ids=[1, 1])  # duplicate ids
    with pytest.raises(DatasetError):
        Dataset([[0.1, 0.2]], ids=[-1])


def test_matrix_is_read_only():
    ds = Dataset([[0.1, 0.2]])
    with pytest.raises(ValueError):
        ds.matrix[0, 0] = 0.9


def test_from_raw_minmax_normalization():
    raw = [[10.0, 100.0], [20.0, 300.0], [15.0, 200.0]]
    ds = Dataset.from_raw(raw)
    assert ds.vector(0) == (0.0, 0.0)
    assert ds.vector(1) == (1.0, 1.0)
    assert ds.vector(2) == (0.5, 0.5)


def test_from_raw_flips_smaller_is_better():
    raw = [[100.0], [300.0]]
    ds = Dataset.from_raw(raw, larger_is_better=[False])  # e.g. price
    assert ds.vector(0) == (1.0,)  # cheapest scores best
    assert ds.vector(1) == (0.0,)


def test_from_raw_constant_column_maps_to_half():
    ds = Dataset.from_raw([[5.0, 1.0], [5.0, 2.0]])
    assert ds.vector(0)[0] == 0.5
    assert ds.vector(1)[0] == 0.5


def test_from_raw_orientation_length_mismatch():
    with pytest.raises(DatasetError):
        Dataset.from_raw([[1.0, 2.0]], larger_is_better=[True])


def test_subset_preserves_ids_and_order():
    ds = Dataset(np.random.default_rng(0).random((10, 2)))
    sub = ds.subset([7, 3, 5])
    assert sub.ids == [7, 3, 5]
    assert sub.vector(3) == ds.vector(3)


def test_sample_without_replacement_deterministic():
    ds = Dataset(np.random.default_rng(1).random((100, 3)))
    a = ds.sample(20, seed=5)
    b = ds.sample(20, seed=5)
    assert a.ids == b.ids
    assert len(set(a.ids)) == 20
    c = ds.sample(20, seed=6)
    assert a.ids != c.ids
    with pytest.raises(DatasetError):
        ds.sample(101)


def test_empty_dataset():
    ds = Dataset(np.empty((0, 3)))
    assert len(ds) == 0
    assert ds.dims == 3
    assert list(ds) == []
