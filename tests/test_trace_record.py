"""SB round tracing and sweep persistence (JSON / Markdown)."""

import pytest

from repro.bench import (
    figure2_sweep,
    load_sweep_json,
    save_sweep_json,
    sweep_to_dict,
    sweep_to_markdown,
)
from repro.core import MatchingProblem, RoundTrace, SkylineMatcher, TraceRecorder
from repro.errors import MatchingError
from repro.data import generate_independent
from repro.prefs import generate_preferences


def traced_run(nf=25):
    objects = generate_independent(400, 3, seed=270)
    functions = generate_preferences(nf, 3, seed=271)
    problem = MatchingProblem.build(objects, functions)
    recorder = TraceRecorder()
    matcher = SkylineMatcher(problem, on_round=recorder)
    matching = matcher.run()
    return matching, matcher, recorder


def test_trace_covers_every_round_and_pair():
    matching, matcher, recorder = traced_run()
    assert len(recorder) == matcher.rounds
    assert recorder.total_pairs == len(matching)
    assert [trace.round for trace in recorder.rounds] == list(
        range(matcher.rounds)
    )


def test_trace_pairs_match_emitted_pairs():
    matching, _, recorder = traced_run()
    from_trace = {
        (fid, oid)
        for trace in recorder.rounds
        for fid, oid, _score in trace.pairs
    }
    assert from_trace == matching.as_set()


def test_trace_functions_remaining_decreases_to_zero():
    _, _, recorder = traced_run()
    remaining = [trace.functions_remaining for trace in recorder.rounds]
    assert all(a > b for a, b in zip(remaining, remaining[1:]))
    assert remaining[-1] == 0


def test_trace_skyline_size_at_least_pairs_emitted():
    _, _, recorder = traced_run(nf=40)
    for trace in recorder.rounds:
        assert trace.skyline_size >= trace.pairs_emitted


def test_trace_summary_and_empty_recorder():
    _, _, recorder = traced_run()
    text = recorder.summary()
    assert "rounds=" in text and "pairs=" in text
    assert TraceRecorder().summary() == "TraceRecorder(empty)"


def test_round_trace_is_frozen():
    trace = RoundTrace(0, 5, ((1, 2, 0.5),), 4, 10)
    with pytest.raises(AttributeError):
        trace.round = 3
    assert trace.pairs_emitted == 1


# ----------------------------------------------------------------------
# Sweep persistence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_sweep():
    return figure2_sweep(
        "independent", scale=0.002, dims=(2, 3),
        algorithms=("SB", "Chain"), seed=5,
    )


def test_json_roundtrip(tmp_path, small_sweep):
    path = tmp_path / "sweep.json"
    save_sweep_json(small_sweep, path)
    loaded = load_sweep_json(path)
    assert loaded.name == small_sweep.name
    assert loaded.xs() == small_sweep.xs()
    assert loaded.series("SB", "io_accesses") == small_sweep.series(
        "SB", "io_accesses"
    )
    assert loaded.series("Chain", "cpu_seconds") == small_sweep.series(
        "Chain", "cpu_seconds"
    )


def test_json_schema_validation(tmp_path, small_sweep):
    path = tmp_path / "sweep.json"
    save_sweep_json(small_sweep, path)
    import json

    payload = json.loads(path.read_text())
    payload["schema"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(MatchingError):
        load_sweep_json(path)


def test_sweep_to_dict_structure(small_sweep):
    payload = sweep_to_dict(small_sweep)
    assert payload["algorithms"] == ["SB", "Chain"]
    assert len(payload["points"]) == 2
    assert "io_accesses" in payload["points"][0]["results"]["SB"]


def test_markdown_rendering(small_sweep):
    text = sweep_to_markdown(small_sweep, "io_accesses")
    lines = text.splitlines()
    assert lines[0].startswith("| D |")
    assert len(lines) == 2 + len(small_sweep.points)
    assert "| D=2 |" in text


def test_cli_json_output(tmp_path, capsys):
    from repro.bench.cli import main

    code = main([
        "--figure", "2a", "--scale", "0.002", "--json", str(tmp_path),
    ])
    assert code == 0
    files = list(tmp_path.glob("*.json"))
    assert len(files) == 1
    loaded = load_sweep_json(files[0])
    assert loaded.name == "figure2-independent"
