"""Measurement instruments details."""

from repro.bench import measure_matcher
from repro.core import BruteForceMatcher, ChainMatcher, MatchingProblem, SkylineMatcher
from repro.data import generate_independent
from repro.prefs import generate_preferences


def make_problem(seed=350):
    objects = generate_independent(400, 3, seed=seed)
    functions = generate_preferences(15, 3, seed=seed + 1)
    return MatchingProblem.build(objects, functions)


def test_brute_force_measurement_records_top1_searches():
    measurement = measure_matcher(BruteForceMatcher(make_problem()))
    assert measurement.algorithm == "brute-force"
    assert measurement.top1_searches >= 15
    assert measurement.reverse_top1_queries == 0


def test_chain_measurement_records_top1_searches():
    measurement = measure_matcher(ChainMatcher(make_problem()))
    assert measurement.algorithm == "chain"
    assert measurement.top1_searches > 0


def test_sb_measurement_records_reverse_queries_and_rounds():
    measurement = measure_matcher(SkylineMatcher(make_problem()))
    assert measurement.algorithm == "skyline"
    assert measurement.reverse_top1_queries > 0
    assert 1 <= measurement.rounds <= measurement.pairs


def test_measurement_starts_cold():
    problem = make_problem()
    # Warm the buffer with a full skyline pass...
    from repro.skyline import compute_skyline

    compute_skyline(problem.tree)
    warm_reads = problem.io_stats.page_reads
    assert warm_reads > 0
    # ...measure_matcher must reset before measuring: the measured run
    # re-reads the tree from a cold buffer instead of reusing frames.
    measurement = measure_matcher(SkylineMatcher(problem))
    assert measurement.page_reads >= warm_reads


def test_as_dict_merges_extra():
    measurement = measure_matcher(SkylineMatcher(make_problem()))
    measurement.extra["custom"] = 1.5
    payload = measurement.as_dict()
    assert payload["custom"] == 1.5
    assert payload["io_accesses"] == measurement.io_accesses


def test_figure3_small_universe_reuses_whole_dataset():
    from repro.bench import figure3_sweep

    sweep = figure3_sweep(scale=0.0005, sizes=(10_000, 400_000),
                          algorithms=("SB",), seed=3)
    # At this scale every size clamps to the 200-object floor.
    sizes = [point.params["num_objects"] for point in sweep.points]
    assert all(s >= 200 for s in sizes)
    assert len(sweep.points) == 2
