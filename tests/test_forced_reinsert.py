"""R* forced reinsertion."""

import random

import pytest

from tests.conftest import check_rtree_invariants
from repro.data import generate_clustered, generate_independent
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree, top1


def grow(tree, dataset):
    for object_id, point in dataset.items():
        tree.insert(object_id, point)
    return tree


def test_content_identical_with_and_without_reinsertion():
    dataset = generate_independent(600, 3, seed=300)
    with_reinsert = grow(
        RTree(MemoryNodeStore(6), dims=3, forced_reinsert=True), dataset
    )
    without = grow(RTree(MemoryNodeStore(6), dims=3), dataset)
    assert sorted(with_reinsert.iter_objects()) == sorted(without.iter_objects())
    check_rtree_invariants(with_reinsert)


def test_queries_agree():
    dataset = generate_independent(500, 2, seed=301)
    tree = grow(
        RTree(MemoryNodeStore(6), dims=2, forced_reinsert=True), dataset
    )
    plain = grow(RTree(MemoryNodeStore(6), dims=2), dataset)
    for weights in [(0.5, 0.5), (0.9, 0.1), (0.2, 0.8)]:
        assert top1(tree, weights)[0] == top1(plain, weights)[0]


def test_survives_delete_insert_churn():
    dataset = generate_independent(400, 3, seed=302)
    points = dict(dataset.items())
    tree = grow(
        RTree(MemoryNodeStore(5), dims=3, forced_reinsert=True), dataset
    )
    rng = random.Random(1)
    alive = set(dataset.ids)
    for _ in range(400):
        if alive and rng.random() < 0.5:
            victim = rng.choice(sorted(alive))
            tree.delete(victim, points[victim])
            alive.remove(victim)
        else:
            candidates = sorted(set(points) - alive)
            if not candidates:
                continue
            newcomer = rng.choice(candidates)
            tree.insert(newcomer, points[newcomer])
            alive.add(newcomer)
    assert {oid for oid, _ in tree.iter_objects()} == alive
    check_rtree_invariants(tree)


def test_reinsertion_tends_to_pack_clustered_data_tighter():
    # On clustered data, redistributing distant entries should not
    # produce a *larger* tree than plain splitting.
    dataset = generate_clustered(1500, 3, clusters=6, seed=303)
    with_reinsert = grow(
        RTree(DiskNodeStore(3), dims=3, forced_reinsert=True), dataset
    )
    without = grow(RTree(DiskNodeStore(3), dims=3), dataset)
    assert with_reinsert.stats().num_nodes <= without.stats().num_nodes * 1.1


def test_matching_unchanged_by_reinsertion():
    from repro.core import MatchingProblem, SkylineMatcher, greedy_reference_matching
    from repro.prefs import generate_preferences
    from repro.storage import DiskManager, BufferPool
    from repro.rtree import DiskNodeStore

    objects = generate_independent(500, 3, seed=304)
    functions = generate_preferences(20, 3, seed=305)
    disk = DiskManager()
    buffer = BufferPool(disk, capacity=256)
    store = DiskNodeStore(3, disk=disk, buffer=buffer)
    tree = RTree(store, dims=3, forced_reinsert=True)
    for object_id, point in objects.items():
        tree.insert(object_id, point)
    problem = MatchingProblem(objects, functions, tree, disk, buffer)
    matching = SkylineMatcher(problem).run()
    assert matching.as_set() == greedy_reference_matching(
        objects, functions
    ).as_set()
