"""Trace format: round-trip byte-stability, versioning, typed damage."""

import json

import pytest

import repro
from repro.dynamic import DeleteObject, InsertObject, RemoveFunction
from repro.errors import (
    ReplayError,
    TraceError,
    TraceFormatError,
    TraceVersionError,
)
from repro.replay import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    Trace,
    TraceEvent,
    TraceRecorder,
    TraceRequest,
    scenario_trace,
)


@pytest.fixture(scope="module")
def small_trace():
    return scenario_trace("flash-crowd", seed=5, scale=0.5)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
def test_round_trip_is_byte_stable(small_trace, tmp_path):
    """save → load → save reproduces the identical bytes."""
    first = tmp_path / "first.jsonl"
    second = tmp_path / "second.jsonl"
    small_trace.save(first)
    Trace.load(first).save(second)
    assert first.read_bytes() == second.read_bytes()


def test_round_trip_preserves_every_record(small_trace, tmp_path):
    path = tmp_path / "trace.jsonl"
    small_trace.save(path)
    loaded = Trace.load(path)
    assert loaded.name == small_trace.name
    assert loaded.seed == small_trace.seed
    assert loaded.phases == small_trace.phases
    assert loaded.counts() == small_trace.counts()
    assert dict(loaded.objects.items()) == dict(small_trace.objects.items())
    assert loaded.functions == small_trace.functions
    assert loaded.records == small_trace.records


def test_header_declares_schema_and_version(small_trace):
    header = json.loads(small_trace.to_lines()[0])
    assert header["schema"] == TRACE_SCHEMA
    assert header["version"] == TRACE_VERSION
    footer = json.loads(small_trace.to_lines()[-1])
    assert footer == {
        "kind": "end", "records": len(small_trace.to_lines()) - 2,
    }


# ----------------------------------------------------------------------
# Typed failure modes
# ----------------------------------------------------------------------
def test_unknown_version_raises_typed_error(small_trace):
    lines = small_trace.to_lines()
    header = json.loads(lines[0])
    header["version"] = 99
    lines[0] = json.dumps(header)
    with pytest.raises(TraceVersionError) as caught:
        Trace.from_lines(lines)
    assert caught.value.version == 99
    assert "version 99" in str(caught.value)
    # The hierarchy lets callers catch broadly:
    assert isinstance(caught.value, TraceError)
    assert isinstance(caught.value, ReplayError)
    assert isinstance(caught.value, repro.ReproError)


def test_missing_footer_is_reported_as_truncation(small_trace):
    lines = small_trace.to_lines()[:-1]
    with pytest.raises(TraceFormatError, match="truncated"):
        Trace.from_lines(lines)


def test_dropped_body_line_is_reported_as_truncation(small_trace):
    lines = small_trace.to_lines()
    del lines[3]  # footer count no longer matches
    with pytest.raises(TraceFormatError, match="truncated"):
        Trace.from_lines(lines)


def test_bad_json_names_the_line(small_trace):
    lines = small_trace.to_lines()
    lines[2] = lines[2][:-5]  # chop mid-record
    with pytest.raises(TraceFormatError, match="line 3"):
        Trace.from_lines(lines)


def test_unknown_record_kind_rejected(small_trace):
    lines = small_trace.to_lines()
    lines[1] = json.dumps({"kind": "mystery"})
    with pytest.raises(TraceFormatError, match="unknown record kind"):
        Trace.from_lines(lines)


def test_unknown_event_kind_rejected(small_trace):
    lines = small_trace.to_lines()
    lines[1] = json.dumps({"kind": "event", "event": "explode", "ts": 0.0})
    with pytest.raises(TraceFormatError, match="unknown event kind"):
        Trace.from_lines(lines)


def test_non_header_first_line_rejected(small_trace):
    lines = small_trace.to_lines()[1:]
    with pytest.raises(TraceFormatError, match="header"):
        Trace.from_lines(lines)


def test_foreign_schema_rejected(small_trace):
    lines = small_trace.to_lines()
    header = json.loads(lines[0])
    header["schema"] = "other-format"
    lines[0] = json.dumps(header)
    with pytest.raises(TraceFormatError, match="not a repro-trace"):
        Trace.from_lines(lines)


def test_empty_input_rejected():
    with pytest.raises(TraceFormatError, match="empty trace"):
        Trace.from_lines([])


# ----------------------------------------------------------------------
# Construction-time validation
# ----------------------------------------------------------------------
def _base():
    objects = repro.generate_independent(10, 2, seed=1)
    functions = repro.generate_preferences(2, 2, seed=2)
    return objects, tuple(functions)


def test_records_must_not_go_back_in_time():
    objects, functions = _base()
    records = (
        TraceEvent(DeleteObject(0, ts=5.0)),
        TraceEvent(DeleteObject(1, ts=4.0)),
    )
    with pytest.raises(TraceFormatError, match="back in time"):
        Trace("bad", 0, objects, functions, records)


def test_phases_must_be_contiguous():
    objects, functions = _base()
    records = (
        TraceEvent(DeleteObject(0, ts=1.0), phase="a"),
        TraceEvent(DeleteObject(1, ts=2.0), phase="b"),
        TraceEvent(DeleteObject(2, ts=3.0), phase="a"),
    )
    with pytest.raises(TraceFormatError, match="not contiguous"):
        Trace("bad", 0, objects, functions, records)


def test_declared_phase_order_must_match_records():
    objects, functions = _base()
    records = (
        TraceEvent(DeleteObject(0, ts=1.0), phase="b"),
        TraceEvent(DeleteObject(1, ts=2.0), phase="a"),
    )
    with pytest.raises(TraceFormatError, match="subsequence"):
        Trace("bad", 0, objects, functions, records, phases=("a", "b"))


def test_request_workloads_must_be_linear():
    class NotLinear:
        fid = 1
        weights = (0.5, 0.5)

    with pytest.raises(TraceFormatError, match="LinearPreference"):
        TraceRequest(ts=0.0, functions=(NotLinear(),))


def test_base_function_dims_must_match_objects():
    objects, _ = _base()
    bad = repro.LinearPreference(7, (0.2, 0.3, 0.5))  # 3 weights vs 2 dims
    with pytest.raises(TraceFormatError, match="weights"):
        Trace("bad", 0, objects, (bad,), ())


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def test_recorder_builds_a_valid_trace(tmp_path):
    objects, functions = _base()
    recorder = TraceRecorder(objects, functions, name="manual", seed=3)
    recorder.phase = "warm"
    recorder.record_event(InsertObject(500, (0.5, 0.5)), ts=1.0)
    recorder.record_request([functions[0]], ts=1.5, priority=2)
    recorder.phase = "drain"
    recorder.record_event(RemoveFunction(functions[1].fid), ts=2.0)
    trace = recorder.trace()
    assert trace.phases == ("warm", "drain")
    assert trace.counts()["events"] == 2
    assert trace.counts()["requests"] == 1
    assert trace.records[1].priority == 2
    path = tmp_path / "manual.jsonl"
    trace.save(path)
    assert Trace.load(path).records == trace.records


def test_recorder_rejects_time_travel():
    objects, functions = _base()
    recorder = TraceRecorder(objects, functions)
    recorder.record_event(DeleteObject(0), ts=5.0)
    with pytest.raises(TraceFormatError, match="non-decreasing"):
        recorder.record_request([functions[0]], ts=4.0)


def test_observe_tees_live_session_churn():
    """Events accepted by a live session land in the recording, stamped
    by the supplied clock, without breaking the existing observer."""
    objects = repro.generate_independent(60, 3, seed=4)
    functions = list(repro.generate_preferences(6, 3, seed=5))
    seen = []
    clock = iter([10.0, 11.0, 12.0])
    recorder = TraceRecorder(objects, functions, name="live")
    with repro.open_session(objects, functions, backend="memory") as session:
        session.on_change = seen.append
        recorder.observe(session, lambda: next(clock))
        session.submit(DeleteObject(objects.ids[0]))
        session.submit(InsertObject(9_000, (0.4, 0.4, 0.4)))
        session.matching()
    trace = recorder.trace()
    assert [type(r.event).__name__ for r in trace.records] == [
        "DeleteObject", "InsertObject",
    ]
    assert [r.ts for r in trace.records] == [10.0, 11.0]
    assert len(seen) == 2  # the prior observer kept firing
