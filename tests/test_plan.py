"""The serving pipeline: plan compilation, prepared state, worker pool."""

import pytest

import repro
from repro import MatchingConfig, MatchingPlan, PreparedMatching
from repro.data import generate_independent
from repro.engine import available_algorithms, available_backends
from repro.engine.cache import config_fingerprint
from repro.errors import MatchingError
from repro.prefs import generate_preferences


def tiny_workload(n_objects=300, n_functions=12, dims=3, seed=90):
    objects = generate_independent(n_objects, dims, seed=seed)
    functions = generate_preferences(n_functions, dims, seed=seed + 1)
    return objects, functions


def assignments(result):
    return sorted(
        (pair.function_id, pair.object_id, pair.score)
        for pair in result.pairs
    )


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def test_plan_resolves_aliases_to_canonical_names():
    plan = repro.plan(algorithm="skyline", backend="mem")
    assert plan.algorithm == "sb"
    assert plan.backend_name == "memory"
    assert plan.shards == 1 and not plan.is_sharded


def test_plan_compile_rejects_unknown_algorithm_and_backend():
    with pytest.raises(MatchingError, match="unknown algorithm 'oracle'"):
        repro.plan(algorithm="oracle")
    with pytest.raises(MatchingError, match="unknown backend 'tape'"):
        repro.plan(backend="tape")


def test_plan_compile_rejects_unshardable_algorithm():
    # Late-binding used to surface this mid-request; the plan rejects it
    # before any data is staged.
    with pytest.raises(MatchingError, match="cannot run sharded"):
        repro.plan(algorithm="generic-sb", shards=4)


def test_sharded_by_name_opts_into_default_fanout():
    plan = repro.plan(algorithm="sharded-sb")
    assert plan.is_sharded
    assert plan.shards == 4
    assert plan.base_algorithm == "sb"
    wider = repro.plan(algorithm="sharded-sb", shards=6)
    assert wider.shards == 6


def test_fingerprint_is_stable_and_config_sensitive():
    a = repro.plan(backend="memory").fingerprint
    assert a == repro.plan(backend="memory").fingerprint
    assert a == config_fingerprint(MatchingConfig(backend="memory"))
    assert a != repro.plan(backend="disk").fingerprint
    assert a != repro.plan(backend="memory", capacities={1: 2}).fingerprint


def test_plan_accepts_config_object_and_overrides():
    base = MatchingConfig(algorithm="chain", seed=7)
    plan = repro.plan(base, backend="memory")
    assert plan.algorithm == "chain"
    assert plan.config.seed == 7
    assert plan.config.backend == "memory"
    assert base.backend == "disk"  # the original is untouched


# ----------------------------------------------------------------------
# Prepare + run parity
# ----------------------------------------------------------------------
def test_prepared_run_matches_cold_match_everywhere():
    objects, functions = tiny_workload(seed=91)
    for algorithm in available_algorithms():
        for backend in available_backends():
            kwargs = dict(algorithm=algorithm, backend=backend)
            if algorithm.startswith("sharded"):
                kwargs["executor"] = "serial"
            cold = repro.match(objects, functions, **kwargs)
            prepared = repro.plan(**kwargs).prepare(objects)
            warm = prepared.run(functions)
            assert assignments(warm) == assignments(cold), (
                algorithm, backend,
            )
            prepared.close()


def test_prepared_run_capacitated_parity():
    objects = generate_independent(40, 3, seed=92)
    functions = generate_preferences(25, 3, seed=93)
    capacities = {oid: (oid % 3) for oid, _ in objects.items()}
    cold = repro.match(objects, functions, capacities=capacities,
                       backend="memory")
    prepared = repro.plan(capacities=capacities,
                          backend="memory").prepare(objects)
    warm = prepared.run(functions)
    assert warm.is_capacitated
    assert warm.as_set() == cold.as_set()
    assert warm.capacities == cold.capacities


def test_prepared_restages_after_destructive_matcher():
    # Chain (deletion_mode="delete") consumes the warm tree; the next
    # cache-missing run must restage, not silently shrink.
    objects, functions = tiny_workload(seed=94)
    other = generate_preferences(12, 3, seed=96)
    prepared = repro.plan(algorithm="chain", backend="disk").prepare(objects)
    first = prepared.run(functions)
    assert prepared.stagings == 1
    second = prepared.run(other)  # different workload: a true rerun
    assert prepared.stagings == 2
    again = prepared.run(functions)  # cache hit, no third staging
    assert again is first
    assert prepared.stagings == 2
    assert assignments(second) == assignments(
        repro.match(objects, other, algorithm="chain")
    )


def test_prepared_run_with_no_functions():
    objects, _ = tiny_workload(n_objects=50, seed=96)
    prepared = repro.plan(backend="memory").prepare(objects)
    result = prepared.run([])
    assert len(result) == 0
    assert result.unmatched_functions == []


def test_prepared_close_stops_serving():
    objects, functions = tiny_workload(n_objects=50, seed=97)
    prepared = repro.plan(backend="memory").prepare(objects)
    prepared.close()
    with pytest.raises(MatchingError, match="closed"):
        prepared.run(functions)


# ----------------------------------------------------------------------
# Warm sharded serving: deferred parent, persistent pool, shard reuse
# ----------------------------------------------------------------------
def test_sharded_prepare_defers_the_parent_tree():
    objects, functions = tiny_workload(seed=98)
    prepared = repro.plan(backend="memory", shards=3,
                          executor="serial").prepare(objects)
    assert not prepared.parent_tree_built
    result = prepared.run(functions)
    assert not prepared.parent_tree_built  # merge/repair never needed it
    single = repro.match(objects, functions, backend="memory")
    assert assignments(result) == assignments(single)
    prepared.close()


def test_single_process_prepare_builds_the_tree():
    objects, _ = tiny_workload(n_objects=50, seed=99)
    prepared = repro.plan(backend="memory").prepare(objects)
    assert prepared.parent_tree_built


def test_persistent_pool_spawns_workers_once_across_runs():
    objects, _ = tiny_workload(seed=100)
    prepared = repro.plan(backend="memory", shards=3,
                          executor="thread").prepare(objects)
    reference_engine = repro.MatchingEngine(backend="memory")
    for round_number in range(5):
        prefs = generate_preferences(10, 3, seed=200 + round_number)
        warm = prepared.run(prefs)
        cold = reference_engine.match(objects, prefs)
        assert assignments(warm) == assignments(cold)
        # Every workload is new, so every run truly fanned out.
        assert warm.stats["shards_used"] == 3
        # The shard trees were bulk-loaded by the first run only.
        expected_stagings = 3 if round_number == 0 else 0
        assert warm.stats["shard_stagings"] == expected_stagings
    assert prepared.pool.spawn_count == 1
    assert prepared.pool.runs == 5
    prepared.close()


def test_pool_survives_destructive_base_algorithm():
    # A delete-mode base matcher consumes the worker-cached shard trees;
    # the workers must rebuild them (staged again) and stay exact.
    objects, _ = tiny_workload(seed=101)
    prepared = repro.plan(algorithm="chain", backend="memory", shards=3,
                          executor="serial").prepare(objects)
    for round_number in range(3):
        prefs = generate_preferences(8, 3, seed=300 + round_number)
        warm = prepared.run(prefs)
        cold = repro.match(objects, prefs, algorithm="chain",
                           backend="memory")
        assert assignments(warm) == assignments(cold)
        assert warm.stats["shard_stagings"] == 3  # rebuilt every run
    prepared.close()


def test_closed_pool_rejects_runs():
    from repro.parallel import ShardWorkerPool

    pool = ShardWorkerPool(executor="serial")
    assert pool.run([]) == []
    pool.close()
    with pytest.raises(MatchingError, match="closed"):
        pool.run([])


def test_pool_validates_executor():
    from repro.parallel import ShardWorkerPool

    with pytest.raises(MatchingError, match="executor"):
        ShardWorkerPool(executor="gpu")
    with pytest.raises(MatchingError, match="max_workers"):
        ShardWorkerPool(max_workers=0)


def test_concurrent_prepared_matchings_keep_their_warm_shards():
    # Two live prepared matchings sharing the in-process worker cache
    # (serial/thread executors) must not thrash each other's staged
    # shard trees.
    objects_a, _ = tiny_workload(seed=105)
    objects_b, _ = tiny_workload(seed=106)
    a = repro.plan(backend="memory", shards=3,
                   executor="serial").prepare(objects_a)
    b = repro.plan(backend="memory", shards=3,
                   executor="serial").prepare(objects_b)
    for round_number in range(3):
        prefs = generate_preferences(8, 3, seed=600 + round_number)
        warm_a = a.run(prefs)
        warm_b = b.run(prefs)
        expected = 3 if round_number == 0 else 0
        assert warm_a.stats["shard_stagings"] == expected
        assert warm_b.stats["shard_stagings"] == expected
    a.close()
    b.close()


def test_closing_prepared_purges_in_process_shard_cache():
    from repro.parallel.shard import _STAGED_SHARDS

    objects, functions = tiny_workload(seed=107)
    prepared = repro.plan(backend="memory", shards=3,
                          executor="serial").prepare(objects)
    prepared.run(functions)
    token = prepared._token
    assert any(key[0] == token for key in _STAGED_SHARDS)
    prepared.close()
    assert not any(key[0] == token for key in _STAGED_SHARDS)


def test_pool_propagates_task_errors_without_degrading():
    # A task-level error (bad input, a bug) must raise, not silently
    # flip the persistent pool to serial for its remaining life.
    from repro.parallel import ShardWorkerPool
    from repro.parallel.shard import ShardTask

    objects, functions = tiny_workload(n_objects=40, seed=108)
    config = MatchingConfig(backend="memory")
    bad = ShardTask(
        index=0, dims=3,
        items=tuple(objects.items()),
        functions=(repro.prefs.LinearPreference.normalized(0, [1.0, 1.0]),),
        config=config,  # 2-dim function vs 3-dim objects
    )
    pool = ShardWorkerPool(executor="process", max_workers=2)
    good = ShardTask(
        index=1, dims=3, items=tuple(objects.items()),
        functions=tuple(functions), config=config,
    )
    try:
        with pytest.raises(Exception):
            pool.run([bad, good])
        assert pool.executor == "process"  # not degraded to serial
    finally:
        pool.close()


# ----------------------------------------------------------------------
# Plan-level sessions
# ----------------------------------------------------------------------
def test_plan_open_session_matches_facade_contract():
    objects, functions = tiny_workload(n_objects=80, seed=102)
    plan = repro.plan(backend="memory")
    session = plan.open_session(objects, functions)
    assert len(session.pairs) == len(functions)
    with pytest.raises(MatchingError, match="capacitated"):
        repro.plan(backend="memory", capacities={0: 2}).open_session(
            objects, functions
        )
    with pytest.raises(MatchingError, match="single-process"):
        repro.plan(backend="memory", shards=2).open_session(
            objects, functions
        )


# ----------------------------------------------------------------------
# Facade-level integration
# ----------------------------------------------------------------------
def test_engine_exposes_its_compiled_plan():
    engine = repro.MatchingEngine(algorithm="skyline", backend="memory")
    assert isinstance(engine.plan, MatchingPlan)
    assert engine.plan.algorithm == "sb"


def test_plan_submodule_is_not_shadowed():
    # repro.plan is the factory; repro.engine.plan stays the module.
    import repro.engine.plan

    assert repro.engine.plan.MatchingPlan is MatchingPlan
    assert callable(repro.plan)


def test_engine_match_stays_warm_across_workloads():
    # The prepared state depends only on the object set: a stream of
    # different workloads through one engine reuses the staging (and
    # the result cache serves exact repeats).
    objects, functions = tiny_workload(n_objects=80, seed=109)
    other = generate_preferences(12, 3, seed=700)
    engine = repro.MatchingEngine(backend="memory")
    first = engine.match(objects, functions)
    engine.match(objects, other)
    assert engine.match(objects, functions) is first  # cache, not rerun
    with pytest.deprecated_call():
        assert engine.stagings == 1


def test_engine_compiles_at_construction():
    with pytest.raises(MatchingError, match="unknown algorithm"):
        repro.MatchingEngine(algorithm="oracle")


def test_engine_stagings_is_deprecated_but_working():
    objects, functions = tiny_workload(n_objects=50, seed=103)
    engine = repro.MatchingEngine(backend="memory")
    engine.match(objects, functions)
    with pytest.deprecated_call():
        assert engine.stagings == 1


def test_engine_close_releases_and_allows_reuse():
    objects, functions = tiny_workload(n_objects=60, seed=120)
    with repro.MatchingEngine(backend="memory", shards=2,
                              executor="serial") as engine:
        first = engine.match(objects, functions)
    # close() ran on exit; the engine stays usable with fresh state.
    again = engine.match(objects, functions)
    assert assignments(again) == assignments(first)
    engine.close()


def test_prepared_is_a_context_manager():
    objects, functions = tiny_workload(n_objects=50, seed=104)
    with repro.plan(backend="memory").prepare(objects) as prepared:
        assert isinstance(prepared, PreparedMatching)
        assert len(prepared.run(functions)) == len(functions)
    with pytest.raises(MatchingError, match="closed"):
        prepared.run(functions)
