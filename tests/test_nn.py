"""Nearest-neighbor search over the R-tree."""

import math

import numpy as np
import pytest

from repro.data import generate_independent
from repro.errors import DimensionalityError
from repro.geometry import MBR
from repro.rtree import (
    DiskNodeStore,
    MemoryNodeStore,
    NearestNeighborSearch,
    RTree,
    k_nearest,
    mindist,
    nearest,
)


def build(dataset, disk=False):
    store = DiskNodeStore(dataset.dims) if disk else MemoryNodeStore(8)
    return RTree.bulk_load(store, dataset.dims, dataset.items()), store


def brute_neighbors(dataset, query):
    rows = dataset.matrix
    dists = np.sqrt(((rows - np.asarray(query)) ** 2).sum(axis=1))
    order = sorted(zip(dists, dataset.ids))
    return [oid for _, oid in order]


def test_mindist_basics():
    box = MBR((0.2, 0.2), (0.6, 0.6))
    assert mindist(box, (0.3, 0.4)) == 0.0          # inside
    assert mindist(box, (0.2, 0.2)) == 0.0          # on the corner
    assert mindist(box, (0.0, 0.4)) == pytest.approx(0.2)
    assert mindist(box, (0.8, 0.8)) == pytest.approx(math.sqrt(0.08))
    with pytest.raises(DimensionalityError):
        mindist(box, (0.1,))


def test_nn_order_matches_brute_force():
    dataset = generate_independent(400, 3, seed=230)
    tree, _ = build(dataset)
    query = (0.3, 0.7, 0.5)
    got = [oid for oid, _, _ in NearestNeighborSearch(tree, query)]
    assert got[:50] == brute_neighbors(dataset, query)[:50]


def test_nearest_and_k_nearest():
    dataset = generate_independent(200, 2, seed=231)
    tree, _ = build(dataset)
    query = (0.5, 0.5)
    want = brute_neighbors(dataset, query)
    assert nearest(tree, query)[0] == want[0]
    assert [oid for oid, _, _ in k_nearest(tree, query, 7)] == want[:7]


def test_distances_are_nondecreasing():
    dataset = generate_independent(300, 3, seed=232)
    tree, _ = build(dataset)
    dists = [d for _, _, d in k_nearest(tree, (0.1, 0.9, 0.4), 60)]
    assert dists == sorted(dists)


def test_excluded_ids_skipped():
    dataset = generate_independent(100, 2, seed=233)
    tree, _ = build(dataset)
    query = (0.2, 0.2)
    first, second = brute_neighbors(dataset, query)[:2]
    assert nearest(tree, query, excluded={first})[0] == second


def test_empty_tree():
    tree = RTree(MemoryNodeStore(8), dims=2)
    assert nearest(tree, (0.5, 0.5)) is None
    assert k_nearest(tree, (0.5, 0.5), 3) == []


def test_equal_distance_ties_by_object_id():
    tree = RTree(MemoryNodeStore(8), dims=2)
    tree.insert(9, (0.4, 0.5))
    tree.insert(2, (0.6, 0.5))  # same distance from (0.5, 0.5)
    order = [oid for oid, _, _ in k_nearest(tree, (0.5, 0.5), 2)]
    assert order == [2, 9]


def test_nn_on_disk_tree_is_partial_read():
    dataset = generate_independent(5000, 3, seed=234)
    tree, store = build(dataset, disk=True)
    store.buffer.resize(4)
    store.buffer.clear()
    store.disk.stats.reset()
    nearest(tree, (0.5, 0.5, 0.5))
    assert store.disk.stats.page_reads < store.disk.num_pages / 4
