"""Matching result containers."""

import pytest

from repro.core import Matching, MatchPair
from repro.errors import MatchingError


def make_pairs():
    return [
        MatchPair(1, 10, 0.9, round=0, rank=0),
        MatchPair(2, 20, 0.8, round=0, rank=1),
        MatchPair(3, 30, 0.7, round=1, rank=2),
    ]


def test_lookup_tables():
    matching = Matching(make_pairs(), algorithm="test")
    assert len(matching) == 3
    assert matching.object_of(2) == 20
    assert matching.function_of(30) == 3
    assert matching.object_of(99) is None
    assert matching.function_of(99) is None
    assert matching.as_dict() == {1: 10, 2: 20, 3: 30}
    assert matching.as_set() == {(1, 10), (2, 20), (3, 30)}


def test_scores_and_rounds():
    matching = Matching(make_pairs())
    assert matching.total_score == pytest.approx(2.4)
    assert matching.mean_score == pytest.approx(0.8)
    assert matching.num_rounds == 2


def test_empty_matching():
    matching = Matching([], unmatched_functions=[1, 2])
    assert len(matching) == 0
    assert matching.mean_score == 0.0
    assert matching.num_rounds == 0
    assert matching.unmatched_functions == [1, 2]


def test_duplicate_function_rejected():
    pairs = [MatchPair(1, 10, 0.9), MatchPair(1, 20, 0.8)]
    with pytest.raises(MatchingError):
        Matching(pairs)


def test_duplicate_object_rejected():
    pairs = [MatchPair(1, 10, 0.9), MatchPair(2, 10, 0.8)]
    with pytest.raises(MatchingError):
        Matching(pairs)


def test_pairs_are_frozen():
    pair = MatchPair(1, 2, 0.5)
    with pytest.raises(AttributeError):
        pair.score = 0.9


def test_iteration_order_is_emission_order():
    matching = Matching(make_pairs())
    assert [pair.rank for pair in matching] == [0, 1, 2]
