"""Unit tests of the DynamicMatcher session API (validation, batching,
lifecycle, statistics) and of engine.open_session gating."""

import pytest

import repro
from repro.dynamic import DeleteObject, DynamicMatcher, InsertObject
from repro.engine import MatchingEngine
from repro.errors import (
    DimensionalityError,
    MatchingError,
    ReproError,
    SessionError,
)
from repro.rtree import validate_tree


@pytest.fixture()
def session():
    objects = repro.generate_independent(60, 3, seed=1)
    functions = repro.generate_preferences(10, 3, seed=2)
    return repro.open_session(objects, functions, backend="memory")


def test_open_session_initial_matching_is_scratch(session):
    objects = repro.generate_independent(60, 3, seed=1)
    functions = repro.generate_preferences(10, 3, seed=2)
    scratch = repro.match(objects, functions, backend="memory")
    assert sorted((p.function_id, p.object_id, p.score)
                  for p in session.pairs) == \
           sorted((p.function_id, p.object_id, p.score)
                  for p in scratch.pairs)
    assert session.num_objects == 60
    assert session.num_functions == 10


def test_insert_validation(session):
    with pytest.raises(SessionError):
        session.insert_object(0, (0.1, 0.2, 0.3))       # id taken
    with pytest.raises(DimensionalityError):
        session.insert_object(1000, (0.1, 0.2))         # wrong arity
    with pytest.raises(SessionError):
        session.insert_object(1000, (0.1, 0.2, 1.5))    # out of range
    with pytest.raises(SessionError):
        session.insert_object(-3, (0.1, 0.2, 0.3))      # negative id


def test_deleted_id_not_reusable_before_compaction(session):
    session.delete_object(5)
    with pytest.raises(SessionError):
        session.insert_object(5, (0.5, 0.5, 0.5))
    with pytest.raises(SessionError):
        session.delete_object(5)  # already gone


def test_function_validation(session):
    with pytest.raises(SessionError):
        session.add_function(repro.generate_preferences(1, 3, seed=9)[0])
    with pytest.raises(DimensionalityError):
        session.add_function(repro.LinearPreference(99, (0.5, 0.5)))
    with pytest.raises(SessionError):
        session.add_function("not a function")
    with pytest.raises(SessionError):
        session.remove_function(12345)


def test_unmatched_object_churn_is_cheap(session):
    # |O| >> |F|: a random unmatched object's deletion repairs nothing.
    before = session.stats["chain_steps"]
    matched = {pair.object_id for pair in session.pairs}
    victim = next(i for i in range(60) if i not in matched)
    session.delete_object(victim)
    assert session.stats["chain_steps"] == before
    assert len(session.pairs) == 10


def test_partner_of_and_pairs_flush_pending_events(session):
    pairs = {p.function_id: p.object_id for p in session.pairs}
    fid, object_id = next(iter(pairs.items()))
    session.delete_object(object_id)
    partner = session.partner_of(fid)
    assert partner != object_id  # repair already applied
    assert partner is None or partner in range(60)


def test_batching_defers_application():
    objects = repro.generate_independent(50, 3, seed=3)
    functions = repro.generate_preferences(8, 3, seed=4)
    session = repro.open_session(objects, functions, backend="memory",
                                 batch_size=10, repair_threshold=1e9)
    for object_id in range(5):
        session.delete_object(object_id)
    assert len(session.log) == 5           # staged, not applied
    assert session.num_objects == 45       # projected view updates eagerly
    applied = session.flush()
    assert applied == 5
    assert len(session.log) == 0
    assert session.flush() == 0


def test_batch_size_triggers_automatic_flush():
    objects = repro.generate_independent(50, 3, seed=5)
    functions = repro.generate_preferences(8, 3, seed=6)
    session = repro.open_session(objects, functions, backend="memory",
                                 batch_size=3, repair_threshold=1e9)
    session.delete_object(0)
    session.delete_object(1)
    assert len(session.log) == 2
    session.delete_object(2)
    assert len(session.log) == 0  # third event filled the batch


def test_submit_accepts_event_objects(session):
    session.submit(InsertObject(777, (0.9, 0.1, 0.4)))
    session.submit(DeleteObject(777))
    with pytest.raises(SessionError):
        session.submit(object())
    assert session.num_objects == 60


def test_close_and_context_manager():
    objects = repro.generate_independent(40, 2, seed=7)
    functions = repro.generate_preferences(5, 2, seed=8)
    with repro.open_session(objects, functions, backend="memory") as session:
        session.delete_object(0)
    with pytest.raises(SessionError):
        session.delete_object(1)

    session = repro.open_session(objects, functions, backend="memory")
    result = session.close()
    assert result.algorithm == "dynamic-sb"
    assert len(result.pairs) == 5
    with pytest.raises(SessionError):
        session.insert_object(999, (0.5, 0.5))


def test_matching_result_provenance_and_stats():
    objects = repro.generate_independent(70, 3, seed=9)
    functions = repro.generate_preferences(12, 3, seed=10)
    session = repro.open_session(objects, functions, algorithm="chain",
                                 backend="disk")
    session.delete_object(session.pairs[0].object_id)
    result = session.matching()
    assert result.algorithm == "dynamic-chain"
    assert result.backend == "disk"
    assert result.stats["events_applied"] == 1
    assert result.stats["delete_object"] == 1
    assert result.io is not None and result.io.io_accesses > 0
    assert result.cpu_seconds > 0


def test_session_tree_stays_valid_under_heavy_churn():
    objects = repro.generate_independent(120, 3, seed=11)
    functions = repro.generate_preferences(15, 3, seed=12)
    session = repro.open_session(objects, functions, backend="disk",
                                 compact_fraction=0.03)
    events = repro.generate_events(objects, functions, 150, seed=13)
    for event in events:
        session.submit(event)
    repair = session._repair
    assert repair.stats.compactions > 0
    # Physically-applied churn must leave a structurally valid tree
    # whose content is surviving ∪ tombstoned-pending ∖ buffered-pending.
    stored = dict(repair.tree.iter_objects())
    expected = dict(repair.points)
    expected.update(repair.tombstones)
    for object_id in repair.pending:
        expected.pop(object_id)
    assert stored == expected
    validate_tree(repair.tree)


def test_open_session_rejects_capacities_and_nonrepairable():
    objects = repro.generate_independent(30, 2, seed=14)
    functions = repro.generate_preferences(5, 2, seed=15)
    with pytest.raises(MatchingError):
        MatchingEngine(capacities={0: 2}).open_session(objects, functions)
    with pytest.raises(MatchingError):
        repro.open_session(objects, functions, algorithm="generic-sb")


def test_session_requires_filter_deletion_mode():
    objects = repro.generate_independent(30, 2, seed=16)
    functions = repro.generate_preferences(5, 2, seed=17)
    engine = MatchingEngine(backend="memory")
    problem = engine.build_problem(objects, functions)
    with pytest.raises(SessionError):
        DynamicMatcher(problem, engine.config)  # deletion_mode="delete"


def test_dynamic_config_knobs_validated():
    with pytest.raises(MatchingError):
        repro.MatchingConfig(batch_size=0)
    with pytest.raises(MatchingError):
        repro.MatchingConfig(repair_threshold=0)
    with pytest.raises(MatchingError):
        repro.MatchingConfig(compact_fraction=-0.1)


def test_session_error_is_a_repro_error():
    assert issubclass(SessionError, ReproError)


def test_deleted_id_blocked_uniformly_across_batch_sizes():
    # Reuse of a physically-rooted deleted id must be rejected no matter
    # whether the delete has been flushed yet (regression: queued deletes
    # used to slip past validation and lose the reinserted object).
    for batch_size in (1, 3, 10):
        objects = repro.generate_independent(30, 2, seed=20)
        functions = repro.generate_preferences(5, 2, seed=21)
        session = repro.open_session(objects, functions, backend="memory",
                                     batch_size=batch_size)
        session.delete_object(7)
        with pytest.raises(SessionError):
            session.insert_object(7, (0.5, 0.5))
        session.flush()
        assert session.num_objects == 29


def test_insert_then_delete_same_id_in_one_batch():
    objects = repro.generate_independent(30, 2, seed=22)
    functions = repro.generate_preferences(5, 2, seed=23)
    for threshold in (1e9, 0.01):  # chain-repair path and recompute path
        session = repro.open_session(objects, functions, backend="memory",
                                     batch_size=8,
                                     repair_threshold=threshold)
        session.insert_object(500, (0.9, 0.9))
        session.delete_object(500)
        session.insert_object(500, (0.1, 0.1))  # fresh queued id: reusable
        session.flush()
        assert session.objects().vector(500) == (0.1, 0.1)
        assert session.num_objects == 31


def test_remove_then_readd_function_in_one_recompute_batch():
    # Regression: the recompute path used to aggregate adds before
    # removes, deleting the re-added function.
    objects = repro.generate_independent(40, 2, seed=24)
    functions = repro.generate_preferences(6, 2, seed=25)
    session = repro.open_session(objects, functions, backend="memory",
                                 batch_size=4, repair_threshold=0.01)
    replacement = repro.LinearPreference.normalized(0, (9.0, 1.0))
    session.remove_function(0)
    session.add_function(replacement)
    session.remove_function(1)
    session.delete_object(3)
    session.flush()
    assert session.stats["full_rematches"] >= 2
    assert [f.fid for f in session.functions()] == [0, 2, 3, 4, 5]
    assert session.functions()[0].weights == replacement.weights
    assert session.num_functions == 5


def test_recompute_session_validates_queued_events():
    objects = repro.generate_independent(20, 2, seed=26)
    functions = repro.generate_preferences(4, 2, seed=27)
    config = repro.MatchingConfig(backend="memory", batch_size=10)
    baseline = repro.RecomputeSession(objects, functions, config)
    baseline.delete_object(3)
    with pytest.raises(SessionError):
        baseline.delete_object(3)       # duplicate queued delete
    baseline.insert_object(900, (0.4, 0.6))
    with pytest.raises(SessionError):
        baseline.insert_object(900, (0.1, 0.1))  # duplicate queued insert
    result = baseline.matching()
    assert len(result.pairs) == 4


def test_within_batch_reinsert_does_not_resurrect_stale_point():
    # Regression: insert/delete/reinsert of one id inside a batch left a
    # ghost entry of the first point parked in the available-skyline;
    # once the id's exclusion was lifted, later plist resurfacing
    # re-admitted the deleted point (crash or silently wrong matching).
    objects = repro.generate_independent(40, 2, seed=30)
    functions = repro.generate_preferences(5, 2, seed=31)
    session = repro.open_session(objects, functions, backend="memory",
                                 batch_size=1, repair_threshold=1e9,
                                 compact_fraction=100.0)  # never compact
    session.delete_object(session.pairs[0].object_id)  # builds the skyline
    session.config = session.config.replace(batch_size=8)
    session.insert_object(100, (0.01, 0.30))  # parked, then stale
    session.delete_object(100)
    session.insert_object(100, (0.30, 0.01))  # incomparable live point
    session.flush()
    for object_id in list(objects.ids):
        if object_id in session._repair.points:
            session.delete_object(object_id)  # force plist resurfacing
    got = sorted((p.function_id, p.object_id, p.score)
                 for p in session.pairs)
    scratch = repro.match(session.objects(), session.functions(),
                          backend="memory")
    want = sorted((p.function_id, p.object_id, p.score)
                  for p in scratch.pairs)
    assert got == want


def test_pending_deleted_id_is_reusable_before_compaction():
    # An id whose object only ever lived in the insert buffer (never
    # compacted into the tree) frees up immediately on deletion, even
    # across flushes — only tree-rooted deletions wait for compaction.
    objects = repro.generate_independent(30, 2, seed=40)
    functions = repro.generate_preferences(5, 2, seed=41)
    session = repro.open_session(objects, functions, backend="memory",
                                 compact_fraction=100.0)
    session.delete_object(session.pairs[0].object_id)  # builds the skyline
    session.insert_object(600, (0.2, 0.7))
    session.flush()
    session.delete_object(600)
    session.insert_object(600, (0.7, 0.2))   # allowed: never tree-rooted
    for object_id in list(objects.ids):
        if object_id in session._repair.points:
            session.delete_object(object_id)
    got = sorted((p.function_id, p.object_id, p.score)
                 for p in session.pairs)
    scratch = repro.match(session.objects(), session.functions(),
                          backend="memory")
    assert got == sorted((p.function_id, p.object_id, p.score)
                         for p in scratch.pairs)
