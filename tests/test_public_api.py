"""Public API surface: everything advertised is importable and wired."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module_name", [
    "repro.storage",
    "repro.geometry",
    "repro.rtree",
    "repro.skyline",
    "repro.prefs",
    "repro.core",
    "repro.data",
    "repro.bench",
])
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, module_name
    for name in module.__all__:
        assert getattr(module, name, None) is not None, (module_name, name)


def test_public_classes_have_docstrings():
    from repro import (
        BruteForceMatcher,
        ChainMatcher,
        Dataset,
        FunctionIndex,
        LinearPreference,
        MatchingProblem,
        SkylineMatcher,
    )

    for cls in (BruteForceMatcher, ChainMatcher, Dataset, FunctionIndex,
                LinearPreference, MatchingProblem, SkylineMatcher):
        assert cls.__doc__ and len(cls.__doc__.strip()) > 20, cls.__name__


def test_quickstart_snippet_from_readme_works():
    from repro import (
        MatchingProblem,
        SkylineMatcher,
        generate_independent,
        generate_preferences,
    )

    objects = generate_independent(n=500, dims=4, seed=7)
    prefs = generate_preferences(n=20, dims=4, seed=11)
    problem = MatchingProblem.build(objects, prefs)
    matching = SkylineMatcher(problem).run()
    assert len(matching) == 20
    assert problem.io_stats.io_accesses >= 0


def test_py_typed_marker_shipped():
    from pathlib import Path

    package_dir = Path(repro.__file__).parent
    assert (package_dir / "py.typed").exists()
