"""The worked example of the paper's Figure 1, end to end.

The paper's narrative: 13 objects a..m and two linear functions f1, f2.
The initial skyline is {a, e}; e is the top-1 object of *both* functions;
the first reported stable pair is (f1, e); the skyline is then updated to
{a, c, d, i}; the second (and last) pair is (f2, d).

The exact coordinates are not given in the paper, so this test constructs
a point set and two weight vectors satisfying every stated relationship,
then asserts the full SB trace reproduces the narrative.
"""

import pytest

from repro.core import (
    BruteForceMatcher,
    ChainMatcher,
    MatchingProblem,
    SkylineMatcher,
    verify_stable_matching,
)
from repro.data import Dataset
from repro.prefs import LinearPreference
from repro.skyline import canonical_skyline_naive, compute_skyline, update_after_removal

#: Figure 1's objects; ids follow letter order (a=0 ... m=12).
POINTS = {
    "a": (0.05, 0.95),
    "b": (0.30, 0.60),
    "c": (0.35, 0.78),
    "d": (0.60, 0.70),
    "e": (0.75, 0.80),
    "f": (0.50, 0.55),
    "g": (0.10, 0.72),
    "h": (0.20, 0.68),
    "i": (0.73, 0.42),
    "j": (0.65, 0.30),
    "k": (0.70, 0.20),
    "l": (0.40, 0.35),
    "m": (0.55, 0.10),
}
LETTERS = sorted(POINTS)  # a..m in order
OID = {letter: index for index, letter in enumerate(LETTERS)}

F1 = LinearPreference(1, (0.3, 0.7))
F2 = LinearPreference(2, (0.6, 0.4))


@pytest.fixture
def figure1():
    objects = Dataset([POINTS[letter] for letter in LETTERS], name="figure1")
    return MatchingProblem.build(objects, [F1, F2])


def test_initial_skyline_is_a_and_e(figure1):
    state = compute_skyline(figure1.tree)
    assert sorted(state.ids()) == sorted([OID["a"], OID["e"]])
    items = [(OID[l], POINTS[l]) for l in LETTERS]
    assert [oid for oid, _ in canonical_skyline_naive(items)] == sorted(
        [OID["a"], OID["e"]]
    )


def test_e_is_top1_of_both_functions(figure1):
    for function in (F1, F2):
        best = max(
            POINTS, key=lambda l: (function.score(POINTS[l]), -OID[l])
        )
        assert best == "e"


def test_updated_skyline_after_removing_e(figure1):
    state = compute_skyline(figure1.tree)
    orphans = state.remove(OID["e"])
    update_after_removal(figure1.tree, state, orphans)
    assert sorted(state.ids()) == sorted(
        [OID["a"], OID["c"], OID["d"], OID["i"]]
    )


def test_sb_trace_matches_the_narrative(figure1):
    matcher = SkylineMatcher(figure1)
    pairs = list(matcher.pairs())
    assert [(p.function_id, p.object_id) for p in pairs] == [
        (1, OID["e"]),  # first stable pair: (f1, e)
        (2, OID["d"]),  # second stable pair: (f2, d)
    ]
    assert pairs[0].round == 0 and pairs[1].round == 1
    assert pairs[0].score == F1.score(POINTS["e"])
    assert pairs[1].score == F2.score(POINTS["d"])


def test_all_algorithms_reproduce_the_example():
    for matcher_cls in (SkylineMatcher, BruteForceMatcher, ChainMatcher):
        objects = Dataset([POINTS[letter] for letter in LETTERS])
        problem = MatchingProblem.build(objects, [F1, F2])
        matching = matcher_cls(problem).run()
        assert matching.as_dict() == {1: OID["e"], 2: OID["d"]}
        assert verify_stable_matching(matching, objects, [F1, F2])


def test_only_four_comparisons_needed(figure1):
    """The paper: with the skyline, only |F| x |Osky| = 4 pairs need
    comparing instead of 13 x 2 = 26."""
    state = compute_skyline(figure1.tree)
    assert len(state) * 2 == 4
