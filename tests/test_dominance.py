"""Dominance relation unit tests."""

import pytest

from repro.errors import DimensionalityError
from repro.skyline import (
    canonical_skyline_naive,
    dominance_counts,
    dominates,
    is_skyline_member,
    weakly_dominates,
)


def test_strict_dominance():
    assert dominates((0.5, 0.5), (0.4, 0.5))
    assert dominates((0.5, 0.6), (0.4, 0.5))
    assert not dominates((0.5, 0.5), (0.5, 0.5))  # equality is not strict
    assert not dominates((0.6, 0.4), (0.4, 0.6))  # incomparable
    assert not dominates((0.4, 0.5), (0.5, 0.5))


def test_weak_dominance():
    assert weakly_dominates((0.5, 0.5), (0.5, 0.5))
    assert weakly_dominates((0.6, 0.5), (0.5, 0.5))
    assert not weakly_dominates((0.6, 0.4), (0.5, 0.5))


def test_dominance_is_transitive_on_example():
    a, b, c = (0.9, 0.9), (0.5, 0.5), (0.1, 0.1)
    assert dominates(a, b) and dominates(b, c) and dominates(a, c)


def test_dominance_dimension_mismatch():
    with pytest.raises(DimensionalityError):
        dominates((0.1, 0.2), (0.1, 0.2, 0.3))
    with pytest.raises(DimensionalityError):
        weakly_dominates((0.1,), (0.1, 0.2))


def test_naive_skyline_simple():
    items = [
        (0, (0.9, 0.1)),
        (1, (0.1, 0.9)),
        (2, (0.5, 0.5)),
        (3, (0.4, 0.4)),  # dominated by 2
        (4, (0.9, 0.05)),  # dominated by 0
    ]
    skyline = canonical_skyline_naive(items)
    assert [oid for oid, _ in skyline] == [0, 1, 2]


def test_naive_skyline_duplicates_keep_lowest_id():
    items = [(3, (0.5, 0.5)), (1, (0.5, 0.5)), (2, (0.9, 0.9))]
    skyline = canonical_skyline_naive(items)
    assert [oid for oid, _ in skyline] == [2]
    # Without the dominating point, the lower duplicate id survives.
    skyline = canonical_skyline_naive(items[:2])
    assert [oid for oid, _ in skyline] == [1]


def test_single_point_is_skyline():
    assert canonical_skyline_naive([(7, (0.2, 0.3))]) == [(7, (0.2, 0.3))]
    assert canonical_skyline_naive([]) == []


def test_is_skyline_member():
    others = [(0.9, 0.1), (0.1, 0.9)]
    assert is_skyline_member((0.5, 0.5), others)
    assert not is_skyline_member((0.05, 0.5), others)


def test_dominance_counts():
    items = [(0, (0.9, 0.9)), (1, (0.5, 0.5)), (2, (0.1, 0.1))]
    counts = dominance_counts(items)
    assert counts == {0: 0, 1: 1, 2: 2}
