"""BBS over the R-tree: correctness, plist coverage, I/O behaviour."""

import pytest

from repro.data import (
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
    generate_zillow,
)
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree
from repro.skyline import canonical_skyline_naive, compute_skyline
from repro.storage import SearchStats


def build_tree(dataset, disk=True):
    store = DiskNodeStore(dataset.dims) if disk else MemoryNodeStore(16)
    return RTree.bulk_load(store, dataset.dims, dataset.items()), store


@pytest.mark.parametrize("generator,n,dims", [
    (generate_independent, 600, 2),
    (generate_independent, 600, 5),
    (generate_anticorrelated, 600, 3),
    (generate_correlated, 600, 4),
])
def test_bbs_matches_naive_oracle(generator, n, dims):
    dataset = generator(n, dims, seed=36)
    tree, _ = build_tree(dataset, disk=False)
    state = compute_skyline(tree)
    want = [oid for oid, _ in canonical_skyline_naive(list(dataset.items()))]
    assert sorted(state.ids()) == want


def test_bbs_on_zillow():
    dataset = generate_zillow(500, seed=37)
    tree, _ = build_tree(dataset, disk=False)
    state = compute_skyline(tree)
    want = [oid for oid, _ in canonical_skyline_naive(list(dataset.items()))]
    assert sorted(state.ids()) == want


def test_bbs_empty_tree():
    tree = RTree(MemoryNodeStore(8), dims=2)
    state = compute_skyline(tree)
    assert len(state) == 0


def test_every_object_is_member_or_parked_exactly_once():
    """The plist partition invariant of Section IV-B.

    After BBS, each object is either a skyline member or covered by
    exactly one parked entry (directly, or transitively inside a parked
    subtree). No object may be lost or double-owned — otherwise skyline
    maintenance would resurrect the wrong candidates.
    """
    dataset = generate_independent(800, 3, seed=38)
    tree, _ = build_tree(dataset, disk=False)
    state = compute_skyline(tree)

    covered = list(state.ids())
    for owner in state.ids():
        for entry, level in state.plist(owner):
            if level == 0:
                covered.append(entry.child)
            else:
                stack = [entry.child]
                while stack:
                    node = tree.read_node(stack.pop())
                    for sub in node.entries:
                        if node.is_leaf:
                            covered.append(sub.child)
                        else:
                            stack.append(sub.child)
    assert sorted(covered) == dataset.ids


def test_parked_entries_are_dominated_by_their_owner():
    dataset = generate_anticorrelated(500, 3, seed=39)
    tree, _ = build_tree(dataset, disk=False)
    state = compute_skyline(tree)
    for owner in state.ids():
        owner_point = state.point(owner)
        for entry, _level in state.plist(owner):
            assert entry.mbr.dominated_by_point(owner_point)


def test_bbs_reads_only_undominated_subtrees():
    # On correlated data the skyline is tiny and BBS must touch a small
    # fraction of the tree.
    dataset = generate_correlated(5000, 3, seed=40, spread=0.05)
    tree, store = build_tree(dataset)
    store.buffer.resize(4)
    store.buffer.clear()
    store.disk.stats.reset()
    state = compute_skyline(tree)
    assert len(state) < 100
    assert store.disk.stats.page_reads < store.disk.num_pages / 3


def test_bbs_progressiveness_stats():
    dataset = generate_independent(400, 3, seed=41)
    tree, _ = build_tree(dataset, disk=False)
    stats = SearchStats()
    compute_skyline(tree, stats=stats)
    assert stats.heap_pops <= stats.heap_pushes
    assert stats.dominance_checks > 0


def test_duplicate_points_one_member_rest_parked():
    tree = RTree(MemoryNodeStore(8), dims=2)
    for i in range(5):
        tree.insert(i, (0.7, 0.7))
    state = compute_skyline(tree)
    assert state.ids() == [0]
    parked = [entry.child for entry, level in state.plist(0) if level == 0]
    assert sorted(parked) == [1, 2, 3, 4]
