"""Matching quality analysis (ranks, regrets, reports)."""

import numpy as np
import pytest

from repro.core import (
    MatchingProblem,
    Matching,
    MatchPair,
    SkylineMatcher,
    assignment_ranks,
    greedy_reference_matching,
    score_regrets,
    summarize,
)
from repro.data import Dataset, generate_independent
from repro.errors import MatchingError
from repro.prefs import LinearPreference, generate_preferences


def solved_problem(n=300, nf=20, seed=200):
    objects = generate_independent(n, 3, seed=seed)
    functions = generate_preferences(nf, 3, seed=seed + 1)
    problem = MatchingProblem.build(objects, functions)
    return objects, functions, SkylineMatcher(problem).run()


def test_rank_zero_means_top1():
    objects = Dataset([[0.9, 0.9], [0.1, 0.1]])
    functions = [LinearPreference(0, (0.5, 0.5))]
    matching = greedy_reference_matching(objects, functions)
    ranks = assignment_ranks(matching, objects, functions)
    assert ranks == {0: 0}
    regrets = score_regrets(matching, objects, functions)
    assert regrets[0] == pytest.approx(0.0)


def test_first_emitted_pair_always_has_rank_zero():
    objects, functions, matching = solved_problem()
    ranks = assignment_ranks(matching, objects, functions)
    first = matching.pairs[0]
    assert ranks[first.function_id] == 0


def test_ranks_against_naive_recomputation():
    objects, functions, matching = solved_problem(n=120, nf=10)
    ranks = assignment_ranks(matching, objects, functions)
    matrix = objects.matrix
    for pair in matching.pairs:
        function = next(f for f in functions if f.fid == pair.function_id)
        scores = matrix @ np.asarray(function.weights)
        naive = int((scores > pair.score + 1e-12).sum())
        assert ranks[pair.function_id] == naive


def test_regret_is_nonnegative_and_consistent_with_rank():
    objects, functions, matching = solved_problem()
    ranks = assignment_ranks(matching, objects, functions)
    regrets = score_regrets(matching, objects, functions)
    for fid in ranks:
        assert regrets[fid] >= 0.0
        if ranks[fid] == 0:
            assert regrets[fid] == pytest.approx(0.0, abs=1e-12)
        if regrets[fid] > 1e-9:
            assert ranks[fid] > 0


def test_unknown_matched_function_rejected():
    objects = Dataset([[0.5, 0.5]])
    functions = [LinearPreference(0, (0.5, 0.5))]
    rogue = Matching([MatchPair(9, 0, 0.5)])
    with pytest.raises(MatchingError):
        assignment_ranks(rogue, objects, functions)
    with pytest.raises(MatchingError):
        score_regrets(rogue, objects, functions)


def test_summarize_report_fields():
    objects, functions, matching = solved_problem(nf=30)
    report = summarize(matching, objects, functions)
    assert report.pairs == 30
    assert report.unmatched_functions == 0
    assert report.rounds == matching.num_rounds
    assert sum(report.pairs_per_round) == 30
    assert 0.0 <= report.top1_fraction <= 1.0
    assert report.mean_rank >= 0.0
    assert report.max_rank >= report.mean_rank or report.pairs <= 1
    assert report.min_score <= report.mean_score
    assert report.total_score == pytest.approx(matching.total_score)


def test_summarize_empty_matching():
    objects = Dataset([[0.5, 0.5]])
    report = summarize(Matching([]), objects, [])
    assert report.pairs == 0
    assert report.mean_score == 0.0
    assert report.top1_fraction == 0.0


def test_contention_increases_mean_rank():
    # More users competing for the same catalog => worse average ranks.
    objects = generate_independent(150, 3, seed=201)
    small = generate_preferences(5, 3, seed=202)
    large = generate_preferences(60, 3, seed=202)
    reports = []
    for functions in (small, large):
        problem = MatchingProblem.build(objects, functions)
        matching = SkylineMatcher(problem).run()
        reports.append(summarize(matching, objects, functions))
    assert reports[0].mean_rank < reports[1].mean_rank
