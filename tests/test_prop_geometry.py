"""Property-based tests of the MBR score/dominance bounds.

These bounds are load-bearing: ranked search and BBS are only correct if
a box's bound covers every point inside it, bitwise, under the canonical
arithmetic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MBR
from repro.prefs import canonical_score
from repro.skyline import weakly_dominates

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def boxes_with_inner_point(draw, dims=3):
    a = draw(st.tuples(*([unit] * dims)))
    b = draw(st.tuples(*([unit] * dims)))
    low = tuple(min(x, y) for x, y in zip(a, b))
    high = tuple(max(x, y) for x, y in zip(a, b))
    fractions = draw(st.tuples(*([unit] * dims)))
    inner = tuple(
        lo + t * (hi - lo) for lo, hi, t in zip(low, high, fractions)
    )
    # Clamp: float interpolation can overshoot by an ulp.
    inner = tuple(min(hi, max(lo, v)) for lo, hi, v in zip(low, high, inner))
    return MBR(low, high), inner


@settings(max_examples=100, deadline=None)
@given(boxes_with_inner_point(), st.tuples(unit, unit, unit))
def test_upper_score_covers_every_inner_point(box_and_point, raw_weights):
    box, inner = box_and_point
    total = sum(raw_weights)
    weights = (
        tuple(w / total for w in raw_weights) if total > 0
        else (1 / 3, 1 / 3, 1 / 3)
    )
    assert canonical_score(weights, inner) <= box.upper_score(weights)
    assert box.lower_score(weights) <= canonical_score(weights, inner) or (
        # lower bound may exceed by strictly less than an ulp-level
        # amount only if the point sits on the low corner; allow exactness
        inner == box.low
    )


@settings(max_examples=100, deadline=None)
@given(boxes_with_inner_point())
def test_mindist_to_best_lower_bounds_inner_points(box_and_point):
    box, inner = box_and_point
    assert box.mindist_to_best() <= MBR.from_point(inner).mindist_to_best()


@settings(max_examples=100, deadline=None)
@given(boxes_with_inner_point(), st.tuples(unit, unit, unit))
def test_dominated_box_means_every_inner_point_dominated(box_and_point, p):
    box, inner = box_and_point
    if box.dominated_by_point(p):
        assert weakly_dominates(p, inner)
    # Conversely: dominating the high corner is exactly the criterion.
    assert box.dominated_by_point(p) == weakly_dominates(p, box.high)


@settings(max_examples=100, deadline=None)
@given(boxes_with_inner_point(), boxes_with_inner_point())
def test_union_bounds_dominate_parts(a_pair, b_pair):
    a, _ = a_pair
    b, _ = b_pair
    u = a.union(b)
    weights = (0.2, 0.5, 0.3)
    assert u.upper_score(weights) >= a.upper_score(weights)
    assert u.upper_score(weights) >= b.upper_score(weights)
    assert u.mindist_to_best() <= a.mindist_to_best()
    assert u.mindist_to_best() <= b.mindist_to_best()
    assert u.contains(a) and u.contains(b)


@settings(max_examples=100, deadline=None)
@given(boxes_with_inner_point())
def test_area_margin_nonnegative_and_consistent(box_and_point):
    box, _ = box_and_point
    assert box.area() >= 0.0
    assert box.margin() >= 0.0
    assert box.overlap_area(box) <= box.area() + 1e-15
    assert box.enlargement(box) == 0.0
