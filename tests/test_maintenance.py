"""Incremental skyline maintenance (plists) and the re-traversal baseline."""

import random

import pytest

from repro.data import generate_anticorrelated, generate_independent, generate_zillow
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree
from repro.skyline import (
    canonical_skyline_naive,
    compute_skyline,
    recompute_with_pruning,
    update_after_removal,
)


def build(dataset):
    store = DiskNodeStore(dataset.dims)
    tree = RTree.bulk_load(store, dataset.dims, dataset.items())
    return tree, store


def oracle_ids(remaining):
    return [oid for oid, _ in canonical_skyline_naive(list(remaining.items()))]


@pytest.mark.parametrize("generator,dims", [
    (generate_independent, 3),
    (generate_anticorrelated, 4),
])
def test_single_removals_match_oracle(generator, dims):
    dataset = generator(500, dims, seed=43)
    tree, _ = build(dataset)
    state = compute_skyline(tree)
    remaining = dict(dataset.items())
    rng = random.Random(7)
    for _ in range(40):
        victim = rng.choice(state.ids())
        del remaining[victim]
        orphans = state.remove(victim)
        admitted = update_after_removal(tree, state, orphans)
        assert sorted(state.ids()) == oracle_ids(_as_items(remaining))
        for object_id in admitted:
            assert object_id in state


def _as_items(remaining):
    class _Shim:
        def items(self):
            return iter(sorted(remaining.items()))
    return _Shim()


def test_batch_removal_multiple_members_at_once():
    # Section IV-C removes several skyline members per loop; their plists
    # are concatenated and processed by one maintenance call.
    dataset = generate_independent(600, 3, seed=44)
    tree, _ = build(dataset)
    state = compute_skyline(tree)
    remaining = dict(dataset.items())
    rng = random.Random(11)
    for _ in range(8):
        batch = rng.sample(state.ids(), k=min(3, len(state.ids())))
        orphans = []
        for victim in batch:
            del remaining[victim]
            orphans.extend(state.remove(victim))
        update_after_removal(tree, state, orphans)
        assert sorted(state.ids()) == oracle_ids(_as_items(remaining))


def test_removal_to_exhaustion():
    dataset = generate_independent(150, 2, seed=45)
    tree, _ = build(dataset)
    state = compute_skyline(tree)
    removed = 0
    while len(state):
        victim = state.ids()[0]
        orphans = state.remove(victim)
        update_after_removal(tree, state, orphans)
        removed += 1
    assert removed == 150  # every object eventually surfaced in the skyline


def test_retraversal_matches_plist_maintenance():
    dataset = generate_anticorrelated(400, 3, seed=46)
    tree_a, _ = build(dataset)
    tree_b, _ = build(dataset)
    state_a = compute_skyline(tree_a)
    state_b = compute_skyline(tree_b)
    excluded = set()
    rng = random.Random(13)
    for _ in range(25):
        victim = rng.choice(state_a.ids())
        excluded.add(victim)
        orphans = state_a.remove(victim)
        update_after_removal(tree_a, state_a, orphans)
        state_b.remove(victim)
        recompute_with_pruning(tree_b, state_b, excluded)
        assert sorted(state_a.ids()) == sorted(state_b.ids())


def test_plist_maintenance_cheaper_than_retraversal():
    dataset = generate_zillow(3000, seed=47)
    tree_a, store_a = build(dataset)
    tree_b, store_b = build(dataset)
    for store in (store_a, store_b):
        store.buffer.resize(4)

    state_a = compute_skyline(tree_a)
    state_b = compute_skyline(tree_b)
    store_a.disk.stats.reset()
    store_b.disk.stats.reset()
    excluded = set()
    rng = random.Random(17)
    for _ in range(20):
        victim = rng.choice(state_a.ids())
        excluded.add(victim)
        update_after_removal(tree_a, state_a, state_a.remove(victim))
        state_b.remove(victim)
        recompute_with_pruning(tree_b, state_b, excluded)
    assert (
        store_a.disk.stats.io_accesses < store_b.disk.stats.io_accesses
    ), "plists must avoid root re-traversals"


def test_duplicates_resurface_after_owner_removed():
    tree = RTree(MemoryNodeStore(8), dims=2)
    for i in range(4):
        tree.insert(i, (0.6, 0.6))
    state = compute_skyline(tree)
    assert state.ids() == [0]
    update_after_removal(tree, state, state.remove(0))
    assert state.ids() == [1]
    update_after_removal(tree, state, state.remove(1))
    assert state.ids() == [2]
