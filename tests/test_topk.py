"""Branch-and-bound ranked (top-k) search."""

import numpy as np
import pytest

from repro.data import generate_anticorrelated, generate_independent
from repro.errors import DimensionalityError
from repro.rtree import DiskNodeStore, MemoryNodeStore, RankedSearch, RTree, top1, topk
from repro.storage import SearchStats


def build(dataset, disk=True):
    store = DiskNodeStore(dataset.dims) if disk else MemoryNodeStore(16)
    return RTree.bulk_load(store, dataset.dims, dataset.items()), store


def brute_order(dataset, weights):
    scores = dataset.matrix @ np.asarray(weights)
    order = sorted(zip(-scores, dataset.ids))
    return [(oid, -neg) for neg, oid in order]


def test_descending_score_order_exact():
    dataset = generate_independent(500, 3, seed=20)
    tree, _ = build(dataset)
    weights = (0.5, 0.3, 0.2)
    want = brute_order(dataset, weights)
    got = [(oid, score) for oid, _, score in RankedSearch(tree, weights)]
    assert [oid for oid, _ in got] == [oid for oid, _ in want]
    np.testing.assert_allclose(
        [s for _, s in got], [s for _, s in want], rtol=0, atol=1e-12
    )


def test_top1_equals_first_of_ranked():
    dataset = generate_anticorrelated(400, 4, seed=21)
    tree, _ = build(dataset)
    weights = (0.25, 0.25, 0.25, 0.25)
    hit = top1(tree, weights)
    assert hit[0] == brute_order(dataset, weights)[0][0]


def test_topk_returns_k_results():
    dataset = generate_independent(300, 3, seed=22)
    tree, _ = build(dataset)
    weights = (0.6, 0.2, 0.2)
    results = topk(tree, weights, 10)
    assert len(results) == 10
    want = brute_order(dataset, weights)[:10]
    assert [oid for oid, _, _ in results] == [oid for oid, _ in want]


def test_topk_larger_than_tree_returns_all():
    dataset = generate_independent(20, 2, seed=23)
    tree, _ = build(dataset)
    results = topk(tree, (0.5, 0.5), 100)
    assert len(results) == 20


def test_excluded_objects_are_skipped():
    dataset = generate_independent(200, 2, seed=24)
    tree, _ = build(dataset)
    weights = (0.7, 0.3)
    full = brute_order(dataset, weights)
    best, second = full[0][0], full[1][0]
    hit = top1(tree, weights, excluded={best})
    assert hit[0] == second
    hit = top1(tree, weights, excluded={best, second})
    assert hit[0] == full[2][0]


def test_all_excluded_returns_none():
    dataset = generate_independent(30, 2, seed=25)
    tree, _ = build(dataset)
    assert top1(tree, (0.5, 0.5), excluded=set(dataset.ids)) is None


def test_empty_tree_returns_none():
    tree = RTree(MemoryNodeStore(8), dims=2)
    assert top1(tree, (0.5, 0.5)) is None


def test_equal_scores_tie_break_by_object_id():
    tree = RTree(MemoryNodeStore(8), dims=2)
    # Three points with identical score under (0.5, 0.5).
    tree.insert(9, (0.4, 0.6))
    tree.insert(2, (0.6, 0.4))
    tree.insert(5, (0.5, 0.5))
    search = RankedSearch(tree, (0.5, 0.5))
    order = [search.next()[0] for _ in range(3)]
    assert order == [2, 5, 9]


def test_extreme_weight_vector():
    dataset = generate_independent(200, 3, seed=26)
    tree, _ = build(dataset)
    weights = (1.0, 0.0, 0.0)  # only the first attribute matters
    hit = top1(tree, weights)
    best_row = int(np.argmax(dataset.matrix[:, 0]))
    assert hit[0] == dataset.ids[best_row]


def test_wrong_weights_dimensionality():
    dataset = generate_independent(10, 3, seed=27)
    tree, _ = build(dataset)
    with pytest.raises(DimensionalityError):
        RankedSearch(tree, (0.5, 0.5))


def test_top1_reads_fraction_of_tree():
    # Branch-and-bound must not read every leaf for a top-1 query.
    dataset = generate_independent(5000, 3, seed=28)
    store = DiskNodeStore(3)
    tree = RTree.bulk_load(store, 3, dataset.items())
    store.buffer.resize(4)
    store.buffer.clear()
    store.disk.stats.reset()
    top1(tree, (0.4, 0.4, 0.2))
    assert store.disk.stats.page_reads < store.disk.num_pages / 4


def test_search_stats_counters():
    dataset = generate_independent(100, 2, seed=29)
    tree, _ = build(dataset, disk=False)
    stats = SearchStats()
    top1(tree, (0.5, 0.5), stats=stats)
    assert stats.heap_pushes > 0
    assert stats.heap_pops > 0
    assert stats.score_evaluations >= stats.heap_pushes
