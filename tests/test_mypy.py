"""Type-check the strict-tier packages with mypy, when available.

The container used for tier-1 runs does not ship mypy, so this test
skips itself there; CI's ``lint`` job installs mypy and runs the same
configuration (``mypy.ini``) as a hard gate. Keeping the invocation in
the test suite means any environment *with* mypy enforces the policy
without remembering a separate command.
"""

from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_strict_tier_packages_type_check():
    from mypy import api

    stdout, stderr, status = api.run([
        "--config-file", str(REPO_ROOT / "mypy.ini"),
        str(REPO_ROOT / "src" / "repro"),
    ])
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
