"""BNL and SFS against the naive oracle."""

import pytest

from repro.data import (
    generate_anticorrelated,
    generate_clustered,
    generate_correlated,
    generate_independent,
)
from repro.skyline import bnl_skyline, canonical_skyline_naive, sfs_skyline
from repro.storage import SearchStats


@pytest.mark.parametrize("generator,n,dims", [
    (generate_independent, 300, 2),
    (generate_independent, 300, 4),
    (generate_anticorrelated, 300, 3),
    (generate_correlated, 300, 3),
    (generate_clustered, 300, 3),
])
def test_matches_naive_oracle(generator, n, dims):
    items = list(generator(n, dims, seed=31).items())
    want = canonical_skyline_naive(items)
    assert bnl_skyline(items) == want
    assert sfs_skyline(items) == want


def test_empty_and_singleton():
    assert bnl_skyline([]) == []
    assert sfs_skyline([]) == []
    assert bnl_skyline([(4, (0.3, 0.3))]) == [(4, (0.3, 0.3))]


def test_all_duplicates_keep_lowest_id():
    items = [(i, (0.5, 0.5)) for i in (5, 3, 8, 1)]
    assert bnl_skyline(items) == [(1, (0.5, 0.5))]
    assert sfs_skyline(items) == [(1, (0.5, 0.5))]


def test_total_order_chain_keeps_only_maximum():
    items = [(i, (i / 10, i / 10)) for i in range(10)]
    assert bnl_skyline(items) == [(9, (0.9, 0.9))]


def test_antichain_keeps_everything():
    items = [(i, (i / 10, (9 - i) / 10)) for i in range(10)]
    assert bnl_skyline(items) == sorted(items)
    assert sfs_skyline(items) == sorted(items)


def test_input_order_does_not_matter():
    items = list(generate_independent(200, 3, seed=32).items())
    want = bnl_skyline(items)
    assert bnl_skyline(list(reversed(items))) == want


def test_sfs_does_fewer_checks_than_bnl_on_correlated_data():
    # On correlated data most points are dominated by the few top ones;
    # SFS visits those first and drops everything fast.
    items = list(generate_correlated(600, 3, seed=33, spread=0.05).items())
    bnl_stats, sfs_stats = SearchStats(), SearchStats()
    bnl_skyline(items, stats=bnl_stats)
    sfs_skyline(items, stats=sfs_stats)
    assert sfs_stats.dominance_checks <= bnl_stats.dominance_checks


def test_mixed_duplicates_and_dominance():
    items = [
        (0, (0.5, 0.5)),
        (1, (0.5, 0.5)),
        (2, (0.5, 0.6)),   # strictly dominates the duplicates
        (3, (0.6, 0.5)),
        (4, (0.1, 0.95)),
    ]
    want = canonical_skyline_naive(items)
    assert [oid for oid, _ in want] == [2, 3, 4]
    assert bnl_skyline(items) == want
    assert sfs_skyline(items) == want


def test_sfs_evicts_on_float_sum_collapse():
    # Strict dominance guarantees a strictly greater coordinate sum in
    # real arithmetic, but the float sum can round equal (a subnormal
    # vanishing into 1.0), making the dominator sort *after* its victim
    # in SFS's order. Regression: SFS must evict the victim anyway.
    tiny = 1.1125369292536007e-308
    items = [(0, (0.0, 1.0, 0.0)), (1, (0.0, 1.0, tiny))]
    assert sum(items[0][1]) == sum(items[1][1])  # the collapse
    want = canonical_skyline_naive(items)
    assert [oid for oid, _ in want] == [1]
    assert bnl_skyline(items) == want
    assert sfs_skyline(items) == want
