"""Property-based equivalence of every skyline implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree import MemoryNodeStore, RTree
from repro.skyline import (
    bnl_skyline,
    canonical_skyline_naive,
    compute_skyline,
    sfs_skyline,
    update_after_removal,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

# Coarse coordinates force plenty of exact ties and duplicates.
coarse = st.integers(min_value=0, max_value=4).map(lambda v: v / 4)


def point_lists(coordinate, dims=3, max_size=40):
    return st.lists(
        st.tuples(*([coordinate] * dims)), min_size=0, max_size=max_size
    )


def build_tree(items, dims=3, fanout=4):
    tree = RTree(MemoryNodeStore(fanout), dims=dims)
    for object_id, point in items:
        tree.insert(object_id, point)
    return tree


@settings(max_examples=60, deadline=None)
@given(point_lists(unit))
def test_bnl_sfs_naive_agree_on_smooth_data(points):
    items = list(enumerate(points))
    want = canonical_skyline_naive(items)
    assert bnl_skyline(items) == want
    assert sfs_skyline(items) == want


@settings(max_examples=60, deadline=None)
@given(point_lists(coarse))
def test_bnl_sfs_naive_agree_with_heavy_ties(points):
    items = list(enumerate(points))
    want = canonical_skyline_naive(items)
    assert bnl_skyline(items) == want
    assert sfs_skyline(items) == want


@settings(max_examples=40, deadline=None)
@given(point_lists(coarse, max_size=30))
def test_bbs_agrees_with_naive_under_ties(points):
    items = list(enumerate(points))
    tree = build_tree(items)
    state = compute_skyline(tree)
    assert sorted(state.ids()) == [
        oid for oid, _ in canonical_skyline_naive(items)
    ]


@settings(max_examples=25, deadline=None)
@given(point_lists(coarse, max_size=25),
       st.lists(st.integers(min_value=0, max_value=10 ** 6), max_size=8))
def test_incremental_maintenance_matches_recomputation(points, removal_seed):
    items = list(enumerate(points))
    tree = build_tree(items)
    state = compute_skyline(tree)
    remaining = dict(items)
    for raw in removal_seed:
        if not state.ids():
            break
        victim = state.ids()[raw % len(state.ids())]
        del remaining[victim]
        orphans = state.remove(victim)
        update_after_removal(tree, state, orphans)
        want = canonical_skyline_naive(list(remaining.items()))
        assert sorted(state.ids()) == [oid for oid, _ in want]
