"""RTree.stats structural snapshots."""

from repro.data import generate_independent
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree


def test_single_leaf_stats():
    tree = RTree(MemoryNodeStore(8), dims=2)
    tree.insert(0, (0.5, 0.5))
    stats = tree.stats()
    assert stats.height == 1
    assert stats.num_objects == 1
    assert stats.num_nodes == 1
    assert stats.nodes_per_level == {0: 1}


def test_bulk_loaded_stats_consistent():
    dataset = generate_independent(3000, 3, seed=290)
    tree = RTree.bulk_load(DiskNodeStore(3), 3, dataset.items(), fill=0.9)
    stats = tree.stats()
    assert stats.num_objects == 3000
    assert stats.height == tree.height
    assert set(stats.nodes_per_level) == set(range(tree.height))
    assert sum(stats.nodes_per_level.values()) == stats.num_nodes
    # STR at fill 0.9 packs leaves close to the target.
    assert 0.7 <= stats.avg_fill_per_level[0] <= 1.0


def test_stats_track_mutations():
    dataset = generate_independent(400, 2, seed=291)
    tree = RTree(MemoryNodeStore(8), dims=2)
    points = dict(dataset.items())
    for object_id, point in points.items():
        tree.insert(object_id, point)
    before = tree.stats()
    for object_id in dataset.ids[:200]:
        tree.delete(object_id, points[object_id])
    after = tree.stats()
    assert after.num_objects == before.num_objects - 200
    assert after.num_nodes <= before.num_nodes


def test_fill_factors_are_fractions():
    dataset = generate_independent(1000, 4, seed=292)
    tree = RTree.bulk_load(DiskNodeStore(4), 4, dataset.items())
    for level, fill in tree.stats().avg_fill_per_level.items():
        assert 0.0 < fill <= 1.0, level
