"""Storage backends, the unified MatchResult, and rebuild semantics."""

import pytest

import repro
from repro import MatchingConfig, MatchingProblem, MatchPair
from repro.core import GaleShapleyMatcher, greedy_reference_matching
from repro.engine import (
    DiskBackend,
    InMemoryProblem,
    MatchResult,
    MemoryBackend,
    StorageBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.errors import MatchingError
from repro.data import generate_independent
from repro.prefs import generate_preferences
from repro.storage import ClockBufferPool


def tiny_workload(n_objects=400, n_functions=15, dims=3, seed=80):
    objects = generate_independent(n_objects, dims, seed=seed)
    functions = generate_preferences(n_functions, dims, seed=seed + 1)
    return objects, functions


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
def test_backend_instances_satisfy_the_protocol():
    assert isinstance(DiskBackend(), StorageBackend)
    assert isinstance(MemoryBackend(), StorageBackend)


def test_backend_aliases():
    assert isinstance(get_backend("mem"), MemoryBackend)
    assert isinstance(get_backend("paper"), DiskBackend)


def test_backend_registry_round_trip():
    @register_backend("test-null")
    class NullBackend(MemoryBackend):
        name = "test-null"

    try:
        assert "test-null" in available_backends()
        objects, functions = tiny_workload()
        result = repro.match(objects, functions, backend="test-null")
        assert len(result) == len(functions)
        assert result.backend == "test-null"
    finally:
        from repro.engine import backends as backends_module

        del backends_module._BACKENDS["test-null"]
    assert "test-null" not in available_backends()


def test_duplicate_backend_registration_rejected():
    with pytest.raises(MatchingError, match="already registered"):
        register_backend("disk")(DiskBackend)


def test_memory_problem_is_a_matching_problem():
    objects, functions = tiny_workload()
    problem = InMemoryProblem.build_memory(objects, functions)
    assert isinstance(problem, MatchingProblem)
    assert problem.tree.num_objects == len(objects)
    assert problem.io_stats.io_accesses == 0
    problem.reset_io()  # must not blow up despite the inert disk


def test_memory_problem_rebuild_restores_mutations():
    objects, functions = tiny_workload()
    problem = InMemoryProblem.build_memory(objects, functions, fanout=16)
    victim = objects.ids[0]
    problem.tree.delete(victim, objects.vector(victim))
    assert problem.tree.num_objects == len(objects) - 1
    rebuilt = problem.rebuild()
    assert isinstance(rebuilt, InMemoryProblem)
    assert rebuilt.tree.num_objects == len(objects)
    assert rebuilt.tree.store.leaf_capacity == 16


def test_disk_backend_honours_buffer_policy_and_capacity():
    objects, functions = tiny_workload()
    config = MatchingConfig(buffer_policy="clock", buffer_capacity=9)
    problem = DiskBackend().build_problem(objects, functions, config)
    assert isinstance(problem.buffer, ClockBufferPool)
    assert problem.buffer.capacity == 9


def test_tree_mutating_algorithms_work_on_memory_backend():
    objects, functions = tiny_workload(seed=82)
    reference = greedy_reference_matching(objects, functions)
    for algorithm in ("bf", "chain"):
        result = repro.match(objects, functions, algorithm=algorithm,
                             backend="memory")
        assert result.as_set() == reference.as_set(), algorithm


# ----------------------------------------------------------------------
# Rebuild buffer-mode preservation (regression)
# ----------------------------------------------------------------------
def test_rebuild_preserves_fraction_mode():
    objects, functions = tiny_workload(n_objects=2000)
    problem = MatchingProblem.build(objects, functions,
                                    buffer_fraction=0.10)
    fraction_capacity = problem.buffer.capacity
    # Shrink the buffer after build; a fraction-mode problem must NOT
    # pin the mutated capacity on rebuild — it re-derives from the
    # fraction.
    problem.buffer.resize(1)
    rebuilt = problem.rebuild()
    assert rebuilt.buffer.capacity == fraction_capacity
    assert rebuilt.rebuild().buffer.capacity == fraction_capacity


def test_rebuild_preserves_pinned_capacity():
    objects, functions = tiny_workload(n_objects=2000)
    problem = MatchingProblem.build(objects, functions, buffer_capacity=13)
    problem.buffer.resize(5)
    rebuilt = problem.rebuild()
    assert rebuilt.buffer.capacity == 13


def test_rebuild_preserves_buffer_policy():
    objects, functions = tiny_workload()
    problem = MatchingProblem.build(objects, functions,
                                    buffer_policy="clock")
    assert isinstance(problem.rebuild().buffer, ClockBufferPool)


# ----------------------------------------------------------------------
# GaleShapleyMatcher
# ----------------------------------------------------------------------
def test_gale_shapley_matcher_matches_reference():
    objects, functions = tiny_workload(n_objects=60, n_functions=25, seed=83)
    problem = MatchingProblem.build(objects, functions)
    matching = GaleShapleyMatcher(problem).run()
    reference = greedy_reference_matching(objects, functions)
    assert matching.as_set() == reference.as_set()
    # Canonical emission order: score descending.
    scores = [pair.score for pair in matching.pairs]
    assert scores == sorted(scores, reverse=True)


def test_gale_shapley_matcher_empty_inputs():
    objects = generate_independent(5, 2, seed=84)
    problem = MatchingProblem.build(objects, [])
    assert len(GaleShapleyMatcher(problem).run()) == 0


# ----------------------------------------------------------------------
# MatchResult
# ----------------------------------------------------------------------
def _pair(fid, oid, score, rank=0):
    return MatchPair(fid, oid, score, round=rank, rank=rank)


def test_result_rejects_duplicate_function():
    with pytest.raises(MatchingError, match="matched more than once"):
        MatchResult([_pair(1, 2, 0.5), _pair(1, 3, 0.4)])


def test_result_rejects_reused_object_in_one_to_one_mode():
    with pytest.raises(MatchingError, match="capacity 1"):
        MatchResult([_pair(1, 2, 0.5), _pair(3, 2, 0.4)])


def test_result_enforces_capacities():
    pairs = [_pair(1, 2, 0.5), _pair(3, 2, 0.4)]
    result = MatchResult(pairs, capacities={2: 2})
    assert result.is_capacitated
    assert result.usage == {2: 2}
    assert sorted(result.assignments_of(2)) == [1, 3]
    with pytest.raises(MatchingError, match="capacity 2"):
        MatchResult(pairs + [_pair(4, 2, 0.3)], capacities={2: 2})


def test_result_lookups_and_summaries():
    result = MatchResult(
        [_pair(1, 10, 0.9), _pair(2, 20, 0.7, rank=1)],
        unmatched_functions=[3],
        algorithm="skyline", backend="memory",
    )
    assert len(result) == 2
    assert result.object_of(1) == 10
    assert result.object_of(99) is None
    assert result.function_of(20) == 2
    assert result.as_dict() == {1: 10, 2: 20}
    assert result.as_set() == {(1, 10), (2, 20)}
    assert result.total_score == pytest.approx(1.6)
    assert result.mean_score == pytest.approx(0.8)
    assert result.num_rounds == 2
    assert result.io_accesses == 0  # no snapshot attached
    matching = result.to_matching()
    assert matching.as_set() == result.as_set()
    assert matching.unmatched_functions == [3]


def test_capacitated_result_restricts_one_to_one_accessors():
    result = MatchResult([_pair(1, 2, 0.5)], capacities={2: 3})
    with pytest.raises(MatchingError, match="ambiguous"):
        result.function_of(2)
    with pytest.raises(MatchingError, match="capacitated"):
        result.to_matching()
