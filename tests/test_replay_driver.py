"""ReplayDriver: clock semantics, rewind, transports, and accounting."""

import pytest

from repro.errors import ReplayError
from repro.replay import (
    ReplayDriver,
    available_scenarios,
    scenario_trace,
)

SEED = 17


@pytest.fixture(scope="module")
def flash_trace():
    return scenario_trace("flash-crowd", seed=SEED, scale=0.5)


def _pairs(driver):
    return tuple(
        (pair.function_id, pair.object_id, pair.score)
        for pair in driver.matching().pairs
    )


# ----------------------------------------------------------------------
# Clock semantics
# ----------------------------------------------------------------------
def test_advance_is_cumulative_and_ordered(flash_trace):
    spans = flash_trace.phase_spans()
    with ReplayDriver(flash_trace, backend="memory") as driver:
        first = driver.advance(spans["calm"][1])
        assert first["events"] > 0 and first["requests"] > 0
        assert driver.clock == spans["calm"][1]
        second = driver.advance(flash_trace.end_ts)
        assert second["requests"] > 0
        # Every record applied exactly once across the two advances.
        totals = flash_trace.counts()
        assert first["events"] + second["events"] == totals["events"]
        assert first["requests"] + second["requests"] == totals["requests"]


def test_advance_backwards_is_a_typed_error(flash_trace):
    with ReplayDriver(flash_trace, backend="memory",
                      verify=False) as driver:
        driver.advance(15.0)
        with pytest.raises(ReplayError, match="backwards"):
            driver.advance(10.0)


def test_advance_past_the_end_is_idempotent(flash_trace):
    with ReplayDriver(flash_trace, backend="memory",
                      verify=False) as driver:
        driver.advance(flash_trace.end_ts)
        again = driver.advance(flash_trace.end_ts + 1000.0)
        assert again == {"events": 0, "requests": 0}


def test_run_equals_manual_advance(flash_trace):
    with ReplayDriver(flash_trace, backend="memory",
                      verify=False) as manual:
        manual.advance(flash_trace.end_ts)
        expected = (_pairs(manual), manual.cache_keys())
    with ReplayDriver(flash_trace, backend="memory", verify=False) as auto:
        report = auto.run()
        assert (_pairs(auto), auto.cache_keys()) == expected
    assert report.clock == flash_trace.end_ts
    assert [phase.name for phase in report.phases] == list(
        flash_trace.phases
    )


# ----------------------------------------------------------------------
# Rewind
# ----------------------------------------------------------------------
def test_rewind_restores_exact_state_and_replays_identically(flash_trace):
    spans = flash_trace.phase_spans()
    calm_end = spans["calm"][1]
    with ReplayDriver(flash_trace, backend="memory") as driver:
        driver.advance(calm_end)
        at_calm = (_pairs(driver), driver.cache_keys())
        driver.run()
        terminal = (_pairs(driver), driver.cache_keys())
        driver.rewind(calm_end)
        assert (_pairs(driver), driver.cache_keys()) == at_calm
        driver.run()
        assert (_pairs(driver), driver.cache_keys()) == terminal


def test_rewind_to_genesis(flash_trace):
    with ReplayDriver(flash_trace, backend="memory",
                      verify=False) as driver:
        genesis_pairs = _pairs(driver)
        driver.run()
        assert _pairs(driver) != genesis_pairs  # churn moved the matching
        outcome = driver.rewind(float("-inf"))
        assert outcome["restored_ts"] == float("-inf")
        assert _pairs(driver) == genesis_pairs
        assert driver.cache_keys() == ()


def test_rewind_between_checkpoints_replays_the_gap(flash_trace):
    """A target between two boundaries restores the earlier checkpoint
    and advances the remainder — landing exactly on the target clock."""
    spans = flash_trace.phase_spans()
    calm_end, flash_end = spans["calm"][1], spans["flash"][1]
    target = (calm_end + flash_end) / 2
    with ReplayDriver(flash_trace, backend="memory") as driver:
        driver.advance(calm_end)
        driver.advance(target)
        mid_state = (_pairs(driver), driver.cache_keys())
        driver.advance(flash_trace.end_ts)
        outcome = driver.rewind(target)
        assert outcome["restored_ts"] == target  # boundary was kept
        assert driver.clock == target
        assert (_pairs(driver), driver.cache_keys()) == mid_state
        # Now force gap replay: drop straight to a non-boundary ts.
        probe = (calm_end + target) / 2
        outcome = driver.rewind(probe)
        assert outcome["restored_ts"] == calm_end
        assert outcome["clock"] == probe


def test_rewind_forward_is_a_typed_error(flash_trace):
    with ReplayDriver(flash_trace, backend="memory",
                      verify=False) as driver:
        driver.advance(5.0)
        with pytest.raises(ReplayError, match="ahead of clock"):
            driver.rewind(25.0)


def test_checkpoint_eviction_keeps_genesis(flash_trace):
    with ReplayDriver(flash_trace, backend="memory", verify=False,
                      max_checkpoints=3) as driver:
        for ts in (2.0, 4.0, 6.0, 8.0, 10.0):
            driver.advance(ts)
        stamps = driver.checkpoints()
        assert len(stamps) == 3
        assert stamps[0] == float("-inf")  # genesis survives eviction
        assert stamps[-1] == 10.0
        driver.rewind(float("-inf"))  # still reachable
        assert driver.clock == float("-inf")


def test_invalid_construction_arguments(flash_trace):
    with pytest.raises(ReplayError, match="unknown transport"):
        ReplayDriver(flash_trace, transport="carrier-pigeon")
    with pytest.raises(ReplayError, match="max_checkpoints"):
        ReplayDriver(flash_trace, max_checkpoints=0)


def test_closed_driver_rejects_further_use(flash_trace):
    driver = ReplayDriver(flash_trace, backend="memory", verify=False)
    report = driver.close()
    assert report.trace_name == "flash-crowd"
    assert driver.close().trace_name == "flash-crowd"  # idempotent
    with pytest.raises(ReplayError, match="closed"):
        driver.advance(1.0)
    with pytest.raises(ReplayError, match="closed"):
        driver.rewind(0.0)


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["async", "server"])
def test_transports_serve_pair_identical_results(flash_trace, transport):
    """The asyncio front-end and the loopback socket server replay the
    same trace fresh (verified per burst against ground truth) and land
    on the same terminal matching as the local transport."""
    with ReplayDriver(flash_trace, backend="memory") as local:
        local.run()
        expected = _pairs(local)
    with ReplayDriver(flash_trace, backend="memory",
                      transport=transport) as driver:
        report = driver.run()
        assert _pairs(driver) == expected
    assert report.transport == transport
    assert report.ok
    assert report.stale_hits == 0
    assert report.requests == flash_trace.counts()["requests"]


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
def test_report_totals_and_phase_windows(flash_trace):
    with ReplayDriver(flash_trace, backend="memory") as driver:
        report = driver.run()
    totals = flash_trace.counts()
    assert report.requests == totals["requests"]
    assert report.churn_events == totals["events"]
    assert report.freshness_checks > 0
    assert report.ok
    phase_names = [phase.name for phase in report.phases]
    assert phase_names == ["calm", "flash", "recovery"]
    spans = flash_trace.phase_spans()
    for phase in report.phases:
        first, last = spans[phase.name]
        assert phase.start_ts == first
        assert phase.end_ts == last
        assert phase.counters["rejected"] == 0
    flash = report.phases[phase_names.index("flash")]
    # The flash phase repeats one workload inside each burst: in-batch
    # sharing and the vectorized path must engage, otherwise the batch
    # pipeline regressed. (Cross-burst cache hits are seed-dependent —
    # the churn spike between bursts may invalidate every entry.)
    assert flash.counters["duplicate_hits"] > 0
    assert flash.counters["vectorized_requests"] > 0


def test_report_serializes(flash_trace, tmp_path):
    with ReplayDriver(flash_trace, backend="memory",
                      verify=False) as driver:
        report = driver.run()
    target = tmp_path / "report.json"
    report.save_json(target)
    import json

    payload = json.loads(target.read_text())
    assert payload["trace"] == "flash-crowd"
    assert payload["ok"] is True
    assert [p["name"] for p in payload["phases"]] == [
        "calm", "flash", "recovery",
    ]


def test_every_scenario_replays_fresh_on_disk_backend():
    """The disk backend (the paper's cost model) also serves fresh."""
    for scenario in sorted(available_scenarios()):
        trace = scenario_trace(scenario, seed=SEED, scale=0.5)
        with ReplayDriver(trace, backend="disk") as driver:
            report = driver.run()
        assert report.ok, scenario
        assert report.stale_hits == 0, scenario
