"""Property-based end-to-end test: every matcher computes the unique
stable matching on arbitrary small instances (ties, duplicates and all)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BruteForceMatcher,
    ChainMatcher,
    MatchingProblem,
    SkylineMatcher,
    greedy_reference_matching,
)
from repro.data import Dataset
from repro.prefs import LinearPreference, canonical_score

# Coarse grids maximize exact score ties.
coarse = st.integers(min_value=0, max_value=3).map(lambda v: v / 3)
positive = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)

instances = st.tuples(
    st.lists(st.tuples(coarse, coarse), min_size=1, max_size=18),
    st.lists(st.tuples(positive, positive), min_size=1, max_size=8),
)


def exact_blocking_pairs(matching, objects, functions):
    """Naive blocking-pair scan in the canonical arithmetic."""
    score_of_function = {
        pair.function_id: pair.score for pair in matching.pairs
    }
    score_of_object = {pair.object_id: pair.score for pair in matching.pairs}
    blocking = []
    for function in functions:
        current_f = score_of_function.get(function.fid, float("-inf"))
        for object_id, point in objects.items():
            score = canonical_score(function.weights, point)
            current_o = score_of_object.get(object_id, float("-inf"))
            if score > current_f and score > current_o:
                blocking.append((function.fid, object_id))
    return blocking


@settings(max_examples=40, deadline=None)
@given(instances)
def test_all_matchers_agree_and_are_exactly_stable(instance):
    raw_points, raw_weights = instance
    objects = Dataset(raw_points)
    functions = [
        LinearPreference.normalized(fid, row)
        for fid, row in enumerate(raw_weights)
    ]
    reference = greedy_reference_matching(objects, functions)
    assert exact_blocking_pairs(reference, objects, functions) == []

    for matcher_cls in (SkylineMatcher, BruteForceMatcher, ChainMatcher):
        problem = MatchingProblem.build(objects, functions)
        matching = matcher_cls(problem).run()
        assert matching.as_set() == reference.as_set(), matcher_cls.__name__
        assert len(matching) == min(len(objects), len(functions))
        assert exact_blocking_pairs(matching, objects, functions) == []


@settings(max_examples=25, deadline=None)
@given(instances)
def test_sb_variants_agree(instance):
    raw_points, raw_weights = instance
    objects = Dataset(raw_points)
    functions = [
        LinearPreference.normalized(fid, row)
        for fid, row in enumerate(raw_weights)
    ]
    reference = greedy_reference_matching(objects, functions)
    for kwargs in (
        {"multi_pair": False},
        {"maintenance": "retraversal"},
        {"threshold": "naive"},
        {"cache_best": False},
    ):
        problem = MatchingProblem.build(objects, functions)
        matching = SkylineMatcher(problem, **kwargs).run()
        assert matching.as_set() == reference.as_set(), kwargs
