"""Segmented preference-workload generator."""

import pytest

from repro.errors import DimensionalityError, PreferenceError
from repro.prefs import generate_segmented_preferences

PROFILES = {
    "budget": (0.5, 4.0, 0.5),
    "family": (3.0, 1.0, 2.0),
}


def test_counts_ids_and_segments():
    functions, segment_of = generate_segmented_preferences(
        PROFILES, per_segment=10, dims=3, seed=310
    )
    assert len(functions) == 20
    assert [f.fid for f in functions] == list(range(20))
    assert sum(1 for s in segment_of.values() if s == "budget") == 10
    # Segment order follows dict insertion order.
    assert segment_of[0] == "budget" and segment_of[10] == "family"


def test_weights_normalized_and_near_profile():
    functions, segment_of = generate_segmented_preferences(
        PROFILES, per_segment=50, dims=3, seed=311, jitter=0.2
    )
    for function in functions:
        assert abs(sum(function.weights) - 1.0) < 1e-9
        profile = PROFILES[segment_of[function.fid]]
        total = sum(profile)
        for weight, base in zip(function.weights, profile):
            expected = base / total
            assert abs(weight - expected) < expected * 0.6 + 0.05


def test_budget_segment_weights_price_most():
    functions, segment_of = generate_segmented_preferences(
        PROFILES, per_segment=30, dims=3, seed=312
    )
    for function in functions:
        if segment_of[function.fid] == "budget":
            assert function.weights[1] == max(function.weights)


def test_deterministic():
    a, _ = generate_segmented_preferences(PROFILES, 5, 3, seed=313)
    b, _ = generate_segmented_preferences(PROFILES, 5, 3, seed=313)
    assert a == b


def test_validation():
    with pytest.raises(PreferenceError):
        generate_segmented_preferences({}, 5, 3)
    with pytest.raises(DimensionalityError):
        generate_segmented_preferences({"x": (1.0, 1.0)}, 5, 3)
    with pytest.raises(PreferenceError):
        generate_segmented_preferences({"x": (0.0, 0.0, 0.0)}, 5, 3)
    with pytest.raises(PreferenceError):
        generate_segmented_preferences(PROFILES, -1, 3)
    with pytest.raises(PreferenceError):
        generate_segmented_preferences(PROFILES, 5, 3, jitter=1.0)


def test_zero_per_segment():
    functions, segment_of = generate_segmented_preferences(
        PROFILES, per_segment=0, dims=3
    )
    assert functions == [] and segment_of == {}


def test_segmented_workload_matches_end_to_end():
    from repro.core import MatchingProblem, SkylineMatcher, greedy_reference_matching
    from repro.data import generate_independent

    objects = generate_independent(300, 3, seed=314)
    functions, _ = generate_segmented_preferences(
        PROFILES, per_segment=8, dims=3, seed=315
    )
    problem = MatchingProblem.build(objects, functions)
    matching = SkylineMatcher(problem).run()
    assert matching.as_set() == greedy_reference_matching(
        objects, functions
    ).as_set()
