"""The lint rules against the fixture corpus.

``tests/lint_fixtures/`` holds one snippet file per rule with positive
and negative cases; a trailing ``# EXPECT: <rule>`` comment marks every
line where a finding must be reported. The corpus test asserts the
engine's reported ``(path, rule, line)`` multiset equals the expected
one exactly — a rule that misses a positive case fails, and so does a
rule that fires on a negative one.
"""

import json
import re
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintEngine,
    available_rules,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.suppress import extract_comments

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
_EXPECT_RE = re.compile(r"EXPECT:\s*([A-Za-z][\w-]*)")


def _expected_findings() -> Counter:
    """``{(path, rule, line): count}`` parsed from EXPECT comments."""
    expected: Counter = Counter()
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        comments = extract_comments(path.read_text(encoding="utf-8"))
        for line, comment in comments.items():
            for rule in _EXPECT_RE.findall(comment):
                expected[(rel, rule, line)] += 1
    return expected


@pytest.fixture(scope="module")
def report():
    return LintEngine(root=FIXTURES).run(["."])


def test_fixture_corpus_is_matched_exactly(report):
    expected = _expected_findings()
    assert expected, "fixture corpus lost its EXPECT annotations"
    actual = Counter(
        (finding.path, finding.rule, finding.line)
        for finding in report.findings
    )
    missing = expected - actual
    surprises = actual - expected
    assert not missing, f"rules failed to fire: {sorted(missing)}"
    assert not surprises, f"rules fired on negative cases: {sorted(surprises)}"


def test_every_rule_fires_on_at_least_one_fixture(report):
    fired = {finding.rule for finding in report.findings}
    assert fired == set(available_rules())


def test_seeded_deadlock_cycle_is_detected(report):
    # The textbook fixture: worker takes _jobs_lock then _stats_lock
    # (one leg through a helper call), reporter takes them in reverse.
    cycles = [f for f in report.findings
              if f.rule == "lock-cycle"
              and f.path == "lock_cycle_cases.py"]
    assert len(cycles) == 1
    assert "_jobs_lock" in cycles[0].symbol
    assert "_stats_lock" in cycles[0].symbol
    assert "deadlock" in cycles[0].message


def test_stale_suppressions_are_reported_exactly(report):
    stale = {(s.path, s.line) for s in report.stale_suppressions}
    assert stale == {
        ("stale_suppression_cases.py", 1),    # disable-file=picklability
        ("stale_suppression_cases.py", 30),   # guarded access, disable dead
        ("stale_suppression_cases.py", 32),   # holds-lock= excusing nothing
    }


def test_inline_suppression_lands_in_suppressed_not_findings(report):
    # GoodCounter.fast_peek reads a guarded attribute under an inline
    # `# lint: disable=lock-guard` — counted, but never failing.
    assert any(
        finding.path == "lock_guard_cases.py"
        and finding.rule == "lock-guard"
        for finding in report.suppressed
    ), [f.render() for f in report.suppressed]


def test_def_scoped_suppression_covers_the_whole_body(tmp_path):
    snippet = (
        "import threading\n"
        "\n"
        "\n"
        "class Holder:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0  # guarded-by: _lock\n"
        "\n"
        "    def scan(self):  # lint: disable=lock-guard\n"
        "        first = self.total\n"
        "        second = self.total\n"
        "        return first + second\n"
    )
    target = tmp_path / "scoped.py"
    target.write_text(snippet)
    report = LintEngine(root=tmp_path).run([target])
    assert report.ok
    assert len(report.suppressed) == 2


def test_file_wide_suppression(tmp_path):
    snippet = (
        "# lint: disable-file=async-safety\n"
        "import time\n"
        "\n"
        "\n"
        "async def stall():\n"
        "    time.sleep(1)\n"
    )
    target = tmp_path / "whole_file.py"
    target.write_text(snippet)
    report = LintEngine(root=tmp_path).run([target])
    assert report.ok and len(report.suppressed) == 1


def test_syntax_errors_are_reported_as_findings(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def half(:\n")
    report = LintEngine(root=tmp_path).run([target])
    assert not report.ok
    assert report.findings[0].rule == "syntax"


def test_baseline_excuses_and_reports_stale_entries(tmp_path):
    # Baseline exactly the corpus's current findings: the run goes
    # green; delete a fixture's debt and its entries surface as stale.
    fresh = LintEngine(root=FIXTURES).run(["."])
    baseline_path = tmp_path / "baseline.json"
    Baseline.save(baseline_path, fresh.findings)

    excused = LintEngine(
        baseline=Baseline.load(baseline_path), root=FIXTURES
    ).run(["."])
    assert excused.ok
    assert len(excused.baselined) == len(fresh.findings)
    assert not excused.stale_baseline

    partial = LintEngine(
        baseline=Baseline.load(baseline_path), root=FIXTURES
    ).run(["lock_guard_cases.py"])
    assert partial.ok
    stale_rules = {key[0] for key in partial.stale_baseline}
    assert "async-safety" in stale_rules


def test_baseline_consumes_entries_one_for_one():
    finding = Finding(rule="demo", path="a.py", line=3, message="m",
                      symbol="s")
    baseline = Baseline.from_findings([finding])
    assert baseline.consume(finding)
    assert not baseline.consume(finding)   # each entry excuses one hit


def test_run_lint_rule_subset(tmp_path):
    (tmp_path / "only_async.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "async def stall():\n"
        "    time.sleep(1)\n"
        "\n"
        "\n"
        "class Late:  # lint: frozen\n"
        "    def set(self, v):\n"
        "        self.v = v\n"
    )
    full = run_lint([tmp_path], root=tmp_path)
    assert {f.rule for f in full.findings} == {
        "async-safety", "frozen-mutation"
    }
    subset = run_lint([tmp_path], rules=["async-safety"], root=tmp_path)
    assert {f.rule for f in subset.findings} == {"async-safety"}


def test_cli_fails_on_fixtures_and_writes_json(tmp_path):
    from repro.lint.cli import main

    json_path = tmp_path / "report" / "findings.json"
    status = main([
        "--root", str(FIXTURES), "--json", str(json_path), "-q", ".",
    ])
    assert status == 1
    payload = json.loads(json_path.read_text())
    assert payload["ok"] is False
    assert payload["files_checked"] >= 6
    reported = {(f["path"], f["rule"], f["line"])
                for f in payload["findings"]}
    assert reported == set(_expected_findings())


def test_cli_writes_sarif(tmp_path):
    from repro.lint.cli import main

    sarif_path = tmp_path / "report" / "findings.sarif"
    status = main([
        "--root", str(FIXTURES), "--sarif", str(sarif_path), "-q", ".",
    ])
    assert status == 1
    log = json.loads(sarif_path.read_text())
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} \
        == set(available_rules())
    reported = {
        (res["locations"][0]["physicalLocation"]["artifactLocation"]
         ["uri"],
         res["ruleId"],
         res["locations"][0]["physicalLocation"]["region"]["startLine"])
        for res in run["results"]
    }
    assert reported == set(_expected_findings())
    assert all(res["level"] == "error" for res in run["results"])
    assert run["invocations"][0]["executionSuccessful"] is False
    # The corpus's stale suppressions ride along as notifications.
    notes = run["invocations"][0]["toolExecutionNotifications"]
    assert any("stale suppression" in n["message"]["text"]
               for n in notes)


def test_cli_write_baseline_then_clean(tmp_path):
    from repro.lint.cli import main

    baseline_path = tmp_path / "grandfathered.json"
    wrote = main([
        "--root", str(FIXTURES), "--baseline", str(baseline_path),
        "--write-baseline", "-q", ".",
    ])
    assert wrote == 0
    clean = main([
        "--root", str(FIXTURES), "--baseline", str(baseline_path),
        "-q", ".",
    ])
    assert clean == 0


def test_cli_rejects_unknown_rules():
    from repro.lint.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--rules", "no-such-rule"])
    assert excinfo.value.code == 2
