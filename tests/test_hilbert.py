"""Hilbert curve index and Hilbert bulk loading."""

import itertools

import pytest

from tests.conftest import check_rtree_invariants
from repro.data import generate_independent, generate_zillow
from repro.errors import RTreeError
from repro.rtree import (
    DiskNodeStore,
    MemoryNodeStore,
    RTree,
    hilbert_bulk_load,
    hilbert_index,
    hilbert_key_for_point,
    top1,
)


def test_hilbert_is_a_bijection_2d():
    order = 3
    seen = {}
    for x, y in itertools.product(range(1 << order), repeat=2):
        seen[hilbert_index((x, y), order)] = (x, y)
    assert len(seen) == (1 << order) ** 2
    assert set(seen) == set(range((1 << order) ** 2))


def test_hilbert_is_a_bijection_3d():
    order = 2
    indices = {
        hilbert_index(coords, order)
        for coords in itertools.product(range(1 << order), repeat=3)
    }
    assert indices == set(range((1 << order) ** 3))


def test_hilbert_consecutive_cells_are_adjacent():
    # The defining locality property: consecutive curve positions are
    # lattice neighbors (L1 distance exactly 1).
    order = 4
    by_index = {}
    for x, y in itertools.product(range(1 << order), repeat=2):
        by_index[hilbert_index((x, y), order)] = (x, y)
    for i in range(len(by_index) - 1):
        ax, ay = by_index[i]
        bx, by = by_index[i + 1]
        assert abs(ax - bx) + abs(ay - by) == 1, i


def test_hilbert_validation():
    with pytest.raises(RTreeError):
        hilbert_index((), 4)
    with pytest.raises(RTreeError):
        hilbert_index((16,), 4)  # out of range for order 4
    with pytest.raises(RTreeError):
        hilbert_index((-1, 0), 4)


def test_key_for_point_clamps_and_discretizes():
    assert hilbert_key_for_point((0.0, 0.0)) == hilbert_key_for_point(
        (-0.5, -0.5)
    )
    assert hilbert_key_for_point((1.0, 1.0)) == hilbert_key_for_point(
        (2.0, 2.0)
    )
    # Distinct points get distinct keys at default precision.
    assert hilbert_key_for_point((0.1, 0.2)) != hilbert_key_for_point(
        (0.2, 0.1)
    )


def test_hilbert_bulk_load_contains_everything():
    dataset = generate_independent(1200, 3, seed=240)
    tree = hilbert_bulk_load(DiskNodeStore(3), 3, dataset.items())
    assert tree.num_objects == 1200
    assert sorted(oid for oid, _ in tree.iter_objects()) == dataset.ids
    check_rtree_invariants(tree)


def test_hilbert_bulk_load_empty_and_validation():
    tree = hilbert_bulk_load(MemoryNodeStore(8), 2, [])
    assert tree.num_objects == 0
    with pytest.raises(RTreeError):
        hilbert_bulk_load(MemoryNodeStore(8), 2, [(0, (0.1, 0.2))], fill=0.0)


def test_hilbert_tree_supports_queries_and_updates():
    dataset = generate_independent(800, 3, seed=241)
    tree = hilbert_bulk_load(MemoryNodeStore(16), 3, dataset.items())
    weights = (0.5, 0.3, 0.2)
    str_tree = RTree.bulk_load(MemoryNodeStore(16), 3, dataset.items())
    assert top1(tree, weights)[0] == top1(str_tree, weights)[0]
    points = dict(dataset.items())
    for object_id in dataset.ids[:50]:
        tree.delete(object_id, points[object_id])
    assert tree.num_objects == 750
    check_rtree_invariants(tree)


def test_hilbert_and_str_have_comparable_size():
    dataset = generate_zillow(3000, seed=242)
    str_store = DiskNodeStore(5)
    RTree.bulk_load(str_store, 5, dataset.items())
    hilbert_store = DiskNodeStore(5)
    hilbert_bulk_load(hilbert_store, 5, dataset.items())
    ratio = hilbert_store.disk.num_pages / str_store.disk.num_pages
    assert 0.8 <= ratio <= 1.25
