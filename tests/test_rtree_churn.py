"""Interleaved insert/delete churn: the dynamic session's tree workload.

A session compaction applies deletes and inserts back to back, over and
over, for the lifetime of the tree — a very different pattern from the
one-shot build + monotone-delete workload the static matchers exercise.
These tests drive long interleaved schedules and assert, throughout,
structural validity (``validate_tree``) and query correctness (``nn``
and ``topk`` against brute force over the surviving pool).
"""

import random

import pytest

from repro.data import generate_clustered, generate_independent
from repro.prefs import canonical_score, generate_preferences
from repro.rtree import (
    DiskNodeStore,
    MemoryNodeStore,
    RTree,
    k_nearest,
    topk,
    validate_tree,
)


def brute_topk(pool, weights, k):
    ranked = sorted(
        pool.items(),
        key=lambda item: (-canonical_score(weights, item[1]), item[0]),
    )
    return [(oid, point) for oid, point in ranked[:k]]


def brute_nn(pool, query, k):
    def distance(point):
        return sum((a - b) ** 2 for a, b in zip(point, query)) ** 0.5

    ranked = sorted(
        pool.items(), key=lambda item: (distance(item[1]), item[0])
    )
    return [(oid, point) for oid, point in ranked[:k]]


@pytest.mark.parametrize("store_factory,fanout", [
    (lambda dims: MemoryNodeStore(8), 8),
    (lambda dims: DiskNodeStore(dims), None),
])
def test_interleaved_churn_preserves_validity_and_queries(store_factory,
                                                          fanout):
    dims = 3
    dataset = generate_independent(500, dims, seed=91)
    items = list(dataset.items())
    seed_items, arrivals = items[:300], items[300:]
    tree = RTree.bulk_load(store_factory(dims), dims, seed_items)
    pool = dict(seed_items)
    arrivals = list(arrivals)
    functions = generate_preferences(5, dims, seed=92)
    rng = random.Random(93)

    for step in range(220):
        if arrivals and (rng.random() < 0.5 or len(pool) < 20):
            object_id, point = arrivals.pop()
            tree.insert(object_id, point)
            pool[object_id] = point
        else:
            object_id = rng.choice(sorted(pool))
            tree.delete(object_id, pool.pop(object_id))
        if step % 20 == 0:
            assert validate_tree(tree) == len(pool)
            for function in functions:
                got = [
                    (oid, point)
                    for oid, point, _ in topk(tree, function.weights, 3)
                ]
                assert got == brute_topk(pool, function.weights, 3)
            query = tuple(rng.random() for _ in range(dims))
            got = [(oid, point) for oid, point, _ in k_nearest(tree, query, 3)]
            assert got == brute_nn(pool, query, 3)
    assert validate_tree(tree) == len(pool)


def test_churn_to_empty_and_refill():
    dims = 2
    tree = RTree(MemoryNodeStore(6), dims=dims)
    rng = random.Random(94)
    pool = {}
    for object_id in range(60):
        point = (rng.random(), rng.random())
        tree.insert(object_id, point)
        pool[object_id] = point
    for object_id in sorted(pool):
        tree.delete(object_id, pool.pop(object_id))
    assert validate_tree(tree) == 0
    assert tree.height == 1
    for object_id in range(100, 180):
        point = (rng.random(), rng.random())
        tree.insert(object_id, point)
        pool[object_id] = point
    assert validate_tree(tree) == 80
    weights = (0.5, 0.5)
    got = [(oid, p) for oid, p, _ in topk(tree, weights, 5)]
    assert got == brute_topk(pool, weights, 5)


def test_clustered_churn_with_duplicates():
    # Clustered data with coarse coordinates: duplicate points and deep
    # overlap stress the delete path's leaf search and condensation.
    dims = 2
    dataset = generate_clustered(300, dims, clusters=4, seed=95,
                                 spread=0.02)
    coarse = [
        (round(x * 20) / 20, round(y * 20) / 20)
        for x, y in (point for _, point in dataset.items())
    ]
    tree = RTree(MemoryNodeStore(5), dims=dims)
    pool = {}
    rng = random.Random(96)
    next_id = 0
    for point in coarse[:150]:
        tree.insert(next_id, point)
        pool[next_id] = point
        next_id += 1
    for point in coarse[150:]:
        victim = rng.choice(sorted(pool))
        tree.delete(victim, pool.pop(victim))
        tree.insert(next_id, point)
        pool[next_id] = point
        next_id += 1
        if next_id % 25 == 0:
            assert validate_tree(tree) == len(pool)
    assert validate_tree(tree) == len(pool)
    weights = (0.7, 0.3)
    got = [(oid, p) for oid, p, _ in topk(tree, weights, 10)]
    assert got == brute_topk(pool, weights, 10)
