"""Session-vs-scratch equivalence: the dynamic subsystem's correctness bar.

After *any* event sequence, a session's matching must equal a
from-scratch ``repro.match()`` over the surviving data — for every
registered algorithm that supports repair, on both storage backends,
and at intermediate checkpoints (not just at the end). Equality is on
pair sets with exact scores: both sides use the canonical arithmetic,
so not even a ulp of drift is tolerated.
"""

import pytest

import repro
from repro.dynamic import (
    MIXED_CHURN,
    OBJECT_CHURN,
    PREFERENCE_CHURN,
    apply_events,
    generate_events,
)
from repro.engine import algorithm_supports_repair, available_algorithms

REPAIRABLE = [
    name for name in available_algorithms() if algorithm_supports_repair(name)
]


def pair_set(pairs):
    return sorted((p.function_id, p.object_id, p.score) for p in pairs)


def scratch_pairs(objects, functions, algorithm, backend):
    if not len(objects) or not functions:
        return []
    result = repro.match(objects, functions, algorithm=algorithm,
                         backend=backend)
    return pair_set(result.pairs)


def test_every_builtin_linear_matcher_supports_repair():
    assert set(REPAIRABLE) == {"sb", "bf", "chain", "gs"}
    assert not algorithm_supports_repair("generic-sb")


@pytest.mark.parametrize("algorithm", REPAIRABLE)
def test_randomized_sequences_match_scratch(algorithm):
    objects = repro.generate_anticorrelated(180, 3, seed=31)
    functions = repro.generate_preferences(28, 3, seed=32)
    events = generate_events(objects, functions, 90, mix=MIXED_CHURN,
                             seed=33)
    session = repro.open_session(objects, functions, algorithm=algorithm,
                                 backend="memory")
    applied = []
    for step, event in enumerate(events, start=1):
        session.submit(event)
        applied.append(event)
        if step % 30 == 0 or step == len(events):
            surviving, prefs = apply_events(objects, functions, applied)
            assert pair_set(session.pairs) == scratch_pairs(
                surviving, prefs, algorithm, "memory"
            ), f"{algorithm} diverged after {step} events"


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
@pytest.mark.parametrize("mix", [MIXED_CHURN, OBJECT_CHURN,
                                 PREFERENCE_CHURN],
                         ids=["mixed", "objects", "preferences"])
def test_update_mixes_match_scratch(mix, seed):
    objects = repro.generate_independent(150, 3, seed=seed)
    functions = repro.generate_preferences(20, 3, seed=seed + 100)
    events = generate_events(objects, functions, 80, mix=mix,
                             seed=seed + 200)
    session = repro.open_session(objects, functions, backend="memory")
    for event in events:
        session.submit(event)
    surviving, prefs = apply_events(objects, functions, events)
    assert pair_set(session.pairs) == scratch_pairs(
        surviving, prefs, "sb", "memory"
    )


def test_disk_backend_matches_scratch_with_compaction():
    objects = repro.generate_anticorrelated(250, 4, seed=41)
    functions = repro.generate_preferences(30, 4, seed=42)
    # Aggressive compaction so physical insert/delete churn is exercised.
    session = repro.open_session(objects, functions, backend="disk",
                                 compact_fraction=0.05)
    events = generate_events(objects, functions, 120, mix=OBJECT_CHURN,
                             seed=43)
    for event in events:
        session.submit(event)
    assert session.stats["compactions"] > 0
    assert session.stats["tree_deletes"] > 0
    assert session.stats["tree_inserts"] > 0
    surviving, prefs = apply_events(objects, functions, events)
    assert pair_set(session.pairs) == scratch_pairs(
        surviving, prefs, "sb", "disk"
    )


@pytest.mark.parametrize("batch_size", [4, 16, 64])
def test_batched_application_matches_scratch(batch_size):
    objects = repro.generate_independent(160, 3, seed=51)
    functions = repro.generate_preferences(24, 3, seed=52)
    events = generate_events(objects, functions, 70, seed=53)
    session = repro.open_session(objects, functions, backend="memory",
                                 batch_size=batch_size,
                                 repair_threshold=1e9)
    for event in events:
        session.submit(event)
    surviving, prefs = apply_events(objects, functions, events)
    assert pair_set(session.pairs) == scratch_pairs(
        surviving, prefs, "sb", "memory"
    )
    assert session.stats["full_rematches"] == 1  # only the initial match


def test_recompute_fallback_matches_scratch():
    objects = repro.generate_independent(140, 3, seed=61)
    functions = repro.generate_preferences(18, 3, seed=62)
    events = generate_events(objects, functions, 60, seed=63)
    # Tiny threshold: every flush of this large batch goes through the
    # structural-apply + full-rematch path.
    session = repro.open_session(objects, functions, backend="memory",
                                 batch_size=30, repair_threshold=0.01)
    for event in events:
        session.submit(event)
    surviving, prefs = apply_events(objects, functions, events)
    assert pair_set(session.pairs) == scratch_pairs(
        surviving, prefs, "sb", "memory"
    )
    assert session.stats["full_rematches"] >= 3  # initial + both batches


def test_draining_both_sides_and_refilling():
    objects = repro.generate_independent(25, 2, seed=71)
    functions = repro.generate_preferences(6, 2, seed=72)
    session = repro.open_session(objects, functions, backend="memory")
    for fid in list(range(6)):
        session.remove_function(fid)
    assert session.pairs == []
    for object_id in list(objects.ids):
        session.delete_object(object_id)
    assert session.pairs == []
    session.insert_object(1000, (0.3, 0.8))
    session.add_function(repro.LinearPreference(500, (0.5, 0.5)))
    pairs = session.pairs
    assert [(p.function_id, p.object_id) for p in pairs] == [(500, 1000)]
    assert pairs[0].score == pytest.approx(0.55)


def test_functions_exceeding_objects_stay_consistent():
    objects = repro.generate_independent(8, 2, seed=81)
    functions = repro.generate_preferences(15, 2, seed=82)
    session = repro.open_session(objects, functions, backend="memory")
    events = generate_events(objects, functions, 40, seed=83)
    for event in events:
        session.submit(event)
    surviving, prefs = apply_events(objects, functions, events)
    assert pair_set(session.pairs) == scratch_pairs(
        surviving, prefs, "sb", "memory"
    )
    result = session.matching()
    assert len(result.unmatched_functions) == len(prefs) - len(result.pairs)
