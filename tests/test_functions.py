"""LinearPreference validation and generation."""

import numpy as np
import pytest

from repro.errors import DimensionalityError, PreferenceError
from repro.prefs import (
    LinearPreference,
    canonical_score,
    generate_preferences,
    weights_matrix,
)


def test_valid_function_scores():
    f = LinearPreference(0, (0.2, 0.3, 0.5))
    assert f.dims == 3
    assert f.score((1.0, 1.0, 1.0)) == pytest.approx(1.0)
    assert f.score((0.0, 0.0, 0.0)) == 0.0
    assert f.score((1.0, 0.0, 0.0)) == pytest.approx(0.2)


def test_weights_must_sum_to_one():
    with pytest.raises(PreferenceError):
        LinearPreference(0, (0.5, 0.6))
    with pytest.raises(PreferenceError):
        LinearPreference(0, (0.2, 0.2))


def test_weights_must_be_nonnegative_finite():
    with pytest.raises(PreferenceError):
        LinearPreference(0, (1.5, -0.5))
    with pytest.raises(PreferenceError):
        LinearPreference(0, (float("nan"), 1.0))
    with pytest.raises(PreferenceError):
        LinearPreference(0, ())


def test_negative_fid_rejected():
    with pytest.raises(PreferenceError):
        LinearPreference(-1, (1.0,))


def test_normalized_constructor():
    f = LinearPreference.normalized(3, (2.0, 6.0))
    assert f.weights == (0.25, 0.75)
    with pytest.raises(PreferenceError):
        LinearPreference.normalized(0, (0.0, 0.0))


def test_score_dimension_mismatch():
    f = LinearPreference(0, (0.5, 0.5))
    with pytest.raises(DimensionalityError):
        f.score((0.1, 0.2, 0.3))


def test_monotonicity():
    # The defining property: oi >= oi' for all i implies f(o) >= f(o').
    f = LinearPreference(0, (0.1, 0.6, 0.3))
    better = (0.8, 0.5, 0.9)
    worse = (0.7, 0.5, 0.2)
    assert f.score(better) >= f.score(worse)


def test_canonical_score_is_left_to_right_sum():
    weights = (0.1, 0.2, 0.3, 0.4)
    point = (0.9, 0.8, 0.7, 0.6)
    expected = ((0.1 * 0.9 + 0.2 * 0.8) + 0.3 * 0.7) + 0.4 * 0.6
    assert canonical_score(weights, point) == expected  # bitwise


def test_generate_preferences_properties():
    prefs = generate_preferences(200, 5, seed=50)
    assert len(prefs) == 200
    assert [f.fid for f in prefs] == list(range(200))
    for f in prefs:
        assert f.dims == 5
        assert abs(sum(f.weights) - 1.0) < 1e-9
        assert all(w >= 0 for w in f.weights)


def test_generate_preferences_deterministic():
    a = generate_preferences(50, 3, seed=51)
    b = generate_preferences(50, 3, seed=51)
    assert a == b
    c = generate_preferences(50, 3, seed=52)
    assert a != c


def test_concentration_controls_spread():
    diffuse = generate_preferences(500, 3, seed=53, concentration=0.1)
    peaked = generate_preferences(500, 3, seed=53, concentration=50.0)
    spread = lambda prefs: np.std([max(f.weights) for f in prefs])
    assert spread(diffuse) > spread(peaked)
    with pytest.raises(PreferenceError):
        generate_preferences(10, 3, concentration=0.0)


def test_weights_matrix_alignment():
    prefs = generate_preferences(20, 4, seed=54)
    matrix, fids = weights_matrix(prefs)
    assert matrix.shape == (20, 4)
    assert fids == [f.fid for f in prefs]
    for row, f in zip(matrix, prefs):
        assert tuple(row) == f.weights


def test_weights_matrix_mixed_dims_rejected():
    prefs = [LinearPreference(0, (1.0,)), LinearPreference(1, (0.5, 0.5))]
    with pytest.raises(DimensionalityError):
        weights_matrix(prefs)
