"""The wire codec: bit-exact round trips and typed failures.

The network protocol is only trustworthy if a decoded message is
*indistinguishable* from the original — same pairs, same scores down to
the last bit, same provenance — across every algorithm and both the 1-1
and capacitated shapes. Property tests drive that here; the codec's
refusal behaviour (non-linear workloads) and the picklability of every
network exception (they cross process boundaries in worker error
frames) are pinned alongside.
"""

import json
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.data import Dataset
from repro.errors import (CodecError, ConnectionRetriesExceededError,
                          NetworkError, RemoteError)
from repro.net.codec import (decode_request, decode_result, encode_request,
                             encode_result)
from repro.prefs import LinearPreference, MinPreference

# Coarse grids maximize exact score ties and duplicate points (see
# tests/test_prop_parallel.py for the rounding rationale).
coarse = st.integers(min_value=0, max_value=3).map(lambda v: v / 3)
fine = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                 allow_infinity=False).map(lambda v: round(v, 6))
coordinate = st.one_of(coarse, fine)
positive = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)

instances = st.tuples(
    st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=20),
    st.lists(st.tuples(positive, positive), min_size=1, max_size=6),
    st.sampled_from(["sb", "bf", "chain"]),
    st.booleans(),                                   # capacitated?
)


def build(points, raw_weights):
    objects = Dataset([list(point) for point in points])
    functions = [
        LinearPreference.normalized(fid, list(weights))
        for fid, weights in enumerate(raw_weights)
    ]
    return objects, functions


def as_triples(result):
    return sorted(
        (pair.function_id, pair.object_id, pair.score, pair.round,
         pair.rank)
        for pair in result.pairs
    )


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.tuples(positive, positive), min_size=1, max_size=8),
    st.lists(st.text(max_size=8), max_size=3),
    st.integers(min_value=-5, max_value=5),
    st.one_of(st.none(), st.floats(min_value=0.01, max_value=30.0,
                                   allow_nan=False)),
    st.booleans(),
)
def test_request_round_trip_is_identity(raw_weights, tags, priority,
                                        timeout, use_cache):
    functions = tuple(
        LinearPreference.normalized(fid, list(weights))
        for fid, weights in enumerate(raw_weights)
    )
    request = repro.MatchingRequest(
        functions, tags=tuple(tags), priority=priority,
        timeout=timeout, use_cache=use_cache,
    )
    # Through actual JSON text, not just the dict: the wire carries
    # serialized bytes, and repr-based float serialization must
    # round-trip every weight bit-for-bit.
    wire = json.dumps(encode_request(request))
    assert decode_request(json.loads(wire)) == request


def test_request_cache_key_survives_the_wire():
    objects = repro.generate_independent(n=40, dims=3, seed=1)
    prefs = repro.generate_preferences(n=4, dims=3, seed=2)
    request = repro.MatchingRequest(prefs)
    clone = decode_request(encode_request(request))
    prepared = repro.plan(backend="memory").prepare(objects)
    try:
        assert (prepared.request_key(list(clone.functions))
                == prepared.request_key(list(request.functions)))
    finally:
        prepared.close()


@pytest.mark.parametrize("bad", [
    MinPreference(0, (0.5, 0.5)),
    type("SubLinear", (LinearPreference,), {})(0, (0.5, 0.5)),
])
def test_non_linear_workloads_are_rejected(bad):
    request = repro.MatchingRequest([bad])
    with pytest.raises(CodecError) as excinfo:
        encode_request(request)
    assert "faithful wire form" in str(excinfo.value)


@pytest.mark.parametrize("payload", [
    {},                                   # missing functions
    {"functions": [[0, "x"]]},            # malformed weights
    {"functions": "nope"},                # wrong shape
])
def test_malformed_request_payloads_raise_codec_error(payload):
    with pytest.raises(CodecError):
        decode_request(payload)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(instances)
def test_result_round_trip_is_exact(instance):
    points, raw_weights, algorithm, capacitated = instance
    objects, functions = build(points, raw_weights)
    capacities = None
    if capacitated:
        capacities = {
            object_id: (object_id % 3) for object_id, _ in objects.items()
        }
    result = repro.match(objects, functions, algorithm=algorithm,
                         backend="memory", capacities=capacities)
    wire = json.dumps(encode_result(result))
    clone = decode_result(json.loads(wire))
    assert as_triples(clone) == as_triples(result)
    assert sorted(clone.unmatched_functions) == sorted(
        result.unmatched_functions
    )
    assert clone.unmatched_objects_count == result.unmatched_objects_count
    assert clone.algorithm == result.algorithm
    assert clone.backend == result.backend
    assert clone.capacities == result.capacities


def test_result_round_trip_preserves_io_and_provenance():
    objects = repro.generate_independent(n=60, dims=2, seed=4)
    prefs = repro.generate_preferences(n=5, dims=2, seed=6)
    result = repro.match(objects, prefs)  # disk backend: io is populated
    clone = decode_result(json.loads(json.dumps(encode_result(result))))
    assert clone.io == result.io
    assert clone.io.page_reads == result.io.page_reads
    assert clone.seed == result.seed
    assert dict(clone.stats) == dict(result.stats)
    assert clone.cpu_seconds == result.cpu_seconds


@pytest.mark.parametrize("payload", [
    {},                                   # missing pairs
    {"pairs": [[0, 1]]},                  # truncated pair
    {"pairs": [[0, 1, "x", 0, 0]]},       # non-numeric score
])
def test_malformed_result_payloads_raise_codec_error(payload):
    with pytest.raises(CodecError):
        decode_result(payload)


# ----------------------------------------------------------------------
# Exceptions cross process boundaries in worker error frames
# ----------------------------------------------------------------------
@pytest.mark.parametrize("error", [
    NetworkError("boom"),
    CodecError("bad frame"),
    ConnectionRetriesExceededError("host:1", 3, OSError(111, "refused")),
    RemoteError(429, "ServiceOverloadedError", "too busy"),
])
def test_network_errors_are_picklable(error):
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is type(error)
    assert str(clone) == str(error)


def test_retries_exceeded_error_carries_diagnostics_through_pickle():
    original = ConnectionRetriesExceededError(
        "worker-9:4040", 5, OSError(111, "refused")
    )
    clone = pickle.loads(pickle.dumps(original))
    assert clone.address == "worker-9:4040"
    assert clone.attempts == 5
    assert isinstance(clone.last_error, OSError)


def test_remote_error_carries_the_remote_type_through_pickle():
    clone = pickle.loads(pickle.dumps(
        RemoteError(400, "MatchingError", "dims mismatch")
    ))
    assert clone.code == 400
    assert clone.remote_type == "MatchingError"
    assert clone.remote_message == "dims mismatch"
