"""SearchStats plumbing: matchers propagate CPU-side counters."""

from repro.core import BruteForceMatcher, ChainMatcher, MatchingProblem, SkylineMatcher
from repro.data import generate_independent
from repro.prefs import generate_preferences
from repro.storage import SearchStats


def make_problem(seed=360):
    objects = generate_independent(300, 3, seed=seed)
    functions = generate_preferences(15, 3, seed=seed + 1)
    return MatchingProblem.build(objects, functions)


def test_sb_counts_dominance_and_scores():
    stats = SearchStats()
    SkylineMatcher(make_problem(), search_stats=stats).run()
    assert stats.dominance_checks > 0     # BBS + maintenance
    assert stats.score_evaluations > 0    # TA scans + argmax confirms
    assert stats.heap_pushes > 0
    assert stats.heap_pops > 0


def test_brute_force_counts_ranked_search_work():
    stats = SearchStats()
    BruteForceMatcher(make_problem(), search_stats=stats).run()
    assert stats.heap_pushes > 0
    assert stats.heap_pops > 0
    assert stats.score_evaluations > 0    # entry bound computations


def test_chain_counts_both_tree_searches():
    stats = SearchStats()
    ChainMatcher(make_problem(), search_stats=stats).run()
    assert stats.heap_pushes > 0
    assert stats.heap_pops > 0


def test_stats_are_cumulative_across_runs():
    stats = SearchStats()
    SkylineMatcher(make_problem(seed=361), search_stats=stats).run()
    first = stats.score_evaluations
    SkylineMatcher(make_problem(seed=362), search_stats=stats).run()
    assert stats.score_evaluations > first


def test_no_stats_object_means_no_counting_overhead_errors():
    # Default path (stats=None) must work everywhere.
    matching = SkylineMatcher(make_problem(seed=363)).run()
    assert len(matching) == 15
