"""Shared fixtures and invariant checkers for the test suite."""

from __future__ import annotations

import pytest

from repro.data import generate_independent
from repro.geometry import MBR
from repro.rtree import DiskNodeStore, RTree


def check_rtree_invariants(tree: RTree) -> None:
    """Structural invariants every R-tree must satisfy at all times.

    * levels decrease by exactly one from parent to child, leaves at 0;
    * the root is at level ``height - 1``;
    * every branch entry's MBR is exactly the union of its child's
      entries (the implementation maintains tight boxes);
    * no node exceeds its capacity; non-root nodes are non-empty;
    * object ids at the leaves are unique and count to ``num_objects``.
    """
    root = tree.read_root()
    assert root.level == tree.height - 1
    seen_objects = []

    def visit(node):
        assert len(node.entries) <= tree.capacity(node.level)
        if node.node_id != tree.root_id:
            assert node.entries, "non-root node must be non-empty"
        if node.is_leaf:
            for entry in node.entries:
                assert entry.mbr.is_point
                seen_objects.append(entry.child)
            return
        for entry in node.entries:
            child = tree.read_node(entry.child)
            assert child.level == node.level - 1
            assert entry.mbr == MBR.union_all(e.mbr for e in child.entries)
            visit(child)

    visit(root)
    assert len(seen_objects) == tree.num_objects
    assert len(set(seen_objects)) == len(seen_objects)


@pytest.fixture
def small_disk_tree():
    """A 300-object, 3-dimensional bulk-loaded disk tree (plus dataset)."""
    dataset = generate_independent(300, 3, seed=11)
    store = DiskNodeStore(3)
    tree = RTree.bulk_load(store, 3, dataset.items())
    return tree, dataset
