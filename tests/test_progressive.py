"""Progressiveness: stable pairs stream out, and partial consumption
costs less than a full run (the paper's algorithms are all progressive)."""

import itertools

from repro.core import (
    BruteForceMatcher,
    ChainMatcher,
    MatchingProblem,
    SkylineMatcher,
    greedy_reference_matching,
)
from repro.data import generate_independent
from repro.prefs import generate_preferences


def make_problem(seed=320, n=2000, nf=100):
    objects = generate_independent(n, 3, seed=seed)
    functions = generate_preferences(nf, 3, seed=seed + 1)
    return objects, functions


def test_first_pairs_match_reference_prefix():
    objects, functions = make_problem()
    reference = greedy_reference_matching(objects, functions)
    problem = MatchingProblem.build(objects, functions)
    first_ten = list(itertools.islice(BruteForceMatcher(problem).pairs(), 10))
    assert [
        (p.function_id, p.object_id) for p in first_ten
    ] == [
        (p.function_id, p.object_id) for p in reference.pairs[:10]
    ]


def test_partial_sb_consumption_costs_less_io():
    objects, functions = make_problem()
    problem_partial = MatchingProblem.build(objects, functions)
    problem_partial.reset_io()
    stream = SkylineMatcher(problem_partial).pairs()
    for _ in range(5):
        next(stream)
    partial_io = problem_partial.io_stats.io_accesses

    problem_full = MatchingProblem.build(objects, functions)
    problem_full.reset_io()
    SkylineMatcher(problem_full).run()
    full_io = problem_full.io_stats.io_accesses
    assert partial_io < full_io


def test_partial_brute_force_consumption_costs_less_io():
    objects, functions = make_problem()
    problem_partial = MatchingProblem.build(objects, functions)
    problem_partial.reset_io()
    stream = BruteForceMatcher(problem_partial).pairs()
    next(stream)
    partial_io = problem_partial.io_stats.io_accesses

    problem_full = MatchingProblem.build(objects, functions)
    problem_full.reset_io()
    BruteForceMatcher(problem_full).run()
    assert partial_io < problem_full.io_stats.io_accesses


def test_abandoned_stream_leaves_consistent_state():
    # Consuming half the pairs and abandoning the generator must leave
    # the problem usable (e.g. for a fresh matcher after rebuild).
    objects, functions = make_problem(n=500, nf=30)
    problem = MatchingProblem.build(objects, functions)
    stream = ChainMatcher(problem).pairs()
    taken = list(itertools.islice(stream, 15))
    assert len(taken) == 15
    del stream
    rebuilt = problem.rebuild()
    matching = SkylineMatcher(rebuilt).run()
    assert matching.as_set() == greedy_reference_matching(
        objects, functions
    ).as_set()


def test_every_prefix_is_stable_over_remaining_sets():
    """Property 1 replayed: after emitting the first k pairs, none of the
    remaining functions/objects beats an emitted pair's score pairing."""
    objects, functions = make_problem(n=300, nf=20)
    problem = MatchingProblem.build(objects, functions)
    emitted = list(SkylineMatcher(problem).pairs())
    functions_by_fid = {f.fid: f for f in functions}
    for k, pair in enumerate(emitted):
        taken_functions = {p.function_id for p in emitted[: k + 1]}
        taken_objects = {p.object_id for p in emitted[: k + 1]}
        # No remaining function scores this object higher...
        for function in functions:
            if function.fid in taken_functions:
                continue
            assert function.score(
                objects.vector(pair.object_id)
            ) <= pair.score
        # ...within this round's view no earlier-emitted pair conflicts
        # (full blocking-pair absence is covered by verify tests).
        assert pair.function_id in functions_by_fid
        assert pair.object_id not in (
            {p.object_id for p in emitted[:k]}
        )
