"""Programmatic ablation API (repro.bench.ablations)."""

import pytest

from repro.bench import SB_VARIANTS, format_ablation_table, run_sb_ablations


@pytest.fixture(scope="module")
def results():
    return run_sb_ablations(scale=0.004, seed=5)


def test_all_variants_present(results):
    for label, _ in SB_VARIANTS:
        assert label in results
    assert "Brute Force" in results
    assert "Chain (restart, paper)" in results
    assert "Chain (retained stack)" in results


def test_design_choices_only_reduce_cost(results):
    base = results["SB as published"]
    assert base["rounds"] <= results["single pair per loop"]["rounds"]
    assert base["io"] <= results["re-traversal maintenance"]["io"]
    assert base["score_evals"] <= results["naive TA threshold"]["score_evals"]
    assert (
        base["reverse_top1"] <= results["no fbest caching"]["reverse_top1"]
    )


def test_sb_beats_baselines_in_io(results):
    sb_io = results["SB as published"]["io"]
    assert sb_io < results["Brute Force"]["io"]
    assert sb_io < results["Chain (restart, paper)"]["io"]


def test_retained_stack_no_worse_than_restart(results):
    assert (
        results["Chain (retained stack)"]["top1_searches"]
        <= results["Chain (restart, paper)"]["top1_searches"]
    )


def test_table_rendering(results):
    text = format_ablation_table(results)
    assert "SB as published" in text
    assert "variant" in text
    # Missing metrics render as dashes.
    assert " - " in text or "-" in text.split()[-1] or "-" in text


def test_cli_ablations(capsys):
    from repro.bench.cli import main

    code = main(["--figure", "ablations", "--scale", "0.004", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Ablations" in out
    assert "re-traversal maintenance" in out
