"""Batched serving: ``submit_many`` is element-wise pair-identical to
sequential ``submit``, across algorithms × backends, with batches mixing
duplicate, cached, linear, and non-linear workloads — plus the
vectorized-vs-tree agreement property on tie-heavy grids, admission
control, the thread-safe result cache, and deterministic close()."""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.data import Dataset
from repro.engine.cache import ResultCache
from repro.engine.request import MatchingRequest
from repro.errors import MatchingError, ServiceOverloadedError
from repro.prefs import LinearPreference, MinPreference, generate_preferences

# Coarse grids maximize exact score ties and duplicate points (see
# tests/test_prop_parallel.py for the general-position rationale).
coarse = st.integers(min_value=0, max_value=3).map(lambda v: v / 3)
fine = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                 allow_infinity=False).map(lambda v: round(v, 6))
coordinate = st.one_of(coarse, fine)
positive = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)


def triples(result):
    return sorted(
        (pair.function_id, pair.object_id, pair.score)
        for pair in result.pairs
    )


def assert_pair_identical(one, other):
    assert triples(one) == triples(other)
    assert sorted(one.unmatched_functions) == sorted(
        other.unmatched_functions
    )


# ----------------------------------------------------------------------
# The acceptance property: submit_many == sequential submit
# ----------------------------------------------------------------------
instances = st.tuples(
    st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=24),
    st.lists(                                   # several raw workloads
        st.lists(st.tuples(positive, positive), min_size=0, max_size=6),
        min_size=1, max_size=5,
    ),
    st.sampled_from(["sb", "bf", "chain", "gs"]),
    st.sampled_from(["memory", "disk"]),
    st.randoms(use_true_random=False),
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(instances)
def test_submit_many_equals_sequential_submit(instance):
    points, raw_workloads, algorithm, backend, rng = instance
    objects = Dataset([list(point) for point in points])
    workloads = [
        [LinearPreference.normalized(fid, list(weights))
         for fid, weights in enumerate(raw)]
        for raw in raw_workloads
    ]
    # A batch mixing fresh, duplicate, and (after the warm-up below)
    # cached workloads, plus a non-linear one on the fallback path.
    batch = list(workloads)
    batch.append(list(workloads[0]))                     # duplicate
    batch.append([MinPreference(0, (1.0, 0.5))])         # non-linear
    rng.shuffle(batch)

    sequential = repro.MatchingService(
        objects, algorithm=algorithm, backend=backend,
        deletion_mode="filter",
    )
    batched = repro.MatchingService(
        objects, algorithm=algorithm, backend=backend,
        deletion_mode="filter",
    )
    try:
        expected = [sequential.submit(functions) for functions in batch]
        batched.submit(batch[0])                         # pre-warm one key
        results = batched.submit_many(batch)
        assert len(results) == len(batch)
        for result, reference in zip(results, expected):
            assert_pair_identical(result, reference)
    finally:
        sequential.close()
        batched.close()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.tuples(coarse, coarse), min_size=1, max_size=20),
    st.lists(
        st.lists(st.tuples(positive, positive), min_size=1, max_size=6),
        min_size=2, max_size=4,
    ),
)
def test_vectorized_path_agrees_with_tree_path_on_tie_heavy_grids(
        points, raw_workloads):
    """The linear batch scorer and the tree matchers emit identical
    triples — bitwise-equal scores — on grids dense with exact ties."""
    objects = Dataset([list(point) for point in points])
    workloads = [
        [LinearPreference.normalized(fid, list(weights))
         for fid, weights in enumerate(raw)]
        for raw in raw_workloads
    ]
    prepared = repro.plan(algorithm="sb", backend="memory").prepare(objects)
    try:
        vectorized = prepared.run_vectorized_batch(workloads)
        for result, functions in zip(vectorized, workloads):
            tree = prepared.run(functions)
            assert_pair_identical(result, tree)
            assert result.algorithm == "batched-sb"
    finally:
        prepared.close()


def test_submit_many_partitions_hits_duplicates_and_misses():
    objects = repro.generate_independent(n=150, dims=3, seed=70)
    a = generate_preferences(5, 3, seed=71)
    b = generate_preferences(5, 3, seed=72)
    c = generate_preferences(5, 3, seed=73)
    with repro.MatchingService(objects, algorithm="sb",
                               backend="memory") as service:
        warmed = service.submit(a)                     # a is now cached
        results = service.submit_many([a, b, c, b, list(b)])
        assert results[0] is warmed                    # cache hit
        assert results[1] is results[3] is results[4]  # fanned-out dups
        snap = service.snapshot()
        assert snap.cache_hits == 1
        assert snap.duplicate_hits == 2
        assert snap.misses == 3                        # warm-up a, b, c
        assert snap.vectorized_requests == 2           # b and c, once each
        assert snap.fallback_requests == 1             # the warm-up a
        assert snap.vectorized_requests + snap.fallback_requests \
            == snap.misses
        assert snap.cache_hits + snap.duplicate_hits + snap.misses \
            == snap.requests
        assert snap.requests == 6
        assert snap.batches == 2
        assert snap.latency_p95_ms >= snap.latency_p50_ms >= 0.0
        # Batched results enter the shared cache: submit() now hits.
        assert service.submit(c) is results[2]


def test_submit_many_respects_use_cache_and_priority():
    objects = repro.generate_independent(n=100, dims=2, seed=74)
    prefs = generate_preferences(4, 2, seed=75)
    with repro.MatchingService(objects, algorithm="sb",
                               backend="memory") as service:
        first = service.submit(prefs)
        fresh = service.submit_many(
            [MatchingRequest(prefs, use_cache=False, priority=5)]
        )[0]
        assert fresh is not first                      # forced recompute
        assert_pair_identical(fresh, first)
        assert service.submit(prefs) is fresh          # cache refreshed


def test_capacitated_plans_fall_back_to_the_per_request_path():
    objects = repro.generate_independent(n=60, dims=2, seed=76)
    capacities = {objects.ids[0]: 3}
    workloads = [generate_preferences(6, 2, seed=s) for s in (77, 78, 79)]
    with repro.MatchingService(objects, algorithm="sb", backend="memory",
                               capacities=capacities,
                               deletion_mode="filter") as service:
        results = service.submit_many(workloads)
        assert service.snapshot().vectorized_requests == 0
        assert service.snapshot().fallback_requests == len(workloads)
        for result, functions in zip(results, workloads):
            cold = repro.match(objects, functions, backend="memory",
                               capacities=capacities)
            assert result.as_set() == cold.as_set()
            assert result.is_capacitated


def test_vectorized_path_rejects_what_the_tree_path_rejects():
    objects = repro.generate_independent(n=30, dims=2, seed=80)
    prepared = repro.plan(algorithm="sb", backend="memory").prepare(objects)
    try:
        duplicate_fids = [LinearPreference(1, (0.5, 0.5)),
                          LinearPreference(1, (0.25, 0.75))]
        with pytest.raises(MatchingError):
            prepared.run_vectorized_batch([duplicate_fids])
        with pytest.raises(repro.ReproError):
            prepared.run_vectorized_batch(
                [[LinearPreference(0, (0.2, 0.3, 0.5))]]   # wrong dims
            )
    finally:
        prepared.close()


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_reject_policy_raises_service_overloaded():
    objects = repro.generate_independent(n=800, dims=3, seed=81)
    workloads = [generate_preferences(8, 3, seed=s) for s in range(12)]
    service = repro.MatchingService(
        objects, algorithm="sb", backend="memory",
        max_inflight=1, admission="reject", deletion_mode="filter",
    )
    rejected = []
    served = []

    def worker(functions):
        try:
            served.append(service.submit(functions))
        except ServiceOverloadedError:
            rejected.append(functions)

    try:
        threads = [threading.Thread(target=worker, args=(functions,))
                   for functions in workloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert served                         # someone got through
        assert len(served) + len(rejected) == len(workloads)
        assert service.snapshot().rejected == len(rejected)
    finally:
        service.close()


def test_block_policy_timeout_raises_and_counts():
    objects = repro.generate_independent(n=100, dims=2, seed=82)
    prefs = generate_preferences(3, 2, seed=83)
    service = repro.MatchingService(
        objects, algorithm="sb", backend="memory",
        max_inflight=1, admission="block",
    )
    try:
        release = threading.Event()
        entered = threading.Event()

        def hog():
            with service._state_cv:
                service._inflight += 1        # simulate a stuck batch
            entered.set()
            release.wait()
            service._release(1)

        hogger = threading.Thread(target=hog)
        hogger.start()
        entered.wait()
        with pytest.raises(ServiceOverloadedError):
            service.submit(MatchingRequest(prefs, timeout=0.05))
        release.set()
        hogger.join()
        assert service.submit(prefs).as_set() == repro.match(
            objects, prefs, backend="memory").as_set()
    finally:
        service.close()


def test_oversized_batch_is_admitted_when_idle():
    objects = repro.generate_independent(n=80, dims=2, seed=84)
    workloads = [generate_preferences(3, 2, seed=s) for s in range(5)]
    with repro.MatchingService(objects, algorithm="sb", backend="memory",
                               max_inflight=2) as service:
        results = service.submit_many(workloads)   # 5 > max_inflight
        assert len(results) == 5


def test_admission_knobs_validate():
    with pytest.raises(MatchingError):
        repro.MatchingConfig(max_inflight=0)
    with pytest.raises(MatchingError):
        repro.MatchingConfig(admission="drop")


# ----------------------------------------------------------------------
# Thread safety: the result cache and concurrent submission
# ----------------------------------------------------------------------
def test_result_cache_survives_multithreaded_stress():
    """get/put/clear from many threads: no lost updates, no corruption,
    and the bookkeeping invariant hits+misses == gets holds exactly."""
    cache = ResultCache(maxsize=16)
    gets_per_worker = 400
    workers = 8
    errors = []

    def worker(worker_id):
        try:
            for i in range(gets_per_worker):
                key = (worker_id * 31 + i) % 48
                value = cache.get(key)
                if value is not None and value != key * 2:
                    errors.append((key, value))
                cache.put(key, key * 2)
                if i % 97 == 0:
                    cache.clear()
                cache.keys()
                len(cache)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(w,))
               for w in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    info = cache.info()
    assert info["hits"] + info["misses"] == workers * gets_per_worker
    assert len(cache) <= 16


def test_concurrent_submit_many_is_pair_identical():
    objects = repro.generate_independent(n=300, dims=3, seed=85)
    workloads = [generate_preferences(6, 3, seed=s) for s in range(12)]
    expected = {
        index: repro.match(objects, functions, backend="memory")
        for index, functions in enumerate(workloads)
    }
    service = repro.MatchingService(objects, algorithm="sb",
                                    backend="memory",
                                    deletion_mode="filter")
    outcomes = {}

    def worker(offset):
        batch = workloads[offset:offset + 4]
        for index, result in enumerate(service.submit_many(batch)):
            outcomes[offset + index] = result

    try:
        threads = [threading.Thread(target=worker, args=(offset,))
                   for offset in range(0, 12, 4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 12
        for index, result in outcomes.items():
            assert result.as_set() == expected[index].as_set()
    finally:
        service.close()


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_service_close_is_idempotent_and_final():
    objects = repro.generate_independent(n=60, dims=2, seed=86)
    prefs = generate_preferences(3, 2, seed=87)
    service = repro.MatchingService(objects, algorithm="sb",
                                    backend="memory")
    service.submit_many([prefs, generate_preferences(3, 2, seed=88)])
    service.close()
    service.close()                                    # idempotent
    with pytest.raises(MatchingError):
        service.submit(prefs)
    with pytest.raises(MatchingError):
        service.submit_many([prefs])


def test_service_context_manager_closes():
    objects = repro.generate_independent(n=60, dims=2, seed=89)
    with repro.MatchingService(objects, algorithm="sb",
                               backend="memory") as service:
        service.submit(generate_preferences(3, 2, seed=90))
    with pytest.raises(MatchingError):
        service.submit(generate_preferences(3, 2, seed=90))


def test_matching_request_coercion_and_validation():
    prefs = generate_preferences(2, 2, seed=91)
    request = MatchingRequest.of(prefs)
    assert request.functions == tuple(prefs)
    assert MatchingRequest.of(request) is request
    assert len(request) == 2
    with pytest.raises(MatchingError):
        MatchingRequest(prefs, timeout=0.0)
    with pytest.raises(MatchingError):
        MatchingRequest(prefs, priority="high")
    tagged = MatchingRequest(prefs, tags=["tenant", 7])
    assert tagged.tags == ("tenant", "7")
