"""Cross-shard merge edge cases and the RepairEngine seeding hooks.

Every edge case asserts full equality (function, object, score) with the
single-process ``repro.match()`` on the identical workload — the
subsystem's core contract.
"""

import numpy as np
import pytest

import repro
from repro import MatchingConfig, MatchingEngine
from repro.core import greedy_reference_matching
from repro.data import Dataset, generate_clustered, generate_independent
from repro.dynamic import RepairEngine
from repro.errors import MatchingError
from repro.parallel import merge_shard_pairs
from repro.prefs import generate_preferences


def assignments(result):
    return sorted(
        (pair.function_id, pair.object_id, pair.score)
        for pair in result.pairs
    )


def assert_sharded_equals_single(objects, functions, *, shards,
                                 backend="memory", executor="serial",
                                 **options):
    single = repro.match(objects, functions, backend=backend, **options)
    sharded = repro.match(objects, functions, backend=backend,
                          shards=shards, executor=executor, **options)
    assert assignments(sharded) == assignments(single)
    return single, sharded


# ----------------------------------------------------------------------
# merge_shard_pairs unit behaviour
# ----------------------------------------------------------------------
def test_merge_keeps_best_partner_per_function():
    merged, displaced = merge_shard_pairs([
        [(0, 10, 0.5), (1, 11, 0.4)],          # shard 0
        [(0, 20, 0.9), (1, 21, 0.2)],          # shard 1
    ])
    assert merged == [(0, 20, 0.9), (1, 11, 0.4)]
    assert displaced == [10, 21]


def test_merge_breaks_score_ties_toward_lower_object_id():
    merged, displaced = merge_shard_pairs([
        [(0, 7, 0.5)],
        [(0, 3, 0.5)],
    ])
    assert merged == [(0, 3, 0.5)]
    assert displaced == [7]


def test_merge_of_nothing():
    assert merge_shard_pairs([]) == ([], [])
    assert merge_shard_pairs([[], []]) == ([], [])


# ----------------------------------------------------------------------
# Shard-count edge cases (each vs the single-process matching)
# ----------------------------------------------------------------------
def test_empty_shards_are_harmless():
    # 5 objects over 8 shards: at least three shards are empty.
    objects = generate_independent(5, 3, seed=80)
    functions = generate_preferences(4, 3, seed=81)
    _, sharded = assert_sharded_equals_single(
        objects, functions, shards=8,
    )
    assert len(sharded.pairs) == 4


def test_all_objects_in_one_shard():
    # A tight cluster collapses the Hilbert ranges to a sliver; with
    # shards=1 the whole set runs through the degenerate delegation.
    objects = generate_clustered(120, 3, seed=82)
    functions = generate_preferences(10, 3, seed=83)
    assert_sharded_equals_single(objects, functions, shards=1)
    assert_sharded_equals_single(objects, functions, shards=4)


def test_more_shards_than_objects():
    objects = generate_independent(6, 3, seed=84)
    functions = generate_preferences(6, 3, seed=85)
    assert_sharded_equals_single(objects, functions, shards=17)


def test_more_functions_than_objects():
    objects = generate_independent(9, 3, seed=86)
    functions = generate_preferences(25, 3, seed=87)
    single, sharded = assert_sharded_equals_single(
        objects, functions, shards=3,
    )
    assert len(sharded.pairs) == 9
    assert sorted(sharded.unmatched_functions) == sorted(
        single.unmatched_functions
    )


def test_duplicate_points_across_shards():
    # Identical points carry distinct ids; the canonical lowest-id rule
    # must survive the shard boundary.
    vectors = np.tile(
        np.linspace(0.1, 0.9, 5).reshape(5, 1), (4, 3)
    )
    objects = Dataset(vectors)
    functions = generate_preferences(8, 3, seed=88)
    assert_sharded_equals_single(objects, functions, shards=4)


@pytest.mark.parametrize("backend", ["disk", "memory"])
def test_capacitated_functions_spanning_shards(backend):
    objects = generate_independent(40, 3, seed=89)
    functions = generate_preferences(30, 3, seed=90)
    capacities = {object_id: object_id % 4 for object_id, _ in objects.items()}
    single = repro.match(objects, functions, backend=backend,
                         capacities=capacities)
    sharded = repro.match(objects, functions, backend=backend,
                          capacities=capacities, shards=5,
                          executor="serial")
    assert assignments(sharded) == assignments(single)
    assert sharded.is_capacitated
    for object_id, capacity in capacities.items():
        assert len(sharded.assignments_of(object_id)) <= capacity


@pytest.mark.parametrize("shards", [2, 3, 7])
def test_every_algorithm_agrees_when_sharded(shards):
    objects = generate_independent(80, 3, seed=91)
    functions = generate_preferences(14, 3, seed=92)
    reference = assignments(repro.match(objects, functions,
                                        backend="memory"))
    for algorithm in ("sb", "bf", "chain", "gs"):
        sharded = repro.match(
            objects, functions, backend="memory", algorithm=algorithm,
            shards=shards, executor="serial",
        )
        assert assignments(sharded) == reference, algorithm
        assert sharded.algorithm == f"sharded-{algorithm}"


# ----------------------------------------------------------------------
# RepairEngine hooks (the machinery the merge rides on)
# ----------------------------------------------------------------------
def _repair_engine(objects, functions, config=None):
    config = config or MatchingConfig(backend="memory",
                                      deletion_mode="filter")
    engine = MatchingEngine(config)
    problem = engine.build_problem(objects, functions)
    return RepairEngine(problem, config)


def test_seed_matching_then_release_restores_canonical():
    objects = generate_independent(30, 3, seed=93)
    functions = generate_preferences(6, 3, seed=94)
    reference = greedy_reference_matching(objects, functions)
    engine = _repair_engine(objects, functions)

    # A canonical *prefix* is a stable sub-matching of the full
    # instance (no later pair can block an earlier greedy pick), which
    # is exactly the contract seed_matching asks of its caller.
    seeded = [
        (pair.function_id, pair.object_id, pair.score)
        for pair in reference.pairs[:3]
    ]
    engine.seed_matching(seeded)
    assert len(engine.pairs()) == len(seeded)

    # Releasing the withheld canonical partners one chain at a time
    # must rebuild the full canonical matching: each released object is
    # won by a still-free function (possibly displacing along a chain).
    for pair in reference.pairs[3:]:
        engine.release_object(pair.object_id)
    got = sorted((p.function_id, p.object_id, p.score)
                 for p in engine.pairs())
    want = sorted((p.function_id, p.object_id, p.score)
                  for p in reference.pairs)
    assert got == want


def test_seed_matching_validates_its_input():
    objects = generate_independent(10, 3, seed=95)
    functions = generate_preferences(3, 3, seed=96)
    engine = _repair_engine(objects, functions)
    with pytest.raises(MatchingError, match="unknown function"):
        engine.seed_matching([(999, 0, 0.5)])
    with pytest.raises(MatchingError, match="unknown object"):
        engine.seed_matching([(0, 999, 0.5)])
    with pytest.raises(MatchingError, match="seeded twice"):
        engine.seed_matching([(0, 1, 0.5), (0, 2, 0.4)])
    with pytest.raises(MatchingError, match="seeded twice"):
        engine.seed_matching([(0, 1, 0.5), (1, 1, 0.4)])


def test_release_object_validates_its_input():
    objects = generate_independent(10, 3, seed=97)
    functions = generate_preferences(3, 3, seed=98)
    engine = _repair_engine(objects, functions)
    engine.full_rematch()
    with pytest.raises(MatchingError, match="unknown object"):
        engine.release_object(999)
    matched = next(iter(engine.matched_object))
    with pytest.raises(MatchingError, match="currently matched"):
        engine.release_object(matched)
