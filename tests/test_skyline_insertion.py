"""The insertion maintenance hook and excluded-aware BBS.

``update_after_insertion`` is the symmetric counterpart of the paper's
``UpdateSkyline``: it must keep a :class:`SkylineState` exact (members
*and* plist coverage) when objects join the pool, interleaved with
removals. ``excluded`` support on BBS/maintenance underpins the dynamic
session's logical deletes.
"""

import random


from repro.data import generate_anticorrelated, generate_independent
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree
from repro.skyline import (
    canonical_skyline_naive,
    compute_skyline,
    update_after_insertion,
    update_after_removal,
)
from repro.storage.stats import SearchStats


def oracle_ids(points):
    return [
        oid for oid, _ in canonical_skyline_naive(sorted(points.items()))
    ]


def test_insertions_match_oracle_incrementally():
    dataset = generate_independent(400, 3, seed=21)
    items = list(dataset.items())
    seed_items, streamed = items[:250], items[250:]
    tree = RTree.bulk_load(DiskNodeStore(3), 3, seed_items)
    state = compute_skyline(tree)
    pool = dict(seed_items)
    for object_id, point in streamed:
        pool[object_id] = point
        became_member = update_after_insertion(state, object_id, point)
        assert became_member == (object_id in state)
        assert sorted(state.ids()) == oracle_ids(pool)


def test_interleaved_insertions_and_removals_match_oracle():
    dataset = generate_anticorrelated(300, 3, seed=22)
    items = list(dataset.items())
    tree = RTree.bulk_load(DiskNodeStore(3), 3, items[:200])
    state = compute_skyline(tree)
    pool = dict(items[:200])
    arrivals = list(items[200:])
    rng = random.Random(23)
    for _ in range(120):
        if arrivals and (rng.random() < 0.5 or len(state) < 2):
            object_id, point = arrivals.pop()
            pool[object_id] = point
            update_after_insertion(state, object_id, point)
        else:
            victim = rng.choice(state.ids())
            del pool[victim]
            # Removal must resurface entries parked under the victim —
            # including ones parked there by the insertion hook.
            update_after_removal(tree, state, state.remove(victim))
        assert sorted(state.ids()) == oracle_ids(pool)


def test_insertion_duplicate_points_follow_id_rule():
    tree = RTree(MemoryNodeStore(8), dims=2)
    tree.insert(10, (0.6, 0.6))
    state = compute_skyline(tree)
    assert state.ids() == [10]
    # A duplicate with a higher id parks under the member...
    assert update_after_insertion(state, 20, (0.6, 0.6)) is False
    assert state.ids() == [10]
    # ...a duplicate with a lower id takes over the membership.
    assert update_after_insertion(state, 5, (0.6, 0.6)) is True
    assert sorted(state.ids()) == [5]
    # The demoted owner's coverage moved along: removing the new member
    # resurfaces both parked duplicates, lowest id first.
    update_after_removal(tree, state, state.remove(5))
    assert state.ids() == [10]


def test_insertion_hook_counts_stats():
    tree = RTree(MemoryNodeStore(8), dims=2)
    tree.insert(0, (0.9, 0.1))
    state = compute_skyline(tree)
    stats = SearchStats()
    update_after_insertion(state, 1, (0.1, 0.9), stats=stats)
    assert stats.dominance_checks > 0


def test_compute_skyline_excluded_equals_removal():
    dataset = generate_anticorrelated(300, 3, seed=24)
    tree = RTree.bulk_load(DiskNodeStore(3), 3, dataset.items())
    pool = dict(dataset.items())
    excluded = set(list(pool)[::7])
    state = compute_skyline(tree, excluded=excluded)
    for object_id in excluded:
        del pool[object_id]
    assert sorted(state.ids()) == oracle_ids(pool)


def test_update_after_removal_drops_excluded_orphans():
    dataset = generate_independent(200, 2, seed=25)
    tree = RTree.bulk_load(DiskNodeStore(2), 2, dataset.items())
    state = compute_skyline(tree)
    pool = dict(dataset.items())
    rng = random.Random(26)
    excluded = set()
    for _ in range(30):
        victim = rng.choice(state.ids())
        del pool[victim]
        excluded.add(victim)
        # Also logically exclude a random *non-member* survivor (e.g. a
        # matched object): it must never surface from any plist.
        bystanders = [
            oid for oid in pool if oid not in excluded and oid not in state
        ]
        if bystanders:
            excluded.add(rng.choice(bystanders))
        update_after_removal(tree, state, state.remove(victim),
                             excluded=excluded)
        expected = {oid: p for oid, p in pool.items() if oid not in excluded}
        assert sorted(state.ids()) == oracle_ids(expected)
