"""Gale-Shapley deferred acceptance and the greedy reference."""

from repro.core import gale_shapley, greedy_reference_matching
from repro.data import Dataset
from repro.prefs import LinearPreference


def test_classic_textbook_instance():
    # A classic 3x3 instance with distinct stable matchings for the two
    # proposal directions; proposer-optimality must hold.
    men = {
        0: [0, 1, 2],
        1: [1, 0, 2],
        2: [0, 1, 2],
    }
    women = {
        0: [1, 0, 2],
        1: [0, 1, 2],
        2: [0, 1, 2],
    }
    result = gale_shapley(men, women)
    # Man 0 proposes w0; man 1 proposes w1; both rejected later? Verify
    # no blocking pair under the explicit lists instead of a hard-coded
    # answer:
    assert sorted(result) == [0, 1, 2]
    assert sorted(result.values()) == [0, 1, 2]
    _assert_no_blocking(men, women, result)


def _assert_no_blocking(proposer_prefs, acceptor_prefs, matching):
    acceptor_of = matching
    proposer_of = {a: p for p, a in matching.items()}
    for p, prefs in proposer_prefs.items():
        current_rank = (
            prefs.index(acceptor_of[p]) if p in acceptor_of else len(prefs)
        )
        for better in prefs[:current_rank]:
            # p prefers `better`; does `better` prefer p back?
            a_prefs = acceptor_prefs[better]
            current_partner = proposer_of.get(better)
            if current_partner is None:
                raise AssertionError(f"blocking pair ({p}, {better})")
            if a_prefs.index(p) < a_prefs.index(current_partner):
                raise AssertionError(f"blocking pair ({p}, {better})")


def test_unbalanced_sides():
    proposers = {0: [0], 1: [0]}
    acceptors = {0: [1, 0]}
    result = gale_shapley(proposers, acceptors)
    assert result == {1: 0}  # acceptor 0 prefers proposer 1


def test_unranked_partners_never_matched():
    proposers = {0: [1]}       # proposer 0 only accepts acceptor 1
    acceptors = {0: [0]}       # acceptor 0 exists but is not ranked by 0
    assert gale_shapley(proposers, acceptors) == {}


def test_greedy_reference_tie_breaks():
    # Two functions with identical weights and two duplicate objects:
    # ties resolve by (fid, oid).
    objects = Dataset([[0.5, 0.5], [0.5, 0.5]])
    functions = [
        LinearPreference(0, (0.5, 0.5)),
        LinearPreference(1, (0.5, 0.5)),
    ]
    matching = greedy_reference_matching(objects, functions)
    assert matching.as_dict() == {0: 0, 1: 1}


def test_greedy_reference_rank_round_metadata():
    objects = Dataset([[0.9, 0.9], [0.1, 0.1]])
    functions = [LinearPreference(0, (0.5, 0.5)), LinearPreference(1, (0.5, 0.5))]
    matching = greedy_reference_matching(objects, functions)
    assert [p.rank for p in matching.pairs] == [0, 1]
    assert matching.pairs[0].score > matching.pairs[1].score
