"""Public tree validation API."""

import pytest

from repro.data import generate_independent
from repro.geometry import MBR
from repro.rtree import (
    Entry,
    MemoryNodeStore,
    RTree,
    RTreeNode,
    TreeInvariantError,
    validate_tree,
)


def healthy_tree(n=300, fanout=6):
    dataset = generate_independent(n, 2, seed=330)
    tree = RTree(MemoryNodeStore(fanout), dims=2)
    for object_id, point in dataset.items():
        tree.insert(object_id, point)
    return tree


def test_healthy_tree_validates():
    tree = healthy_tree()
    assert validate_tree(tree) == 300


def test_empty_tree_validates():
    tree = RTree(MemoryNodeStore(4), dims=2)
    assert validate_tree(tree) == 0


def test_detects_loose_parent_mbr():
    tree = healthy_tree()
    root = tree.read_root()
    assert not root.is_leaf
    # Corrupt: widen a branch entry's box beyond the tight union.
    entry = root.entries[0]
    root.entries[0] = Entry(
        MBR((0.0, 0.0), (1.0, 1.0)), entry.child
    ) if entry.mbr != MBR((0.0, 0.0), (1.0, 1.0)) else Entry(
        MBR((0.0, 0.0), (0.5, 0.5)), entry.child
    )
    tree.store.write(root)
    with pytest.raises(TreeInvariantError):
        validate_tree(tree)


def test_detects_wrong_count():
    tree = healthy_tree()
    tree._count += 1
    with pytest.raises(TreeInvariantError, match="reports"):
        validate_tree(tree)


def test_detects_duplicate_object_ids():
    tree = RTree(MemoryNodeStore(4), dims=2)
    tree.insert(1, (0.2, 0.2))
    # Bypass the API to force a duplicate id into the root leaf.
    root = tree.read_root()
    root.entries.append(Entry.for_object(1, (0.8, 0.8)))
    tree.store.write(root)
    tree._count += 1
    with pytest.raises(TreeInvariantError, match="duplicate"):
        validate_tree(tree)


def test_detects_overfull_node():
    tree = RTree(MemoryNodeStore(4), dims=2)
    root = tree.read_root()
    for i in range(6):  # capacity is 4
        root.entries.append(Entry.for_object(i, (i / 10, i / 10)))
    tree.store.write(root)
    tree._count = 6
    with pytest.raises(TreeInvariantError, match="capacity"):
        validate_tree(tree)


def test_detects_level_skew():
    tree = healthy_tree()
    root = tree.read_root()
    child_id = root.entries[0].child
    child = tree.read_node(child_id)
    if child.is_leaf:
        pytest.skip("tree too shallow for this corruption")
    child.level += 1
    tree.store.write(child)
    with pytest.raises(TreeInvariantError):
        validate_tree(tree)


def test_detects_nonpoint_leaf_entry():
    tree = RTree(MemoryNodeStore(4), dims=2)
    root = tree.read_root()
    root.entries.append(Entry(MBR((0.1, 0.1), (0.2, 0.2)), 5))
    tree.store.write(root)
    tree._count = 1
    with pytest.raises(TreeInvariantError, match="non-point"):
        validate_tree(tree)
