"""The benchmark matrix: configs, execution, artifacts, trajectory gate.

Covers the ``repro.bench.matrix`` subsystem end to end on a tiny
two-cell matrix: config validation rejects malformed inputs with
:class:`~repro.errors.MatrixConfigError`, every executed cell is
pair-identical to the canonical matcher, artifacts schema-validate (and
tampered payloads are rejected), the trajectory file round-trips
byte-for-byte, a doctored committed trajectory is caught by ``--check``,
and the CLI returns the documented exit codes (0 ok / 1 regression or
gate failure / 2 config error).
"""

import copy
import dataclasses
import io
import json

import pytest

from repro.bench.matrix import (
    available_configs,
    build_trajectory,
    canonical_dumps,
    check_trajectory,
    config_digest,
    config_from_dict,
    expand_cells,
    load_named_config,
    load_trajectory,
    run_matrix,
    write_artifacts,
    write_trajectory,
)
from repro.bench.matrix.cli import main
from repro.bench.matrix.validate import (
    CELL_SCHEMA,
    MATRIX_SCHEMA,
    validate,
)
from repro.errors import (
    ArtifactValidationError,
    MatrixConfigError,
    TrajectoryError,
)

TINY = {
    "name": "tiny",
    "description": "two-cell test matrix",
    "reference": "sb",
    "grids": [
        {
            "name": "static",
            "kind": "match",
            "workload": {
                "generator": "independent",
                "num_objects": 300,
                "num_functions": 25,
                "dims": 3,
                "seed": 7,
                "min_objects": 200,
                "min_functions": 20,
            },
            "axes": {
                "algorithm": ["SB", "BruteForce"],
                "backend": ["memory"],
            },
        }
    ],
    "gates": [
        {"name": "pairs-exist", "kind": "min", "metric": "pairs",
         "value": 1.0},
    ],
    "checks": {},
}


def tiny_dict(**overrides):
    payload = copy.deepcopy(TINY)
    payload.update(overrides)
    return payload


@pytest.fixture(scope="module")
def tiny_config():
    return config_from_dict(TINY)


@pytest.fixture(scope="module")
def tiny_result(tiny_config):
    return run_matrix(tiny_config, scale=1.0)


@pytest.fixture(scope="module")
def tiny_cells(tiny_result):
    return [tiny_result.cell_payload(cell) for cell in tiny_result.cells]


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


def _grid(**overrides):
    grid = copy.deepcopy(TINY["grids"][0])
    grid.update(overrides)
    return grid


@pytest.mark.parametrize("breakage, grids", [
    ("unknown axis", [_grid(axes={"nonsense": [1]})]),
    ("unknown algorithm", [_grid(axes={"algorithm": ["NoSuchPanel"],
                                       "backend": ["memory"]})]),
    ("unknown backend", [_grid(axes={"algorithm": ["SB"],
                                     "backend": ["tape"]})]),
    ("remote executor", [_grid(axes={"algorithm": ["SB"],
                                     "backend": ["memory"],
                                     "executor": ["remote"]})]),
    ("unknown kind", [_grid(kind="nonsense")]),
    ("duplicate cells", [_grid(axes={"algorithm": ["SB", "SB"],
                                     "backend": ["memory"]})]),
    ("duplicate grid names", [_grid(), _grid()]),
])
def test_config_rejects_malformed_grids(breakage, grids):
    with pytest.raises(MatrixConfigError):
        config_from_dict(tiny_dict(grids=grids))


def test_config_rejects_zillow_dims_mismatch():
    grid = _grid()
    grid["workload"]["generator"] = "zillow"
    grid["workload"]["dims"] = 4  # generate_zillow is fixed 5-dim
    with pytest.raises(MatrixConfigError):
        config_from_dict(tiny_dict(grids=[grid]))


def test_config_rejects_gate_on_unknown_axis():
    gate = {"name": "bad", "kind": "min", "metric": "pairs", "value": 1.0,
            "where": {"nonsense": 1}}
    with pytest.raises(MatrixConfigError):
        config_from_dict(tiny_dict(gates=[gate]))


def test_config_rejects_unknown_gate_kind():
    gate = {"name": "bad", "kind": "percentile", "metric": "pairs",
            "value": 1.0}
    with pytest.raises(MatrixConfigError):
        config_from_dict(tiny_dict(gates=[gate]))


def test_config_digest_is_stable_and_sensitive(tiny_config):
    again = config_from_dict(TINY)
    assert config_digest(tiny_config) == config_digest(again)
    changed = config_from_dict(tiny_dict(description="different"))
    assert config_digest(changed) != config_digest(tiny_config)


def test_every_shipped_config_loads_and_expands():
    names = available_configs()
    for expected in ("smoke", "figure2", "figure3", "ablations", "dynamic",
                     "serving", "throughput", "parallel", "parallel-speedup",
                     "replay"):
        assert expected in names
    for name in names:
        config = load_named_config(name)
        assert config.name == name
        assert expand_cells(config)


# ---------------------------------------------------------------------------
# Execution: pair-identity and artifact validation
# ---------------------------------------------------------------------------


def test_tiny_matrix_is_pair_identical_and_gated(tiny_result):
    assert len(tiny_result.cells) == 2
    assert tiny_result.identity_ok
    assert tiny_result.gates_ok
    assert tiny_result.ok
    for cell in tiny_result.cells:
        assert cell.metrics["identity_ok"] == 1.0
        assert cell.metrics["pairs"] == 25.0


def test_matrix_payload_schema_validates(tiny_result):
    payload = tiny_result.as_dict()
    validate(payload, MATRIX_SCHEMA, "matrix")
    assert payload["config"] == "tiny"
    assert payload["ok"] is True


def test_cell_payload_schema_validates(tiny_result, tiny_cells):
    for payload in tiny_cells:
        validate(payload, CELL_SCHEMA, payload["cell_id"])


def test_tampered_cell_payload_is_rejected(tiny_cells):
    doctored = copy.deepcopy(tiny_cells[0])
    doctored["metrics"]["pairs"] = "twenty-five"
    with pytest.raises(ArtifactValidationError):
        validate(doctored, CELL_SCHEMA, "doctored")


def test_write_artifacts_emits_validated_files(tiny_result, tmp_path):
    written = write_artifacts(tiny_result, tmp_path)
    assert (tmp_path / "matrix.json").is_file()
    assert (tmp_path / "matrix.md").is_file()
    assert (tmp_path / "matrix.csv").is_file()
    cell_files = sorted((tmp_path / "cells").glob("*.json"))
    assert len(cell_files) == 2
    assert set(written) >= {tmp_path / "matrix.json", *cell_files}
    for path in cell_files:
        validate(json.loads(path.read_text()), CELL_SCHEMA, str(path))
    # matrix.json is written in canonical form: loading and re-dumping
    # reproduces the file bytes exactly.
    raw = (tmp_path / "matrix.json").read_text()
    assert canonical_dumps(json.loads(raw)) == raw


# ---------------------------------------------------------------------------
# Trajectory: round-trip, gating, doctored regression
# ---------------------------------------------------------------------------


def test_trajectory_round_trip_is_byte_stable(tiny_config, tiny_cells,
                                              tmp_path):
    trajectory = build_trajectory(tiny_config, 1.0, "test", tiny_cells)
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    write_trajectory(trajectory, first)
    write_trajectory(load_trajectory(first), second)
    assert first.read_bytes() == second.read_bytes()


def test_check_passes_against_own_run(tiny_config, tiny_cells, tmp_path):
    trajectory = build_trajectory(tiny_config, 1.0, "test", tiny_cells)
    report = check_trajectory(trajectory, tiny_config, 1.0, tiny_cells)
    assert report.ok
    assert report.compared > 0
    assert report.format().endswith("OK")


def test_check_detects_doctored_regression(tiny_config, tiny_cells,
                                           tmp_path):
    path = tmp_path / "trajectory.json"
    write_trajectory(
        build_trajectory(tiny_config, 1.0, "test", tiny_cells), path
    )
    payload = json.loads(path.read_text())
    payload["cells"][0]["metrics"]["pairs"] += 1  # exact-policy metric
    path.write_text(canonical_dumps(payload))
    report = check_trajectory(load_trajectory(path), tiny_config, 1.0,
                              tiny_cells, path=path)
    assert not report.ok
    assert "REGRESSION" in report.format()
    assert "pairs" in report.format()


def test_check_rejects_config_and_scale_mismatch(tiny_config, tiny_cells):
    trajectory = build_trajectory(tiny_config, 1.0, "test", tiny_cells)
    with pytest.raises(TrajectoryError):
        check_trajectory(trajectory, tiny_config, 0.5, tiny_cells)
    doctored = dataclasses.replace(trajectory, config_digest="0" * 64)
    with pytest.raises(TrajectoryError):
        check_trajectory(doctored, tiny_config, 1.0, tiny_cells)


def test_load_trajectory_rejects_bad_files(tmp_path):
    with pytest.raises(TrajectoryError):
        load_trajectory(tmp_path / "missing.json")
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    with pytest.raises(TrajectoryError):
        load_trajectory(garbled)
    unversioned = tmp_path / "unversioned.json"
    unversioned.write_text(canonical_dumps({"pr": "10"}))
    with pytest.raises(TrajectoryError):
        load_trajectory(unversioned)


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------


def _write_config(tmp_path, payload, name="tiny.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def test_cli_run_and_check_round_trip(tmp_path):
    config_file = _write_config(tmp_path, TINY)
    trajectory = tmp_path / "BENCH_tiny.json"
    out = io.StringIO()
    status = main([
        "run", "--config-file", str(config_file),
        "--out", str(tmp_path / "artifacts"),
        "--write-trajectory", str(trajectory),
        "--check", str(trajectory),
        "--scale", "1.0", "--quiet",
    ], out=out)
    assert status == 0
    assert trajectory.is_file()
    assert "verdict: OK" in out.getvalue()

    # Doctor the committed trajectory: --check must now exit 1.
    payload = json.loads(trajectory.read_text())
    payload["cells"][0]["metrics"]["pairs"] += 1
    trajectory.write_text(canonical_dumps(payload))
    out = io.StringIO()
    status = main([
        "run", "--config-file", str(config_file),
        "--out", str(tmp_path / "artifacts2"),
        "--check", str(trajectory),
        "--scale", "1.0", "--quiet",
    ], out=out)
    assert status == 1
    assert "REGRESSION" in out.getvalue()


def test_cli_config_error_exits_2(tmp_path):
    bad = tiny_dict(grids=[_grid(axes={"nonsense": [1]})])
    config_file = _write_config(tmp_path, bad, name="bad.json")
    status = main([
        "run", "--config-file", str(config_file),
        "--out", str(tmp_path / "artifacts"), "--quiet",
    ], out=io.StringIO())
    assert status == 2


def test_cli_list_names_shipped_configs():
    out = io.StringIO()
    assert main(["list"], out=out) == 0
    listing = out.getvalue()
    for name in ("smoke", "figure2", "ablations", "replay"):
        assert name in listing
