"""Benchmark harness: measurement protocol, sweeps, reports, CLI."""

import pytest

from repro.bench import (
    ALGORITHMS,
    bench_scale,
    figure2_sweep,
    figure3_sweep,
    format_figure,
    format_sweep_table,
    measure_matcher,
    orders_of_magnitude,
    run_point,
)
from repro.core import MatchingProblem, SkylineMatcher
from repro.data import generate_independent
from repro.errors import ReproError
from repro.prefs import generate_preferences


def tiny_workload():
    objects = generate_independent(250, 3, seed=180)
    functions = generate_preferences(12, 3, seed=181)
    return objects, functions


def test_measure_matcher_protocol():
    objects, functions = tiny_workload()
    problem = MatchingProblem.build(objects, functions)
    measurement = measure_matcher(SkylineMatcher(problem))
    assert measurement.algorithm == "skyline"
    assert measurement.pairs == 12
    assert measurement.cpu_seconds > 0
    assert measurement.io_accesses == measurement.page_reads + measurement.page_writes
    assert measurement.rounds >= 1
    as_dict = measurement.as_dict()
    assert as_dict["pairs"] == 12


def test_run_point_runs_each_algorithm_fresh():
    objects, functions = tiny_workload()
    results = run_point(objects, functions,
                        algorithms=("SB", "BruteForce", "Chain"))
    assert set(results) == {"SB", "BruteForce", "Chain"}
    pair_counts = {m.pairs for m in results.values()}
    assert pair_counts == {12}


def test_run_point_unknown_algorithm():
    objects, functions = tiny_workload()
    with pytest.raises(ReproError):
        run_point(objects, functions, algorithms=("SB", "Oracle"))


def test_ablation_algorithms_registered():
    assert {"SB-single", "SB-retraversal", "SB-naive-threshold",
            "Chain-stack", "BruteForce-filter"} <= set(ALGORITHMS)


def test_figure2_sweep_small():
    sweep = figure2_sweep(
        "independent", scale=0.002, dims=(2, 3), algorithms=("SB",),
        seed=7,
    )
    assert [p.x for p in sweep.points] == [2, 3]
    assert sweep.series("SB", "io_accesses")
    assert all(m >= 0 for m in sweep.series("SB", "io_accesses"))
    assert sweep.points[0].params["num_objects"] == 200  # floor applies


def test_figure2_rejects_unknown_variant():
    with pytest.raises(ReproError):
        figure2_sweep("gaussian", scale=0.002)


def test_figure3_sweep_small():
    sweep = figure3_sweep(
        scale=0.002, sizes=(10_000, 50_000), algorithms=("SB",), seed=7
    )
    assert len(sweep.points) == 2
    assert sweep.points[0].params["dims"] == 5
    # Larger |O| never has fewer objects than smaller |O|.
    sizes = [p.params["num_objects"] for p in sweep.points]
    assert sizes[0] <= sizes[1]


def test_format_sweep_table_contains_everything():
    sweep = figure2_sweep(
        "independent", scale=0.002, dims=(2,), algorithms=("SB", "Chain"),
        seed=7,
    )
    text = format_sweep_table(sweep, "io_accesses", title="Fig test")
    assert "Fig test" in text
    assert "SB" in text and "Chain" in text
    assert "D=2" in text
    assert "best/SB" in text  # the advantage-ratio column
    multi = format_figure(sweep, metrics=("io_accesses", "cpu_seconds"),
                          title="panel")
    assert "panel" in multi and "CPU" in multi


def test_orders_of_magnitude():
    assert orders_of_magnitude(1000, 1) == pytest.approx(3.0)
    assert orders_of_magnitude(1, 1000) == pytest.approx(-3.0)
    assert orders_of_magnitude(5, 0) == float("inf")


def test_bench_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert bench_scale(default=0.07) == 0.07
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
    assert bench_scale() == 0.5
    monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
    with pytest.raises(ReproError):
        bench_scale()


def test_cli_single_panel(capsys):
    from repro.bench.cli import main

    code = main(["--figure", "2a", "--scale", "0.002", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig 2(a)" in out
    assert "BruteForce" in out


def test_cli_rejects_unknown_figure():
    from repro.bench.cli import main

    with pytest.raises(SystemExit):
        main(["--figure", "9z"])


def test_cli_algorithms_filter(capsys):
    from repro.bench.cli import main

    code = main(["--figure", "2a", "--scale", "0.002", "--seed", "3",
                 "--algorithms", "SB"])
    assert code == 0
    out = capsys.readouterr().out
    assert "SB" in out
    assert "BruteForce" not in out
    assert "Chain" not in out


def test_cli_rejects_unknown_algorithm():
    from repro.bench.cli import main

    with pytest.raises(SystemExit, match="unknown algorithm"):
        main(["--figure", "2a", "--scale", "0.002",
              "--algorithms", "SB,Oracle"])


def test_cli_memory_backend(capsys):
    from repro.bench.cli import main

    code = main(["--figure", "2a", "--scale", "0.002", "--seed", "3",
                 "--algorithms", "SB", "--backend", "memory"])
    assert code == 0
    out = capsys.readouterr().out
    assert "# storage backend: memory" in out


def test_run_point_memory_backend_agrees_with_disk():
    objects, functions = tiny_workload()
    disk = run_point(objects, functions, algorithms=("SB",))
    memory = run_point(objects, functions, algorithms=("SB",),
                       backend="memory")
    assert memory["SB"].pairs == disk["SB"].pairs
    assert memory["SB"].io_accesses == 0
