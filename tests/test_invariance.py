"""Invariance: the matching must never depend on storage configuration.

The stable matching is a pure function of the objects, the functions and
the tie discipline. Page size, bulk-load fill factor, packing strategy,
buffer capacity and buffer policy change *costs* only. Any leak of
storage layout into results would indicate an arithmetic- or
order-dependency bug, so these tests pin the result across the whole
configuration space.
"""

import pytest

from repro.core import (
    BruteForceMatcher,
    ChainMatcher,
    MatchingProblem,
    SkylineMatcher,
    greedy_reference_matching,
)
from repro.data import generate_anticorrelated, generate_zillow
from repro.prefs import generate_preferences
from repro.rtree import DiskNodeStore, RTree, hilbert_bulk_load
from repro.storage import DiskManager, make_buffer


@pytest.fixture(scope="module")
def workload():
    objects = generate_anticorrelated(700, 3, seed=280)
    functions = generate_preferences(40, 3, seed=281)
    reference = greedy_reference_matching(objects, functions)
    return objects, functions, reference.as_set()


@pytest.mark.parametrize("page_size", [1024, 2048, 4096, 16384])
def test_page_size_does_not_change_the_matching(workload, page_size):
    objects, functions, want = workload
    problem = MatchingProblem.build(objects, functions, page_size=page_size)
    assert SkylineMatcher(problem).run().as_set() == want


@pytest.mark.parametrize("fill", [0.5, 0.7, 1.0])
def test_fill_factor_does_not_change_the_matching(workload, fill):
    objects, functions, want = workload
    problem = MatchingProblem.build(objects, functions, fill=fill)
    assert BruteForceMatcher(problem).run().as_set() == want


@pytest.mark.parametrize("capacity", [1, 4, 64, 4096])
def test_buffer_capacity_does_not_change_the_matching(workload, capacity):
    objects, functions, want = workload
    problem = MatchingProblem.build(
        objects, functions, buffer_capacity=capacity
    )
    assert ChainMatcher(problem).run().as_set() == want


@pytest.mark.parametrize("policy", ["lru", "clock"])
def test_buffer_policy_does_not_change_the_matching(workload, policy):
    objects, functions, want = workload
    disk = DiskManager()
    staging = make_buffer(disk, 256, policy)
    store = DiskNodeStore(objects.dims, disk=disk, buffer=staging)
    tree = RTree.bulk_load(store, objects.dims, objects.items())
    staging.flush()
    store.buffer = make_buffer(disk, 4, policy)
    problem = MatchingProblem(objects, functions, tree, disk, store.buffer)
    assert SkylineMatcher(problem).run().as_set() == want


def test_packing_strategy_does_not_change_the_matching(workload):
    objects, functions, want = workload
    disk = DiskManager()
    staging = make_buffer(disk, 256, "lru")
    store = DiskNodeStore(objects.dims, disk=disk, buffer=staging)
    tree = hilbert_bulk_load(store, objects.dims, objects.items())
    staging.flush()
    problem = MatchingProblem(objects, functions, tree, disk, staging)
    assert SkylineMatcher(problem).run().as_set() == want
    problem_b = problem.rebuild()  # rebuild uses STR
    assert SkylineMatcher(problem_b).run().as_set() == want


def test_incremental_vs_bulk_tree_same_matching(workload):
    objects, functions, want = workload
    disk = DiskManager()
    staging = make_buffer(disk, 512, "lru")
    store = DiskNodeStore(objects.dims, disk=disk, buffer=staging)
    tree = RTree(store, objects.dims)
    for object_id, point in objects.items():
        tree.insert(object_id, point)
    problem = MatchingProblem(objects, functions, tree, disk, staging)
    assert SkylineMatcher(problem).run().as_set() == want


def test_split_strategy_does_not_change_the_matching(workload):
    objects, functions, want = workload
    disk = DiskManager()
    staging = make_buffer(disk, 512, "lru")
    store = DiskNodeStore(objects.dims, disk=disk, buffer=staging)
    tree = RTree(store, objects.dims, split="quadratic")
    for object_id, point in objects.items():
        tree.insert(object_id, point)
    problem = MatchingProblem(objects, functions, tree, disk, staging)
    assert BruteForceMatcher(problem).run().as_set() == want


def test_zillow_same_matching_across_all_matchers_and_layouts():
    objects = generate_zillow(600, seed=282)
    functions = generate_preferences(30, 5, seed=283)
    results = set()
    for matcher_cls in (SkylineMatcher, BruteForceMatcher, ChainMatcher):
        for page_size in (2048, 8192):
            problem = MatchingProblem.build(
                objects, functions, page_size=page_size
            )
            results.add(frozenset(matcher_cls(problem).run().as_set()))
    assert len(results) == 1
