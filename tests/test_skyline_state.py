"""SkylineState: membership, plists, vectorized dominance index."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.rtree import Entry
from repro.skyline import SkylineState


def test_add_and_lookup():
    state = SkylineState(2)
    state.add(5, (0.2, 0.8))
    assert 5 in state
    assert len(state) == 1
    assert state.point(5) == (0.2, 0.8)
    assert state.ids() == [5]


def test_duplicate_add_rejected():
    state = SkylineState(2)
    state.add(1, (0.1, 0.1))
    with pytest.raises(ReproError):
        state.add(1, (0.2, 0.2))


def test_remove_returns_plist():
    state = SkylineState(2)
    state.add(1, (0.9, 0.9))
    item = (Entry.for_object(2, (0.5, 0.5)), 0)
    state.park(1, item)
    plist = state.remove(1)
    assert plist == [item]
    assert 1 not in state
    with pytest.raises(ReproError):
        state.remove(1)


def test_first_dominator_insertion_order():
    state = SkylineState(2)
    state.add(10, (0.8, 0.8))
    state.add(4, (0.9, 0.9))
    # Both dominate; the earliest-admitted member wins ownership.
    assert state.first_dominator((0.5, 0.5)) == 10
    assert state.first_dominator((0.85, 0.85)) == 4
    assert state.first_dominator((0.95, 0.2)) is None


def test_first_dominator_includes_equality():
    state = SkylineState(2)
    state.add(1, (0.5, 0.5))
    assert state.first_dominator((0.5, 0.5)) == 1  # "equal or better"


def test_dominators_lists_all():
    state = SkylineState(2)
    state.add(1, (0.8, 0.8))
    state.add(2, (0.9, 0.6))
    state.add(3, (0.3, 0.9))
    assert state.dominators((0.2, 0.7)) == [1, 3]


def test_ids_and_matrix_stay_aligned_through_churn():
    rng = np.random.default_rng(34)
    state = SkylineState(3)
    alive = {}
    next_id = 0
    for _ in range(500):
        if alive and rng.random() < 0.45:
            victim = int(rng.choice(sorted(alive)))
            state.remove(victim)
            del alive[victim]
        else:
            point = tuple(rng.random(3))
            state.add(next_id, point)
            alive[next_id] = point
            next_id += 1
    ids = state.ids()
    matrix = state.matrix()
    assert len(ids) == len(alive) == matrix.shape[0]
    for row, object_id in enumerate(ids):
        assert tuple(matrix[row]) == alive[object_id]


def test_compaction_preserves_dominance_answers():
    state = SkylineState(2)
    for i in range(200):
        state.add(i, (i / 1000 + 0.4, 0.4))
    for i in range(0, 200, 2):
        state.remove(i)
    # Force growth/compaction paths.
    for i in range(200, 400):
        state.add(i, (0.001 * i, 0.2))
    probe = (0.41, 0.3)
    expected = [
        object_id for object_id in state.ids()
        if all(a >= b for a, b in zip(state.point(object_id), probe))
    ]
    assert state.dominators(probe) == expected


def test_park_appends_in_order():
    state = SkylineState(2)
    state.add(0, (1.0, 1.0))
    items = [(Entry.for_object(i, (0.1, 0.1)), 0) for i in range(3)]
    for item in items:
        state.park(0, item)
    assert state.plist(0) == items
    assert state.plist_sizes() == {0: 3}
