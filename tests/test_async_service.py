"""The asyncio micro-batching front-end: coalescing, identity with the
synchronous path, timeouts, and lifecycle."""

import asyncio

import pytest

import repro
from repro.engine.async_service import AsyncMatchingService
from repro.engine.request import MatchingRequest
from repro.errors import MatchingError
from repro.prefs import generate_preferences


@pytest.fixture(scope="module")
def serving():
    objects = repro.generate_independent(n=250, dims=3, seed=95)
    service = repro.MatchingService(objects, algorithm="sb",
                                    backend="memory",
                                    deletion_mode="filter")
    yield objects, service
    service.close()


def test_burst_is_coalesced_and_pair_identical(serving):
    objects, service = serving
    workloads = [generate_preferences(5, 3, seed=100 + s % 4)
                 for s in range(20)]

    async def burst():
        async with AsyncMatchingService(service, max_batch=16,
                                        max_wait_ms=20) as front:
            results = await asyncio.gather(
                *[front.submit(functions) for functions in workloads]
            )
            return results, front.batches_dispatched, \
                front.requests_coalesced

    results, batches, coalesced = asyncio.run(burst())
    assert coalesced == len(workloads)
    # 20 near-simultaneous arrivals with a 20ms window and max_batch=16
    # must land in far fewer submit_many calls than requests.
    assert batches <= 4
    for result, functions in zip(results, workloads):
        cold = repro.match(objects, functions, backend="memory")
        assert result.as_set() == cold.as_set()
    # Coalesced duplicates (seeds repeat mod 4) share result objects.
    assert results[0] is results[4] or results[0].as_set() == \
        results[4].as_set()


def test_async_submit_accepts_requests_and_sequences(serving):
    _, service = serving
    prefs = generate_preferences(4, 3, seed=120)

    async def one():
        async with AsyncMatchingService(service, max_wait_ms=0) as front:
            from_sequence = await front.submit(prefs)
            from_request = await front.submit(MatchingRequest(prefs))
            return from_sequence, from_request

    from_sequence, from_request = asyncio.run(one())
    assert from_sequence is from_request       # second was a cache hit


def test_async_timeout_cancels_the_waiter_not_the_batch(serving):
    _, service = serving
    prefs = generate_preferences(4, 3, seed=121)

    async def run():
        front = AsyncMatchingService(service, max_wait_ms=0)
        with pytest.raises(asyncio.TimeoutError):
            # An impossible deadline: the matching takes longer.
            await front.submit(
                MatchingRequest(generate_preferences(40, 3, seed=122),
                                timeout=1e-9)
            )
        # The front-end keeps serving afterwards.
        result = await front.submit(prefs)
        await front.aclose()
        return result

    result = asyncio.run(run())
    assert result.as_set() == service.submit(prefs).as_set()


def test_aclose_is_idempotent_and_rejects_new_work(serving):
    _, service = serving

    async def run():
        front = AsyncMatchingService(service)
        result = await front.submit(generate_preferences(3, 3, seed=123))
        await front.aclose()
        await front.aclose()
        with pytest.raises(MatchingError):
            await front.submit(generate_preferences(3, 3, seed=123))
        return result

    assert len(asyncio.run(run())) == 3


def test_aclose_can_close_the_wrapped_service():
    objects = repro.generate_independent(n=60, dims=2, seed=96)
    service = repro.MatchingService(objects, algorithm="sb",
                                    backend="memory")

    async def run():
        front = AsyncMatchingService(service)
        await front.submit(generate_preferences(3, 2, seed=97))
        await front.aclose(close_service=True)

    asyncio.run(run())
    with pytest.raises(MatchingError):
        service.submit(generate_preferences(3, 2, seed=97))


def test_constructor_validates_knobs(serving):
    _, service = serving
    with pytest.raises(MatchingError):
        AsyncMatchingService(service, max_batch=0)
    with pytest.raises(MatchingError):
        AsyncMatchingService(service, max_wait_ms=-1)


def test_service_errors_propagate_to_every_waiter():
    objects = repro.generate_independent(n=60, dims=2, seed=98)
    service = repro.MatchingService(objects, algorithm="sb",
                                    backend="memory")
    service.close()                      # submissions will raise

    async def run():
        front = AsyncMatchingService(service, max_batch=4, max_wait_ms=20)
        workloads = [generate_preferences(3, 2, seed=99 + s)
                     for s in range(3)]
        outcomes = await asyncio.gather(
            *[front.submit(functions) for functions in workloads],
            return_exceptions=True,
        )
        await front.aclose()
        return outcomes

    outcomes = asyncio.run(run())
    assert len(outcomes) == 3
    assert all(isinstance(outcome, MatchingError) for outcome in outcomes)
