"""Monotone (non-linear) preference families and the generic SB matcher."""

import pytest

from repro.core import (
    GenericSkylineMatcher,
    MatchingProblem,
    SkylineMatcher,
    greedy_monotone_reference,
    greedy_reference_matching,
)
from repro.data import Dataset, generate_anticorrelated, generate_independent
from repro.errors import DimensionalityError, MatchingError, PreferenceError
from repro.prefs import (
    CobbDouglasPreference,
    LinearPreference,
    MinPreference,
    MonotonePreference,
    QuadraticPreference,
    is_monotone_on_sample,
)


@pytest.mark.parametrize("cls", [
    MinPreference, CobbDouglasPreference, QuadraticPreference,
])
def test_families_are_monotone(cls):
    function = cls(0, (0.5, 1.2, 0.3))
    assert is_monotone_on_sample(function, 3, samples=300, seed=1)
    assert isinstance(function, MonotonePreference)


@pytest.mark.parametrize("cls", [
    MinPreference, CobbDouglasPreference, QuadraticPreference,
])
def test_family_validation(cls):
    with pytest.raises(PreferenceError):
        cls(0, ())
    with pytest.raises(PreferenceError):
        cls(0, (-0.1, 0.5))
    with pytest.raises(PreferenceError):
        cls(0, (0.0, 0.0))
    function = cls(0, (0.5, 0.5))
    with pytest.raises(DimensionalityError):
        function.score((0.1, 0.2, 0.3))


def test_min_preference_semantics():
    f = MinPreference(0, (2.0, 1.0))
    assert f.score((0.2, 0.9)) == pytest.approx(0.4)   # min(0.4, 0.9)
    assert f.score((0.9, 0.1)) == pytest.approx(0.1)


def test_quadratic_rewards_specialists():
    f = QuadraticPreference(0, (0.5, 0.5))
    balanced = f.score((0.5, 0.5))
    specialist = f.score((1.0, 0.0))
    assert specialist > balanced  # convexity


def test_min_rewards_generalists():
    f = MinPreference(0, (1.0, 1.0))
    assert f.score((0.5, 0.5)) > f.score((1.0, 0.0))


def test_cobb_douglas_eps_validation():
    with pytest.raises(PreferenceError):
        CobbDouglasPreference(0, (1.0,), eps=0.0)


@pytest.mark.parametrize("cls", [
    MinPreference, CobbDouglasPreference, QuadraticPreference,
])
def test_generic_matcher_equals_monotone_reference(cls):
    objects = generate_independent(250, 3, seed=190)
    functions = [
        cls(fid, (0.3 + 0.1 * (fid % 5), 1.0, 0.5 + 0.05 * fid))
        for fid in range(15)
    ]
    problem = MatchingProblem.build(objects, [])
    matching = GenericSkylineMatcher(problem, functions).run()
    reference = greedy_monotone_reference(objects, functions)
    assert matching.as_set() == reference.as_set()
    assert len(matching) == 15


def test_generic_matcher_mixed_families():
    objects = generate_anticorrelated(300, 3, seed=191)
    functions = [
        MinPreference(0, (1.0, 1.0, 1.0)),
        QuadraticPreference(1, (0.2, 0.5, 0.3)),
        CobbDouglasPreference(2, (0.4, 0.4, 0.2)),
        MinPreference(3, (2.0, 0.5, 1.0)),
    ]
    problem = MatchingProblem.build(objects, [])
    matching = GenericSkylineMatcher(problem, functions).run()
    reference = greedy_monotone_reference(objects, functions)
    assert matching.as_set() == reference.as_set()


def test_generic_matcher_agrees_with_linear_sb_on_linear_functions():
    objects = generate_independent(200, 3, seed=192)
    from repro.prefs import generate_preferences

    functions = generate_preferences(12, 3, seed=193)
    problem_a = MatchingProblem.build(objects, functions)
    linear = SkylineMatcher(problem_a).run()
    problem_b = MatchingProblem.build(objects, [])
    generic = GenericSkylineMatcher(problem_b, functions).run()
    assert linear.as_set() == generic.as_set()
    assert generic.as_set() == greedy_reference_matching(
        objects, functions
    ).as_set()


def test_generic_matcher_single_pair_mode():
    objects = generate_independent(100, 2, seed=194)
    functions = [MinPreference(fid, (1.0, 1.0 + fid / 10)) for fid in range(6)]
    problem = MatchingProblem.build(objects, [])
    multi = GenericSkylineMatcher(problem, functions).run()
    problem_b = MatchingProblem.build(objects, [])
    single_matcher = GenericSkylineMatcher(
        problem_b, functions, multi_pair=False
    )
    single = single_matcher.run()
    assert multi.as_set() == single.as_set()
    assert single_matcher.rounds == len(single)


def test_generic_matcher_validation():
    objects = generate_independent(20, 2, seed=195)
    problem = MatchingProblem.build(objects, [])
    with pytest.raises(DimensionalityError):
        GenericSkylineMatcher(problem, [MinPreference(0, (1.0, 1.0, 1.0))])
    with pytest.raises(MatchingError):
        GenericSkylineMatcher(
            problem,
            [MinPreference(0, (1.0, 1.0)), MinPreference(0, (0.5, 1.0))],
        )


def test_min_preference_tie_storm():
    # Many exact ties: every object scores identically under f.
    objects = Dataset([[0.5, 0.9], [0.5, 0.8], [0.5, 0.7]])
    functions = [MinPreference(fid, (1.0, 10.0)) for fid in range(2)]
    problem = MatchingProblem.build(objects, [])
    matching = GenericSkylineMatcher(problem, functions).run()
    reference = greedy_monotone_reference(objects, functions)
    assert matching.as_set() == reference.as_set()
