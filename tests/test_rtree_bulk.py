"""STR bulk loading."""

import pytest

from tests.conftest import check_rtree_invariants
from repro.data import generate_anticorrelated, generate_independent
from repro.errors import RTreeError
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree


def test_bulk_load_contains_everything():
    dataset = generate_independent(1000, 4, seed=8)
    tree = RTree.bulk_load(DiskNodeStore(4), 4, dataset.items())
    assert tree.num_objects == 1000
    assert sorted(oid for oid, _ in tree.iter_objects()) == dataset.ids
    check_rtree_invariants(tree)


def test_bulk_load_empty():
    tree = RTree.bulk_load(MemoryNodeStore(8), 3, [])
    assert tree.num_objects == 0
    assert tree.height == 1


def test_bulk_load_single_object():
    tree = RTree.bulk_load(MemoryNodeStore(8), 2, [(5, (0.1, 0.9))])
    assert tree.num_objects == 1
    assert list(tree.iter_objects()) == [(5, (0.1, 0.9))]


def test_bulk_load_is_packed():
    # STR should use far fewer pages than one-at-a-time insertion.
    dataset = generate_independent(2000, 3, seed=9)
    store_bulk = DiskNodeStore(3)
    RTree.bulk_load(store_bulk, 3, dataset.items(), fill=0.9)
    store_inc = DiskNodeStore(3)
    tree = RTree(store_inc, dims=3)
    for object_id, point in dataset.items():
        tree.insert(object_id, point)
    assert store_bulk.disk.num_pages < store_inc.disk.num_pages


def test_fill_factor_controls_page_count():
    dataset = generate_independent(3000, 3, seed=10)
    pages = {}
    for fill in (0.5, 1.0):
        store = DiskNodeStore(3)
        RTree.bulk_load(store, 3, dataset.items(), fill=fill)
        pages[fill] = store.disk.num_pages
    assert pages[0.5] > pages[1.0]


def test_invalid_fill_rejected():
    with pytest.raises(RTreeError):
        RTree.bulk_load(MemoryNodeStore(8), 2, [(0, (0.1, 0.2))], fill=0.01)


def test_bulk_load_height_is_logarithmic():
    dataset = generate_independent(5000, 3, seed=11)
    store = DiskNodeStore(3)
    tree = RTree.bulk_load(store, 3, dataset.items())
    # leaf capacity at D=3 is ~127; 5000 objects need height 2.
    assert tree.height == 2


def test_bulk_load_then_update():
    dataset = generate_anticorrelated(600, 3, seed=12)
    tree = RTree.bulk_load(MemoryNodeStore(16), 3, dataset.items())
    points = dict(dataset.items())
    for object_id in dataset.ids[:50]:
        tree.delete(object_id, points[object_id])
    for object_id in dataset.ids[:50]:
        tree.insert(object_id, points[object_id])
    assert sorted(oid for oid, _ in tree.iter_objects()) == dataset.ids
    check_rtree_invariants(tree)


def test_bulk_load_deterministic():
    dataset = generate_independent(500, 3, seed=13)
    trees = []
    for _ in range(2):
        store = DiskNodeStore(3)
        tree = RTree.bulk_load(store, 3, dataset.items())
        trees.append(sorted(tree.iter_objects()))
    assert trees[0] == trees[1]
