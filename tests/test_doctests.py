"""The public API's docstring examples, executed.

The documentation satellite's enforcement test: the quickstart in
``repro``'s module docstring, the facade and config examples, and the
dynamic/parallel package examples are real doctests — this collects and
runs them so the examples can never drift from the code. Each module
must contribute at least one example (an empty collection would mean
the documentation silently stopped being executable).
"""

import doctest
import importlib
import inspect

import pytest

import repro
import repro.dynamic
import repro.engine.config
import repro.engine.facade
import repro.parallel.partition
import repro.replay

# importlib guarantees the actual submodules (immune to any package
# attribute shadowing a submodule's name).
engine_cache = importlib.import_module("repro.engine.cache")
engine_plan = importlib.import_module("repro.engine.plan")
engine_service = importlib.import_module("repro.engine.service")
engine_request = importlib.import_module("repro.engine.request")
engine_batch = importlib.import_module("repro.engine.batch")
engine_async = importlib.import_module("repro.engine.async_service")
prefs_functions = importlib.import_module("repro.prefs.functions")
net_codec = importlib.import_module("repro.net.codec")
matrix_config = importlib.import_module("repro.bench.matrix.config")
matrix_validate = importlib.import_module("repro.bench.matrix.validate")

DOCUMENTED_MODULES = [
    repro,
    repro.engine.facade,
    repro.engine.config,
    engine_cache,
    engine_plan,
    engine_service,
    engine_request,
    engine_batch,
    engine_async,
    net_codec,
    prefs_functions,
    matrix_config,
    matrix_validate,
    repro.dynamic,
    repro.parallel.partition,
    repro.replay,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__,
)
def test_docstring_examples_run(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, (
        f"{module.__name__} has no executable docstring examples"
    )
    assert results.failed == 0


def test_every_public_export_has_a_docstring():
    """Every name exported from ``repro`` documents itself."""
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)
                or inspect.ismodule(obj)):
            continue
        doc = inspect.getdoc(obj)
        if not doc or not doc.strip():
            undocumented.append(name)
    assert not undocumented, (
        f"exported names without docstrings: {undocumented}"
    )


def test_facade_and_config_are_fully_documented():
    """Each public method of the facade surface carries a docstring."""
    from repro.engine.config import MatchingConfig
    from repro.engine.facade import MatchingEngine

    for cls in (MatchingEngine, MatchingConfig):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name}"
