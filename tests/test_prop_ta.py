"""Property-based tests of the threshold algorithm and its tight bound."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefs import (
    FunctionIndex,
    LinearPreference,
    canonical_score,
    tight_threshold,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)


def function_sets(dims, max_size=12):
    raw = st.lists(
        st.tuples(*([positive] * dims)), min_size=1, max_size=max_size
    )
    return raw.map(
        lambda rows: [
            LinearPreference.normalized(fid, row)
            for fid, row in enumerate(rows)
        ]
    )


def oracle(functions, point):
    best = max(
        (canonical_score(f.weights, point), -f.fid) for f in functions
    )
    return (-best[1], best[0])


@settings(max_examples=80, deadline=None)
@given(function_sets(3), st.tuples(unit, unit, unit))
def test_reverse_top1_equals_oracle(functions, point):
    index = FunctionIndex(functions)
    assert index.reverse_top1(point) == oracle(functions, point)


@settings(max_examples=50, deadline=None)
@given(function_sets(2, max_size=10), st.tuples(unit, unit),
       st.lists(st.integers(min_value=0, max_value=100), max_size=6))
def test_reverse_top1_with_removals(functions, point, removals):
    index = FunctionIndex(functions)
    alive = {f.fid: f for f in functions}
    for raw in removals:
        if len(alive) <= 1:
            break
        victim = sorted(alive)[raw % len(alive)]
        index.remove(victim)
        del alive[victim]
        assert index.reverse_top1(point) == oracle(alive.values(), point)


@settings(max_examples=80, deadline=None)
@given(function_sets(4), st.tuples(unit, unit, unit, unit))
def test_naive_and_tight_thresholds_agree(functions, point):
    tight = FunctionIndex(functions, threshold="tight")
    naive = FunctionIndex(functions, threshold="naive")
    assert tight.reverse_top1(point) == naive.reverse_top1(point)


@settings(max_examples=100, deadline=None)
@given(
    st.tuples(unit, unit, unit),
    st.tuples(positive, positive, positive),
    st.tuples(positive, positive, positive),
)
def test_tight_threshold_admissible_for_capped_functions(point, caps, raw):
    """Any normalized function whose coefficients respect the caps scores
    at most the tight threshold (up to arithmetic noise)."""
    function = LinearPreference.normalized(0, raw)
    if not all(w <= c for w, c in zip(function.weights, caps)):
        return  # the function does not respect the caps: bound says nothing
    bound = tight_threshold(point, caps)
    assert canonical_score(function.weights, point) <= bound + 1e-9


@settings(max_examples=100, deadline=None)
@given(st.tuples(unit, unit, unit), st.tuples(positive, positive, positive))
def test_tight_threshold_never_looser_than_naive_when_feasible(point, caps):
    if sum(caps) < 1.0:
        return  # infeasible regime: the tight bound pads, naive may be lower
    naive = sum(c * p for c, p in zip(caps, point))
    assert tight_threshold(point, caps) <= naive + 1e-12
