"""Property-based round-trip of node serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MBR
from repro.rtree import Entry, RTreeNode
from repro.rtree.serial import deserialize_node, serialize_node

finite = st.floats(
    min_value=-1e12, max_value=1e12,
    allow_nan=False, allow_infinity=False,
)
object_ids = st.integers(min_value=0, max_value=2 ** 62)


@st.composite
def leaf_nodes(draw, dims=3, max_entries=12):
    points = draw(st.lists(
        st.tuples(*([finite] * dims)), max_size=max_entries
    ))
    entries = [
        Entry.for_object(draw(object_ids), point) for point in points
    ]
    return RTreeNode(draw(st.integers(0, 1000)), 0, entries)


@st.composite
def branch_nodes(draw, dims=2, max_entries=10):
    entries = []
    for _ in range(draw(st.integers(0, max_entries))):
        a = draw(st.tuples(*([finite] * dims)))
        b = draw(st.tuples(*([finite] * dims)))
        low = tuple(min(x, y) for x, y in zip(a, b))
        high = tuple(max(x, y) for x, y in zip(a, b))
        entries.append(Entry(MBR(low, high), draw(object_ids)))
    return RTreeNode(draw(st.integers(0, 1000)),
                     draw(st.integers(1, 7)), entries)


@settings(max_examples=100, deadline=None)
@given(leaf_nodes())
def test_leaf_roundtrip_is_bitwise_exact(node):
    data = serialize_node(node, 3, 4096)
    restored, dims = deserialize_node(node.node_id, data)
    assert dims == 3
    assert restored.level == 0
    assert restored.entries == node.entries  # MBR equality is bitwise


@settings(max_examples=100, deadline=None)
@given(branch_nodes())
def test_branch_roundtrip_is_bitwise_exact(node):
    data = serialize_node(node, 2, 4096)
    restored, dims = deserialize_node(node.node_id, data)
    assert dims == 2
    assert restored.level == node.level
    assert restored.entries == node.entries


@settings(max_examples=50, deadline=None)
@given(leaf_nodes(), st.integers(0, 40))
def test_serialized_size_is_deterministic(node, _noise):
    first = serialize_node(node, 3, 4096)
    second = serialize_node(node, 3, 4096)
    assert first == second
    assert len(first) == 8 + len(node.entries) * (8 + 3 * 8)
