"""Reverse top-k queries against the TA index."""

import numpy as np
import pytest

from repro.errors import PreferenceError
from repro.prefs import FunctionIndex, canonical_score, generate_preferences
from repro.storage import SearchStats


def oracle_topk(functions, point, k):
    scored = sorted(
        ((canonical_score(f.weights, point), f.fid) for f in functions),
        key=lambda pair: (-pair[0], pair[1]),
    )
    return [(fid, score) for score, fid in scored[:k]]


def test_matches_oracle_various_k():
    prefs = generate_preferences(150, 3, seed=260)
    index = FunctionIndex(prefs)
    rng = np.random.default_rng(0)
    for _ in range(40):
        point = tuple(rng.random(3))
        for k in (1, 3, 10):
            assert index.reverse_topk(point, k) == oracle_topk(prefs, point, k)


def test_topk_consistent_with_top1():
    prefs = generate_preferences(80, 4, seed=261)
    index = FunctionIndex(prefs)
    rng = np.random.default_rng(1)
    for _ in range(30):
        point = tuple(rng.random(4))
        assert index.reverse_topk(point, 1)[0] == index.reverse_top1(point)


def test_k_larger_than_index_returns_all():
    prefs = generate_preferences(7, 2, seed=262)
    index = FunctionIndex(prefs)
    hits = index.reverse_topk((0.4, 0.6), 50)
    assert len(hits) == 7
    scores = [score for _, score in hits]
    assert scores == sorted(scores, reverse=True)


def test_empty_index_and_bad_k():
    index = FunctionIndex([])
    assert index.reverse_topk((), 3) == []
    index = FunctionIndex(generate_preferences(5, 2, seed=263))
    with pytest.raises(PreferenceError):
        index.reverse_topk((0.5, 0.5), 0)


def test_respects_removals():
    prefs = generate_preferences(60, 3, seed=264)
    index = FunctionIndex(prefs)
    point = (0.3, 0.5, 0.7)
    alive = {f.fid: f for f in prefs}
    for _ in range(20):
        top = index.reverse_topk(point, 5)
        assert top == oracle_topk(alive.values(), point, 5)
        index.remove(top[0][0])
        del alive[top[0][0]]


def test_topk_early_termination_scans_less_than_everything():
    prefs = generate_preferences(1000, 4, seed=265)
    index = FunctionIndex(prefs)
    stats = SearchStats()
    index.reverse_topk((0.9, 0.1, 0.3, 0.6), 5, stats=stats)
    assert stats.score_evaluations < len(prefs)


def test_tie_breaks_by_fid():
    from repro.prefs import LinearPreference

    prefs = [
        LinearPreference(8, (0.5, 0.5)),
        LinearPreference(1, (0.5, 0.5)),
        LinearPreference(4, (0.5, 0.5)),
    ]
    index = FunctionIndex(prefs)
    hits = index.reverse_topk((0.4, 0.4), 2)
    assert [fid for fid, _ in hits] == [1, 4]
