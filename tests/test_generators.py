"""Synthetic data generator tests (Börzsönyi et al. methodology)."""

import numpy as np
import pytest

from repro.data import (
    generate,
    generate_anticorrelated,
    generate_clustered,
    generate_correlated,
    generate_independent,
)
from repro.errors import DatasetError
from repro.skyline import canonical_skyline_naive


def mean_pairwise_correlation(matrix):
    corr = np.corrcoef(matrix.T)
    dims = corr.shape[0]
    off_diag = corr[~np.eye(dims, dtype=bool)]
    return float(off_diag.mean())


@pytest.mark.parametrize("generator", [
    generate_independent,
    generate_anticorrelated,
    generate_correlated,
    generate_clustered,
])
def test_shape_range_determinism(generator):
    a = generator(500, 4, seed=70)
    b = generator(500, 4, seed=70)
    c = generator(500, 4, seed=71)
    assert len(a) == 500 and a.dims == 4
    assert a.matrix.min() >= 0.0 and a.matrix.max() <= 1.0
    assert np.array_equal(a.matrix, b.matrix)
    assert not np.array_equal(a.matrix, c.matrix)


def test_independent_attributes_uncorrelated():
    ds = generate_independent(5000, 3, seed=72)
    assert abs(mean_pairwise_correlation(ds.matrix)) < 0.05


def test_anticorrelated_attributes_negative_correlation():
    ds = generate_anticorrelated(5000, 3, seed=73)
    assert mean_pairwise_correlation(ds.matrix) < -0.2


def test_correlated_attributes_positive_correlation():
    ds = generate_correlated(5000, 3, seed=74)
    assert mean_pairwise_correlation(ds.matrix) > 0.5


def test_skyline_size_ordering():
    """The raison d'etre of the three families (Börzsönyi et al.):
    anti-correlated data has a much larger skyline than independent,
    which beats correlated."""
    sizes = {}
    for name, generator in [
        ("anti", generate_anticorrelated),
        ("indep", generate_independent),
        ("corr", generate_correlated),
    ]:
        ds = generator(1500, 3, seed=75)
        sizes[name] = len(canonical_skyline_naive(list(ds.items())))
    assert sizes["anti"] > sizes["indep"] > sizes["corr"]


def test_clustered_has_requested_clusters():
    ds = generate_clustered(400, 2, clusters=3, seed=76, spread=0.01)
    # With tiny spread, points concentrate near 3 centers: the number of
    # distinct rounded-to-1-decimal locations is small.
    rounded = {tuple(np.round(row, 1)) for row in ds.matrix}
    assert len(rounded) <= 12


def test_generate_dispatch():
    ds = generate("independent", 10, 2, seed=77)
    assert len(ds) == 10
    with pytest.raises(DatasetError):
        generate("gaussian", 10, 2)


def test_invalid_parameters():
    with pytest.raises(DatasetError):
        generate_independent(-1, 3)
    with pytest.raises(DatasetError):
        generate_independent(10, 0)
    with pytest.raises(DatasetError):
        generate_clustered(10, 2, clusters=0)
    with pytest.raises(DatasetError):
        generate_correlated(10, 2, spread=-1.0)


def test_zero_objects():
    ds = generate_independent(0, 3, seed=78)
    assert len(ds) == 0
