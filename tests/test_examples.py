"""Every example must run end-to-end (at reduced scale)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.main(n_rooms=800, n_users=30)
    out = capsys.readouterr().out
    assert "stability verified" in out
    assert "I/O accesses (SB)" in out


def test_hotel_booking_runs(capsys):
    module = load_example("hotel_booking")
    module.main(n_rooms=600, per_segment=10)
    out = capsys.readouterr().out
    assert "matched 30 users" in out
    for segment in ("budget", "family", "business"):
        assert segment in out


def test_real_estate_market_runs(capsys):
    module = load_example("real_estate_market")
    module.main(n_homes=800, n_buyers=40)
    out = capsys.readouterr().out
    assert "identical stable matching" in out
    assert "bathrooms" in out


def test_room_types_capacity_runs(capsys):
    module = load_example("room_types_capacity")
    module.main(n_guests=6)
    out = capsys.readouterr().out
    assert "Capacitated matching" in out
    assert "suite" in out
    assert "MinPreference" in out


def test_parallel_matching_runs(capsys):
    module = load_example("parallel_matching")
    module.main(n_listings=500, n_buyers=25, shards=3, executor="serial")
    out = capsys.readouterr().out
    assert "identical stable matching" in out
    assert "sharded-sb" in out


def test_figure1_walkthrough_runs(capsys):
    module = load_example("figure1_walkthrough")
    module.main()
    out = capsys.readouterr().out
    assert "Osky = {a, e}" in out
    assert "(f1, e)" in out and "(f2, d)" in out


def test_task_assignment_runs(capsys):
    module = load_example("task_assignment")
    module.main(n_workers=1000, n_jobs=40)
    out = capsys.readouterr().out
    assert "skyline" in out
    assert "re-traversal maintenance" in out


def test_streaming_session_runs(capsys):
    module = load_example("streaming_session")
    module.main(n_rooms=600, n_users=25, n_events=60)
    out = capsys.readouterr().out
    assert "initial matching: 25 pairs" in out
    assert "repair chains:" in out
    assert "verified: session matching == from-scratch match()" in out


def test_serving_runs(capsys):
    module = load_example("serving")
    module.main(n_listings=600, n_buyers=20, n_requests=15)
    out = capsys.readouterr().out
    assert "cache hits:" in out
    assert "verified: served results == from-scratch repro.match()" in out
    assert "cache invalidated" in out


def test_batch_serving_runs(capsys):
    module = load_example("batch_serving")
    module.main(n_listings=800, n_buyers=10, n_requests=24, n_cohorts=5)
    out = capsys.readouterr().out
    assert "batched submit_many" in out
    assert "verified: batched results == from-scratch repro.match()" in out
    assert "micro-batches" in out
    assert "verified: async results == from-scratch repro.match()" in out


def test_network_serving_runs(capsys):
    module = load_example("network_serving")
    module.main(n_listings=500, n_buyers=8, n_requests=8, shards=2)
    out = capsys.readouterr().out
    assert "pipelined connection" in out
    assert ("verified: served results == in-process submit_many "
            "(scores bit-exact) == from-scratch repro.match()") in out
    assert "verified: executor='remote' matching" in out
    assert "health: ok" in out


def test_examples_have_docstrings_and_main_guard():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name
        assert 'if __name__ == "__main__":' in source, path.name
