"""Exception hierarchy: every library error derives from ReproError and
carries useful context."""

import pytest

from repro.errors import (
    DatasetError,
    DimensionalityError,
    EntryNotFoundError,
    MatchingError,
    PageNotFoundError,
    PageSizeError,
    PreferenceError,
    ReproError,
    RTreeError,
    SerializationError,
    StorageError,
)


def test_hierarchy():
    assert issubclass(StorageError, ReproError)
    assert issubclass(PageNotFoundError, StorageError)
    assert issubclass(PageSizeError, StorageError)
    assert issubclass(RTreeError, ReproError)
    assert issubclass(EntryNotFoundError, RTreeError)
    assert issubclass(SerializationError, RTreeError)
    assert issubclass(PreferenceError, ReproError)
    assert issubclass(DimensionalityError, ReproError)
    assert issubclass(MatchingError, ReproError)
    assert issubclass(DatasetError, ReproError)


def test_page_not_found_carries_page_id():
    error = PageNotFoundError(42)
    assert error.page_id == 42
    assert "42" in str(error)


def test_entry_not_found_carries_object_id():
    error = EntryNotFoundError(7)
    assert error.object_id == 7
    assert "7" in str(error)


def test_dimensionality_error_message():
    error = DimensionalityError(3, 5, "weights")
    assert error.expected == 3
    assert error.got == 5
    assert "weights" in str(error)


def test_one_except_catches_everything():
    from repro.data import Dataset
    from repro.prefs import LinearPreference
    from repro.storage import DiskManager

    failures = 0
    for action in (
        lambda: Dataset([[2.0]]),
        lambda: LinearPreference(0, (0.2, 0.2)),
        lambda: DiskManager().read_page(1),
    ):
        try:
            action()
        except ReproError:
            failures += 1
    assert failures == 3
