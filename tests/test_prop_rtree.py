"""Property-based tests of the R-tree as a stateful container."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import check_rtree_invariants
from repro.geometry import MBR
from repro.rtree import MemoryNodeStore, RankedSearch, RTree
from repro.prefs import canonical_score

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
coarse = st.integers(min_value=0, max_value=8).map(lambda v: v / 8)

#: An operation: (insert?, object slot, point) — deletes target the slot.
ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=15),
              st.tuples(coarse, coarse)),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(ops)
def test_random_op_sequences_preserve_membership(operations):
    tree = RTree(MemoryNodeStore(4), dims=2)
    alive = {}
    for is_insert, slot, point in operations:
        if is_insert and slot not in alive:
            tree.insert(slot, point)
            alive[slot] = point
        elif not is_insert and slot in alive:
            tree.delete(slot, alive.pop(slot))
    assert dict(tree.iter_objects()) == alive
    assert tree.num_objects == len(alive)
    check_rtree_invariants(tree)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(unit, unit, unit), min_size=1, max_size=50),
    st.tuples(unit, unit, unit),
)
def test_ranked_search_is_a_sort(points, raw_weights):
    total = sum(raw_weights)
    weights = (
        tuple(w / total for w in raw_weights) if total > 0
        else (1 / 3, 1 / 3, 1 / 3)
    )
    items = list(enumerate(points))
    tree = RTree(MemoryNodeStore(4), dims=3)
    for object_id, point in items:
        tree.insert(object_id, point)
    got = [(oid, score) for oid, _, score in RankedSearch(tree, weights)]
    want = sorted(
        ((oid, canonical_score(weights, p)) for oid, p in items),
        key=lambda pair: (-pair[1], pair[0]),
    )
    assert [oid for oid, _ in got] == [oid for oid, _ in want]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(coarse, coarse), max_size=40),
    st.tuples(coarse, coarse), st.tuples(coarse, coarse),
)
def test_range_search_equals_filter(points, corner_a, corner_b):
    low = tuple(min(a, b) for a, b in zip(corner_a, corner_b))
    high = tuple(max(a, b) for a, b in zip(corner_a, corner_b))
    query = MBR(low, high)
    tree = RTree(MemoryNodeStore(4), dims=2)
    for object_id, point in enumerate(points):
        tree.insert(object_id, point)
    got = sorted(tree.range_search(query))
    want = sorted(
        (oid, p) for oid, p in enumerate(points) if query.contains_point(p)
    )
    assert got == want


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(unit, unit), min_size=1, max_size=40))
def test_bulk_load_equals_incremental_content(points):
    items = list(enumerate(points))
    bulk = RTree.bulk_load(MemoryNodeStore(4), 2, items)
    incremental = RTree(MemoryNodeStore(4), dims=2)
    for object_id, point in items:
        incremental.insert(object_id, point)
    assert sorted(bulk.iter_objects()) == sorted(incremental.iter_objects())
    check_rtree_invariants(bulk)
