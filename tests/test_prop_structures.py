"""Property-based tests for the auxiliary structures (Hilbert, NN,
D&C skyline, buffer pools)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree import MemoryNodeStore, RTree, hilbert_index, k_nearest
from repro.skyline import canonical_skyline_naive, dnc_skyline
from repro.storage import BufferPool, ClockBufferPool, DiskManager, Page

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
coarse = st.integers(min_value=0, max_value=5).map(lambda v: v / 5)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=4),
       st.integers(min_value=1, max_value=4), st.data())
def test_hilbert_index_is_injective(dims, order, data):
    side = 1 << order
    coords = data.draw(st.lists(
        st.tuples(*([st.integers(0, side - 1)] * dims)),
        min_size=2, max_size=20, unique=True,
    ))
    indices = [hilbert_index(c, order) for c in coords]
    assert len(set(indices)) == len(coords)
    for index in indices:
        assert 0 <= index < side ** dims


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(unit, unit), min_size=1, max_size=40),
       st.tuples(unit, unit))
def test_knn_equals_sorted_distances(points, query):
    tree = RTree(MemoryNodeStore(4), dims=2)
    for object_id, point in enumerate(points):
        tree.insert(object_id, point)
    got = [(oid, d) for oid, _, d in k_nearest(tree, query, len(points))]
    want = sorted(
        (
            (math.dist(point, query), oid)
            for oid, point in enumerate(points)
        ),
    )
    assert [oid for oid, _ in got] == [oid for _, oid in want]
    distances = [d for _, d in got]
    assert distances == sorted(distances)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(coarse, coarse, coarse), max_size=50))
def test_dnc_equals_naive_with_ties(points):
    items = list(enumerate(points))
    assert dnc_skyline(items) == canonical_skyline_naive(items)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=80),
    st.integers(min_value=1, max_value=4),
    st.booleans(),
)
def test_buffer_pools_always_serve_correct_bytes(accesses, capacity, clock):
    """Whatever the access pattern, a pool returns exactly what was last
    written for each page, and never exceeds its capacity."""
    disk = DiskManager(page_size=16)
    ids = []
    for i in range(8):
        page_id = disk.allocate()
        disk.write_page(Page(page_id, 16, bytes([i])))
        ids.append(page_id)
    pool = (
        ClockBufferPool(disk, capacity) if clock
        else BufferPool(disk, capacity)
    )
    latest = {page_id: bytes([i]) for i, page_id in enumerate(ids)}
    for step, slot in enumerate(accesses):
        page_id = ids[slot]
        if step % 3 == 2:
            payload = bytes([slot, step % 251])
            pool.put_page(Page(page_id, 16, payload))
            latest[page_id] = payload
        else:
            assert pool.get_page(page_id).data == latest[page_id]
        assert pool.num_resident <= capacity
    pool.flush()
    for page_id, payload in latest.items():
        assert disk.read_page(page_id).data == payload
