"""The unified engine facade: config, registry, and repro.match()."""

import pytest

import repro
from repro import (
    MatchingConfig,
    MatchingEngine,
    MatchingProblem,
    SkylineMatcher,
    available_algorithms,
    available_backends,
    register_matcher,
)
from repro.core import Matcher, TraceRecorder, match_with_capacities
from repro.engine import algorithm_aliases, unregister_matcher
from repro.errors import MatchingError
from repro.data import generate_independent
from repro.prefs import generate_preferences


def tiny_workload(n_objects=400, n_functions=15, dims=3, seed=50):
    objects = generate_independent(n_objects, dims, seed=seed)
    functions = generate_preferences(n_functions, dims, seed=seed + 1)
    return objects, functions


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
def test_config_defaults_are_the_papers():
    config = MatchingConfig()
    assert config.algorithm == "sb"
    assert config.backend == "disk"
    assert config.buffer_fraction == 0.02
    assert config.buffer_policy == "lru"
    assert config.deletion_mode == "delete"


def test_config_replace_returns_new_frozen_instance():
    config = MatchingConfig()
    derived = config.replace(algorithm="chain", seed=9)
    assert derived.algorithm == "chain" and derived.seed == 9
    assert config.algorithm == "sb"
    with pytest.raises(Exception):
        config.algorithm = "bf"  # frozen


@pytest.mark.parametrize("bad", [
    dict(buffer_policy="mru"),
    dict(deletion_mode="vanish"),
    dict(page_size=16),
    dict(buffer_fraction=0.0),
    dict(buffer_fraction=1.5),
    dict(buffer_capacity=0),
    dict(memory_fanout=2),
])
def test_config_validation(bad):
    with pytest.raises(MatchingError):
        MatchingConfig(**bad)


# ----------------------------------------------------------------------
# Algorithm registry
# ----------------------------------------------------------------------
def test_builtin_algorithms_registered():
    assert {"sb", "bf", "chain", "gs", "generic-sb"} <= set(
        available_algorithms()
    )


def test_aliases_resolve_to_canonical_names():
    aliases = algorithm_aliases()
    assert aliases["skyline"] == "sb"
    assert aliases["brute-force"] == "bf"
    assert aliases["gale-shapley"] == "gs"


def test_registry_round_trip():
    @register_matcher("test-trivial", aliases=("tt",))
    class TrivialMatcher(Matcher):
        """Yields nothing: every function stays unmatched."""

        name = "test-trivial"

        def pairs(self):
            return iter(())

    try:
        assert "test-trivial" in available_algorithms()
        objects, functions = tiny_workload()
        result = repro.match(objects, functions, algorithm="tt")
        assert len(result) == 0
        assert sorted(result.unmatched_functions) == sorted(
            f.fid for f in functions
        )
    finally:
        unregister_matcher("test-trivial")
    assert "test-trivial" not in available_algorithms()
    assert "tt" not in algorithm_aliases()


def test_duplicate_registration_rejected():
    with pytest.raises(MatchingError, match="already registered"):
        register_matcher("sb")(SkylineMatcher)


def test_non_matcher_class_rejected():
    with pytest.raises(MatchingError, match="must subclass Matcher"):
        register_matcher("test-bogus")(object)


def test_unknown_algorithm_error_lists_available():
    objects, functions = tiny_workload()
    with pytest.raises(MatchingError, match="unknown algorithm 'oracle'"):
        repro.match(objects, functions, algorithm="oracle")
    with pytest.raises(MatchingError, match="available algorithms: .*sb"):
        repro.match(objects, functions, algorithm="oracle")


def test_unknown_backend_error_lists_available():
    objects, functions = tiny_workload()
    with pytest.raises(MatchingError, match="unknown backend 'tape'"):
        repro.match(objects, functions, backend="tape")
    with pytest.raises(MatchingError, match="available backends: disk, memory"):
        repro.match(objects, functions, backend="tape")


# ----------------------------------------------------------------------
# match() parity
# ----------------------------------------------------------------------
def test_match_parity_with_direct_skyline_matcher():
    objects, functions = tiny_workload(seed=60)
    direct = SkylineMatcher(MatchingProblem.build(objects, functions)).run()
    via_facade = repro.match(objects, functions, algorithm="sb",
                             backend="disk")
    assert via_facade.as_set() == direct.as_set()
    assert via_facade.as_dict() == direct.as_dict()
    # Scores and emission order are preserved pair for pair.
    assert [
        (p.function_id, p.object_id, p.score) for p in via_facade.pairs
    ] == [(p.function_id, p.object_id, p.score) for p in direct.pairs]


def test_every_algorithm_and_backend_agrees():
    objects, functions = tiny_workload(seed=61)
    reference = None
    for algorithm in available_algorithms():
        for backend in available_backends():
            result = repro.match(objects, functions, algorithm=algorithm,
                                 backend=backend)
            assert len(result) == len(functions), (algorithm, backend)
            if reference is None:
                reference = result.as_set()
            assert result.as_set() == reference, (algorithm, backend)


def test_memory_backend_reports_zero_io():
    objects, functions = tiny_workload(seed=62)
    result = repro.match(objects, functions, backend="memory")
    assert result.io_accesses == 0
    disk = repro.match(objects, functions, backend="disk")
    assert disk.io_accesses > 0
    assert result.as_set() == disk.as_set()


def test_match_capacitated_parity_with_legacy_api():
    objects = generate_independent(40, 3, seed=63)
    functions = generate_preferences(25, 3, seed=64)
    capacities = {oid: (oid % 3) for oid, _ in objects.items()}
    legacy = match_with_capacities(objects, functions, capacities)
    unified = repro.match(objects, functions, capacities=capacities)
    assert unified.is_capacitated
    assert {(p.function_id, p.object_id) for p in legacy.pairs} == \
        unified.as_set()
    assert sorted(legacy.unmatched_functions) == \
        sorted(unified.unmatched_functions)
    for oid, _ in objects.items():
        assert unified.usage.get(oid, 0) <= max(1, capacities[oid])
    memory = repro.match(objects, functions, capacities=capacities,
                         backend="memory")
    assert memory.as_set() == unified.as_set()


def test_match_config_and_keyword_overrides():
    objects, functions = tiny_workload(seed=65)
    base = MatchingConfig(algorithm="bf", seed=123)
    result = repro.match(objects, functions, config=base, algorithm="sb",
                         maintenance="retraversal")
    assert result.algorithm == "skyline"
    assert result.seed == 123


def test_match_does_not_clobber_config_fields_with_defaults():
    # Regression: algorithm/backend/capacities of a passed config= must
    # survive when the corresponding keywords are not given.
    objects, functions = tiny_workload(n_objects=60, seed=69)
    config = MatchingConfig(algorithm="chain", backend="memory",
                            capacities={0: 2})
    result = repro.match(objects, functions, config=config)
    assert result.algorithm == "chain"
    assert result.backend == "memory"
    assert result.is_capacitated


def test_gale_shapley_is_a_single_round():
    objects, functions = tiny_workload(n_objects=60, seed=72)
    result = repro.match(objects, functions, algorithm="gs")
    assert result.num_rounds == 1
    assert result.stats["rounds"] == 1


def test_match_records_provenance_and_stats():
    objects, functions = tiny_workload(seed=66)
    result = repro.match(objects, functions, algorithm="sb", seed=77)
    assert result.backend == "disk"
    assert result.seed == 77
    assert result.stats["rounds"] >= 1
    assert result.stats["reverse_top1_queries"] > 0
    assert result.cpu_seconds > 0
    assert result.io is not None
    assert result.io.io_accesses == result.io_accesses


# ----------------------------------------------------------------------
# MatchingEngine object API
# ----------------------------------------------------------------------
def test_engine_create_matcher_forwards_overrides():
    objects, functions = tiny_workload(seed=67)
    engine = MatchingEngine(algorithm="sb")
    problem = engine.build_problem(objects, functions)
    recorder = TraceRecorder()
    matcher = engine.create_matcher(problem, on_round=recorder)
    matching = matcher.run()
    assert len(matching) == len(functions)
    assert len(recorder.rounds) == matcher.rounds


def test_engine_config_switches_reach_the_matcher():
    objects, functions = tiny_workload(seed=68)
    engine = MatchingEngine(algorithm="sb", maintenance="retraversal",
                            multi_pair=False, threshold="naive")
    matcher = engine.create_matcher(
        engine.build_problem(objects, functions)
    )
    assert matcher.maintenance == "retraversal"
    assert matcher.multi_pair is False
    assert matcher.threshold == "naive"


def test_engine_is_reusable_across_workloads():
    engine = MatchingEngine(algorithm="sb", backend="memory")
    for seed in (70, 71):
        objects, functions = tiny_workload(seed=seed)
        result = engine.match(objects, functions)
        assert len(result) == len(functions)


# ----------------------------------------------------------------------
# Staged-state reuse across repeated match() calls
# ----------------------------------------------------------------------
def test_repeated_match_reuses_staged_problem():
    objects, functions = tiny_workload(seed=80)
    engine = MatchingEngine(algorithm="sb", backend="disk")
    first = engine.match(objects, functions)
    second = engine.match(objects, functions)
    assert engine.stagings == 1  # the dataset was indexed exactly once
    assert [(p.function_id, p.object_id, p.score) for p in first.pairs] == \
           [(p.function_id, p.object_id, p.score) for p in second.pairs]


def test_staged_reuse_rebuilds_after_destructive_matcher():
    # Chain physically deletes assigned objects; the cached problem must
    # be rebuilt before the next run or results would silently shrink.
    objects, functions = tiny_workload(seed=81)
    engine = MatchingEngine(algorithm="chain", backend="disk")
    first = engine.match(objects, functions)
    second = engine.match(objects, functions)
    assert engine.stagings == 1
    assert [(p.function_id, p.object_id, p.score) for p in first.pairs] == \
           [(p.function_id, p.object_id, p.score) for p in second.pairs]


def test_staged_reuse_distinguishes_workloads():
    engine = MatchingEngine(algorithm="sb", backend="memory")
    objects_a, functions_a = tiny_workload(seed=82)
    objects_b, functions_b = tiny_workload(seed=83)
    result_a = engine.match(objects_a, functions_a)
    result_b = engine.match(objects_b, functions_b)
    assert engine.stagings == 2
    fresh = repro.match(objects_b, functions_b, backend="memory")
    assert [(p.function_id, p.object_id) for p in result_b.pairs] == \
           [(p.function_id, p.object_id) for p in fresh.pairs]
    assert result_a.pairs != result_b.pairs


def test_staged_reuse_with_capacities_keeps_expansion():
    objects, functions = tiny_workload(n_objects=10, n_functions=8, seed=84)
    capacities = {object_id: 2 for object_id, _ in objects.items()}
    engine = MatchingEngine(algorithm="sb", backend="memory",
                            capacities=capacities)
    first = engine.match(objects, functions)
    second = engine.match(objects, functions)
    assert engine.stagings == 1
    assert first.capacities == second.capacities
    assert [(p.function_id, p.object_id) for p in first.pairs] == \
           [(p.function_id, p.object_id) for p in second.pairs]


def test_staged_cache_detects_in_place_function_replacement():
    # Regression: the engine must not serve a stale result when the
    # caller mutates the functions list between calls. The prepared
    # result cache keys workloads by function *content*, so the staging
    # is reused (objects unchanged) while the changed workload runs
    # fresh.
    objects, functions = tiny_workload(seed=85)
    functions = list(functions)
    engine = MatchingEngine(algorithm="sb", backend="memory")
    engine.match(objects, functions)
    replacement = repro.prefs.LinearPreference.normalized(
        999, [1.0] * objects.dims
    )
    functions[0] = replacement
    result = engine.match(objects, functions)
    assert engine.stagings == 1  # same objects: staged exactly once
    matched = {pair.function_id for pair in result.pairs}
    assert 999 in matched


def test_build_problem_always_returns_fresh_problems():
    # Regression: the match() staging cache must not alias problems
    # handed out by build_problem — destructive matchers would corrupt
    # each other's trees.
    objects, functions = tiny_workload(n_objects=60, seed=86)
    engine = MatchingEngine(algorithm="bf", backend="disk")
    problem_a = engine.build_problem(objects, functions)
    problem_b = engine.build_problem(objects, functions)
    assert problem_a is not problem_b
    first = list(engine.create_matcher(problem_a).pairs())
    second = list(engine.create_matcher(problem_b).pairs())
    assert [(p.function_id, p.object_id, p.score) for p in first] == \
           [(p.function_id, p.object_id, p.score) for p in second]
