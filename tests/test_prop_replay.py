"""Property test: replay → rewind → replay equals straight-through.

The exact-rewind contract, probed with randomized traces: for any
seeded churn stream interleaved with request bursts at arbitrary
(tie-heavy) timestamps, and any rewind target, running the trace to the
end, rewinding, and running again must land on the *identical* terminal
state as a driver that replayed straight through — matching pairs,
per-key result-cache state (keys in LRU order), and per-window serving
counter deltas. Coarse timestamp grids force equal-ts bursts and
checkpoint collisions; the rewind target is drawn independently of the
phase structure so mid-window gap replay is exercised constantly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.dynamic import generate_events
from repro.replay import ReplayDriver, Trace, TraceEvent, TraceRequest

DIMS = 3


def _population(seed):
    objects = repro.generate_independent(30, DIMS, seed=seed)
    functions = repro.generate_preferences(4, DIMS, seed=seed + 1)
    pool = [
        repro.LinearPreference(10_000 + i, f.weights)
        for i, f in enumerate(
            repro.generate_preferences(5, DIMS, seed=seed + 2)
        )
    ]
    return objects, tuple(functions), pool


def _build_trace(seed, n_events, request_slots):
    """A randomized single-phase trace: churn at rate 2 + drawn bursts."""
    objects, functions, pool = _population(seed)
    churn = generate_events(objects, list(functions), n_events,
                            seed=seed + 3, rate=2.0)
    records = [TraceEvent(event) for event in churn]
    for slot, picks in request_slots:
        # Coarse grid (halves) provokes equal-ts bursts and records
        # that share a timestamp with churn events.
        ts = slot / 2.0
        # Dedupe within the workload: a single request never carries
        # the same function id twice (whole-burst duplicates are what
        # exercise sharing, and those the slots provide naturally).
        workload = {pool[pick % len(pool)].fid: pool[pick % len(pool)]
                    for pick in picks}
        records.append(TraceRequest(
            ts=ts, functions=tuple(workload.values()),
        ))
    records.sort(key=lambda record: record.ts)  # stable on ties
    return Trace(name=f"prop-{seed}", seed=seed, objects=objects,
                 functions=functions, records=tuple(records))


def _terminal_state(driver):
    pairs = tuple(
        (pair.function_id, pair.object_id, pair.score)
        for pair in driver.matching().pairs
    )
    windows = tuple(
        (window.name, tuple(sorted(window.counters.items())))
        for window in driver._windows
    )
    return pairs, driver.cache_keys(), windows


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=50),
    n_events=st.integers(min_value=1, max_value=16),
    request_slots=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.lists(st.integers(min_value=0, max_value=100),
                     min_size=1, max_size=3),
        ),
        min_size=1, max_size=6,
    ),
    rewind_slot=st.integers(min_value=0, max_value=20),
    checkpoint_slots=st.lists(
        st.integers(min_value=0, max_value=20), max_size=3,
    ),
)
def test_replay_rewind_replay_is_straight_through(
        seed, n_events, request_slots, rewind_slot, checkpoint_slots):
    trace = _build_trace(seed, n_events, request_slots)

    with ReplayDriver(trace, backend="memory", verify=False) as straight:
        straight.run()
        expected = _terminal_state(straight)

    with ReplayDriver(trace, backend="memory", verify=False) as driver:
        # Sprinkle extra mid-stream checkpoints: rewind may restore any
        # of them, and all must be equally exact.
        for slot in sorted(checkpoint_slots):
            driver.advance(slot / 2.0)
        driver.run()
        assert _terminal_state(driver) == expected
        driver.rewind(min(rewind_slot / 2.0, driver.clock))
        driver.run()
        assert _terminal_state(driver) == expected


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=20),
    n_events=st.integers(min_value=2, max_value=10),
)
def test_repeated_rewinds_never_drift(seed, n_events):
    """Rewinding to the same target over and over is idempotent: each
    replay from it reproduces the same terminal state, with no drift
    from restore-of-a-restore."""
    trace = _build_trace(seed, n_events, [(4, [0]), (9, [1, 2])])
    target = trace.end_ts / 2
    with ReplayDriver(trace, backend="memory", verify=False) as driver:
        driver.run()
        expected = _terminal_state(driver)
        for _ in range(3):
            driver.rewind(target)
            driver.run()
            assert _terminal_state(driver) == expected


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=20))
def test_trace_round_trip_replays_identically(seed):
    """Serialization is faithful under replay: a trace loaded back from
    its canonical lines drives the stack to the same terminal state."""
    trace = _build_trace(seed, 8, [(3, [0, 2]), (11, [1])])
    reloaded = Trace.from_lines(trace.to_lines())
    assert reloaded.records == trace.records
    with ReplayDriver(trace, backend="memory", verify=False) as one:
        one.run()
        first = _terminal_state(one)
    with ReplayDriver(reloaded, backend="memory", verify=False) as two:
        two.run()
        assert _terminal_state(two) == first
