"""FunctionIndex and the reverse top-1 threshold algorithm."""

import numpy as np
import pytest

from repro.errors import DimensionalityError, PreferenceError
from repro.prefs import (
    FunctionIndex,
    LinearPreference,
    canonical_score,
    generate_preferences,
    tight_threshold,
)
from repro.storage import SearchStats


def oracle_best(functions, point):
    best = max(
        ((canonical_score(f.weights, point), -f.fid) for f in functions)
    )
    return (-best[1], best[0])


def test_reverse_top1_matches_oracle_many_points():
    prefs = generate_preferences(300, 4, seed=60)
    index = FunctionIndex(prefs)
    rng = np.random.default_rng(1)
    for _ in range(100):
        point = tuple(rng.random(4))
        assert index.reverse_top1(point) == oracle_best(prefs, point)


def test_reverse_top1_empty_index():
    index = FunctionIndex([])
    assert index.reverse_top1(()) is None


def test_reverse_top1_single_function():
    f = LinearPreference(7, (0.4, 0.6))
    index = FunctionIndex([f])
    fid, score = index.reverse_top1((0.5, 0.5))
    assert fid == 7
    assert score == f.score((0.5, 0.5))


def test_tie_break_prefers_lowest_fid():
    # Two identical functions: the reverse top-1 must return the lower id.
    prefs = [
        LinearPreference(9, (0.5, 0.5)),
        LinearPreference(2, (0.5, 0.5)),
        LinearPreference(5, (0.9, 0.1)),
    ]
    index = FunctionIndex(prefs)
    fid, _ = index.reverse_top1((0.4, 0.4))  # symmetric point: all tie? no:
    # (0.4, 0.4) scores 0.4 for all three functions — full tie.
    assert fid == 2


def test_removal_updates_answers():
    prefs = generate_preferences(100, 3, seed=61)
    index = FunctionIndex(prefs)
    alive = {f.fid: f for f in prefs}
    rng = np.random.default_rng(2)
    for _ in range(99):
        point = tuple(rng.random(3))
        got = index.reverse_top1(point)
        assert got == oracle_best(alive.values(), point)
        index.remove(got[0])
        del alive[got[0]]
    assert len(index) == 1


def test_remove_unknown_fid_rejected():
    index = FunctionIndex(generate_preferences(5, 2, seed=62))
    with pytest.raises(PreferenceError):
        index.remove(99)
    index.remove(3)
    with pytest.raises(PreferenceError):
        index.remove(3)


def test_compaction_preserves_correctness():
    prefs = generate_preferences(200, 3, seed=63)
    index = FunctionIndex(prefs)
    alive = {f.fid: f for f in prefs}
    # Remove 150 functions to trigger compaction (threshold is 50%).
    for fid in range(150):
        index.remove(fid)
        del alive[fid]
    rng = np.random.default_rng(3)
    for _ in range(50):
        point = tuple(rng.random(3))
        assert index.reverse_top1(point) == oracle_best(alive.values(), point)


def test_duplicate_fids_rejected():
    f = LinearPreference(1, (1.0,))
    with pytest.raises(PreferenceError):
        FunctionIndex([f, f])


def test_mixed_dims_rejected():
    with pytest.raises(DimensionalityError):
        FunctionIndex([
            LinearPreference(0, (1.0,)),
            LinearPreference(1, (0.5, 0.5)),
        ])


def test_invalid_threshold_mode_rejected():
    with pytest.raises(PreferenceError):
        FunctionIndex([], threshold="loose")


def test_naive_and_tight_agree_tight_is_cheaper():
    prefs = generate_preferences(400, 5, seed=64)
    tight = FunctionIndex(prefs, threshold="tight")
    naive = FunctionIndex(prefs, threshold="naive")
    tight_stats, naive_stats = SearchStats(), SearchStats()
    rng = np.random.default_rng(4)
    for _ in range(60):
        point = tuple(rng.random(5))
        assert (
            tight.reverse_top1(point, stats=tight_stats)
            == naive.reverse_top1(point, stats=naive_stats)
        )
    assert tight_stats.score_evaluations < naive_stats.score_evaluations


def test_tight_threshold_is_admissible():
    """T_tight must upper-bound the score of every normalized function
    whose coefficients respect the per-list caps."""
    rng = np.random.default_rng(5)
    for _ in range(300):
        dims = int(rng.integers(2, 6))
        point = rng.random(dims)
        caps = rng.random(dims)
        bound = tight_threshold(tuple(point), tuple(caps))
        # Sample normalized weight vectors under the caps (rejection).
        for _ in range(30):
            w = rng.dirichlet(np.ones(dims))
            if np.all(w <= caps + 1e-12):
                assert float(w @ point) <= bound + 1e-9


def test_tight_threshold_not_looser_than_naive():
    rng = np.random.default_rng(6)
    for _ in range(200):
        dims = int(rng.integers(2, 7))
        point = tuple(rng.random(dims))
        caps = tuple(rng.random(dims))
        naive = sum(c * p for c, p in zip(caps, point))
        if sum(caps) >= 1.0:  # the regime the paper describes
            assert tight_threshold(point, caps) <= naive + 1e-12


def test_tight_threshold_exact_on_constructed_case():
    # point = (1, 0), caps allow 0.6 on dim 0: best unseen function puts
    # 0.6 there and wastes the rest -> bound 0.6.
    assert tight_threshold((1.0, 0.0), (0.6, 1.0)) == pytest.approx(0.6)
    # Budget exceeds caps on the good dim, remainder flows to dim 1.
    assert tight_threshold((1.0, 0.5), (0.6, 1.0)) == pytest.approx(
        0.6 * 1.0 + 0.4 * 0.5
    )


def test_alive_iteration_and_lookup():
    prefs = generate_preferences(10, 2, seed=65)
    index = FunctionIndex(prefs)
    index.remove(4)
    assert sorted(f.fid for f in index.alive_functions()) == [
        0, 1, 2, 3, 5, 6, 7, 8, 9
    ]
    assert index.alive_ids() == [0, 1, 2, 3, 5, 6, 7, 8, 9]
    assert index.function(5).fid == 5
    with pytest.raises(PreferenceError):
        index.function(4)
    assert 5 in index and 4 not in index
