"""Serving-cache correctness: cached results equal cold runs, and
invalidation hits exactly the affected keys."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import MatchingError
from repro.data import generate_independent
from repro.engine.cache import ResultCache, config_fingerprint, prefs_digest
from repro.prefs import LinearPreference, generate_preferences


def assignments(result):
    return sorted(
        (pair.function_id, pair.object_id, pair.score)
        for pair in result.pairs
    )


# ----------------------------------------------------------------------
# The LRU itself
# ----------------------------------------------------------------------
def test_lru_counts_hits_misses_and_evicts_in_order():
    cache = ResultCache(maxsize=2)
    assert cache.get("a") is None
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1       # refreshes a: b is now LRU
    cache.put("c", 3)                # evicts b
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    info = cache.info()
    assert info == {"hits": 3, "misses": 2, "evictions": 1,
                    "size": 2, "maxsize": 2}
    assert set(cache.keys()) == {"a", "c"}


def test_lru_size_zero_disables_caching():
    cache = ResultCache(maxsize=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0
    with pytest.raises(MatchingError):
        ResultCache(maxsize=-1)


def test_prefs_digest_is_content_based_for_linear_functions():
    a = [LinearPreference.normalized(0, [1.0, 2.0]),
         LinearPreference.normalized(1, [3.0, 1.0])]
    rebuilt = [LinearPreference.normalized(0, [1.0, 2.0]),
               LinearPreference.normalized(1, [3.0, 1.0])]
    assert prefs_digest(a) == prefs_digest(rebuilt)
    different = [LinearPreference.normalized(0, [2.0, 1.0]),
                 LinearPreference.normalized(1, [3.0, 1.0])]
    assert prefs_digest(a) != prefs_digest(different)
    assert prefs_digest(a) != prefs_digest(a[:1])


def test_prefs_digest_trusts_only_exact_linear_preferences():
    # A LinearPreference *subclass* may score with state beyond its
    # weight vector, and generic functions may carry a weights
    # attribute incidentally — content-addressing either would let two
    # different workloads collide on a key. Only the exact class is
    # content-keyed; everything else goes by identity.
    class Tweaked(LinearPreference):
        def __init__(self, fid, weights, power):
            super().__init__(fid, weights)
            self.power = power

    a = Tweaked(0, [0.5, 0.5], power=1.0)
    b = Tweaked(0, [0.5, 0.5], power=4.0)
    assert prefs_digest([a]) != prefs_digest([b])
    plain = LinearPreference(0, (0.5, 0.5))
    assert prefs_digest([plain]) == prefs_digest(
        [LinearPreference(0, (0.5, 0.5))]
    )
    assert prefs_digest([plain]) != prefs_digest([a])


def test_prefs_digest_pins_non_linear_functions_by_live_reference():
    # Generic (weight-less) functions digest by identity — and the key
    # must hold the object itself, not a bare id(): a live cache entry
    # then keeps the function alive, so its identity can never be
    # recycled onto a different function (which would serve a stale,
    # wrong matching).
    class Opaque:
        def __init__(self, fid):
            self.fid = fid

    function = Opaque(3)
    digest = prefs_digest([function])
    assert digest == prefs_digest([function])      # same object hits
    assert digest != prefs_digest([Opaque(3)])     # fresh object misses
    assert any(part[1].obj is function for part in digest)  # ref held


def test_unhashable_functions_cache_by_identity():
    # The identity wrapper makes even unhashable / content-equal
    # function objects safely cacheable: same object hits, fresh
    # object (however equal) misses.
    class Unhashable:
        __hash__ = None

        def __init__(self, fid):
            self.fid = fid

        def __eq__(self, other):
            return True  # pathologically equal to everything

    cache = ResultCache(maxsize=4)
    function = Unhashable(0)
    cache.put(prefs_digest([function]), "value")
    assert cache.get(prefs_digest([function])) == "value"
    assert cache.get(prefs_digest([Unhashable(0)])) is None


def test_config_fingerprint_depends_on_every_field():
    base = repro.MatchingConfig(backend="memory")
    assert config_fingerprint(base) == config_fingerprint(
        repro.MatchingConfig(backend="memory")
    )
    for overrides in (dict(algorithm="chain"), dict(shards=2),
                      dict(capacities={0: 2}), dict(cache_size=16),
                      dict(seed=1)):
        assert config_fingerprint(base) != config_fingerprint(
            base.replace(**overrides)
        ), overrides


# ----------------------------------------------------------------------
# Cached results are pair-identical to cold runs (property)
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    n_objects=st.integers(min_value=5, max_value=120),
    n_functions=st.integers(min_value=1, max_value=20),
    dims=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_cached_runs_equal_cold_runs(n_objects, n_functions, dims, seed):
    objects = generate_independent(n_objects, dims, seed=seed)
    prefs = generate_preferences(n_functions, dims, seed=seed + 1)
    cold = repro.match(objects, prefs, backend="memory")
    with repro.plan(backend="memory").prepare(objects) as prepared:
        warm = prepared.run(prefs)
        hit = prepared.run(prefs)
        assert hit is warm                       # served from cache
        assert assignments(warm) == assignments(cold)
        rebuilt = generate_preferences(n_functions, dims, seed=seed + 1)
        assert prepared.run(rebuilt) is warm     # content-keyed, not id


# ----------------------------------------------------------------------
# Invalidation: session events hit exactly the affected keys
# ----------------------------------------------------------------------
def workload(seed=110, n_objects=120, n_functions=8, dims=3):
    objects = generate_independent(n_objects, dims, seed=seed)
    prefs = generate_preferences(n_functions, dims, seed=seed + 1)
    return objects, prefs


def test_object_events_invalidate_and_serving_follows_the_session():
    objects, prefs = workload(seed=111)
    prepared = repro.plan(backend="memory").prepare(objects)
    before = prepared.run(prefs)
    session = prepared.open_session(prefs)

    # Deleting a matched object changes the served matching.
    victim = before.pairs[0].object_id
    session.delete_object(victim)
    assert prepared.objects_version == 1
    after = prepared.run(prefs)
    assert after is not before
    survivors = session.objects()
    cold = repro.match(survivors, prefs, backend="memory")
    assert assignments(after) == assignments(cold)
    assert victim not in {pair.object_id for pair in after.pairs}

    # Inserting invalidates again; serving tracks the insertion.
    session.insert_object(5_000, (0.99,) * objects.dims)
    assert prepared.objects_version == 2
    inserted = prepared.run(prefs)
    cold = repro.match(session.objects(), prefs, backend="memory")
    assert assignments(inserted) == assignments(cold)
    prepared.close()


def test_function_only_events_leave_the_cache_warm():
    # add/remove_function changes the session's own matching but not
    # what run(prefs) depends on: served results stay valid.
    objects, prefs = workload(seed=112)
    prepared = repro.plan(backend="memory").prepare(objects)
    session = prepared.open_session(prefs)
    before = prepared.run(prefs)
    session.add_function(
        LinearPreference.normalized(900, [1.0] * objects.dims)
    )
    session.remove_function(900)
    assert prepared.objects_version == 0
    assert prepared.run(prefs) is before  # still a cache hit


def test_invalidation_does_not_cross_prepared_instances():
    # Events on one prepared matching must not disturb another one
    # serving the same objects under another (or the same) plan.
    objects, prefs = workload(seed=113)
    touched = repro.plan(backend="memory").prepare(objects)
    untouched = repro.plan(backend="memory").prepare(objects)
    baseline = untouched.run(prefs)
    session = touched.open_session(prefs)
    session.delete_object(baseline.pairs[0].object_id)
    assert untouched.objects_version == 0
    assert untouched.run(prefs) is baseline  # still served from cache
    touched.close()
    untouched.close()


def test_capacity_change_lands_in_a_disjoint_key_space():
    # A config change is a new plan with a new fingerprint: results can
    # never be served across the change.
    objects, prefs = workload(seed=114)
    plain = repro.plan(backend="memory")
    capacitated = repro.plan(backend="memory", capacities={1: 2})
    assert plain.fingerprint != capacitated.fingerprint
    a = plain.prepare(objects).run(prefs)
    b = capacitated.prepare(objects).run(prefs)
    assert not a.is_capacitated and b.is_capacitated


def test_manual_invalidate_forces_a_recompute():
    objects, prefs = workload(seed=115)
    with repro.plan(backend="memory").prepare(objects) as prepared:
        first = prepared.run(prefs)
        prepared.invalidate()
        second = prepared.run(prefs)
        assert second is not first
        assert assignments(second) == assignments(first)


def test_cache_size_zero_serves_cold_every_time():
    objects, prefs = workload(seed=116)
    with repro.plan(backend="memory",
                    cache_size=0).prepare(objects) as prepared:
        first = prepared.run(prefs)
        second = prepared.run(prefs)
        assert second is not first
        assert assignments(second) == assignments(first)
        assert prepared.cache.info()["hits"] == 0


# ----------------------------------------------------------------------
# Service-level accounting
# ----------------------------------------------------------------------
def test_service_counts_hits_and_cold_runs():
    objects, prefs = workload(seed=117)
    other = generate_preferences(8, 3, seed=500)
    with repro.MatchingService(objects, backend="memory") as service:
        service.submit(prefs)
        service.submit(prefs)
        service.submit(other)
        stats = service.stats
        assert stats["requests"] == 3
        assert stats["cache_hits"] == 1
        assert stats["cold_runs"] == 2
        assert stats["stagings"] == 1


def test_service_rejects_plan_plus_config():
    objects, _ = workload(seed=118)
    with pytest.raises(MatchingError, match="not both"):
        repro.MatchingService(
            objects, plan=repro.plan(backend="memory"), backend="memory",
        )


def test_service_session_churn_is_served_correctly():
    objects, prefs = workload(seed=119)
    with repro.MatchingService(objects, backend="memory") as service:
        before = service.submit(prefs)
        session = service.open_session(prefs)
        session.delete_object(before.pairs[0].object_id)
        after = service.submit(prefs)
        cold = repro.match(session.objects(), prefs, backend="memory")
        assert assignments(after) == assignments(cold)
        assert service.stats["objects_version"] == 1
        assert service.stats["stagings"] == 2
