"""Clock (second-chance) buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage import ClockBufferPool, DiskManager, Page, make_buffer


def make_disk_with_pages(n, page_size=32):
    disk = DiskManager(page_size=page_size)
    ids = []
    for i in range(n):
        page_id = disk.allocate()
        disk.write_page(Page(page_id, page_size, bytes([i]) * 4))
        ids.append(page_id)
    disk.stats.reset()
    return disk, ids


def test_miss_then_hit():
    disk, ids = make_disk_with_pages(2)
    pool = ClockBufferPool(disk, capacity=2)
    pool.get_page(ids[0])
    pool.get_page(ids[0])
    assert disk.stats.page_reads == 1
    assert disk.stats.buffer_hits == 1


def test_second_chance_protects_referenced_pages():
    disk, ids = make_disk_with_pages(3)
    pool = ClockBufferPool(disk, capacity=2)
    pool.get_page(ids[0])
    pool.get_page(ids[1])
    # Re-reference page 0 so its bit is set; admitting page 2 must evict
    # page 1 (page 0 gets its second chance).
    pool.get_page(ids[0])
    pool.get_page(ids[2])
    assert pool.is_resident(ids[0])
    assert not pool.is_resident(ids[1])


def test_dirty_eviction_writes_back():
    disk, ids = make_disk_with_pages(3)
    pool = ClockBufferPool(disk, capacity=1)
    pool.put_page(Page(ids[0], 32, b"dirty"))
    pool.get_page(ids[1])  # forces the eviction of the dirty frame
    assert disk.stats.page_writes == 1
    assert disk.read_page(ids[0]).data == b"dirty"


def test_flush_and_clear():
    disk, ids = make_disk_with_pages(2)
    pool = ClockBufferPool(disk, capacity=2)
    pool.put_page(Page(ids[0], 32, b"x"))
    pool.flush()
    assert disk.read_page(ids[0]).data == b"x"
    pool.clear()
    assert pool.num_resident == 0


def test_discard_skips_writeback():
    disk, ids = make_disk_with_pages(1)
    pool = ClockBufferPool(disk, capacity=2)
    pool.put_page(Page(ids[0], 32, b"doomed"))
    pool.discard(ids[0])
    pool.flush()
    assert disk.stats.page_writes == 0


def test_resize_shrinks():
    disk, ids = make_disk_with_pages(4)
    pool = ClockBufferPool(disk, capacity=4)
    for page_id in ids:
        pool.get_page(page_id)
    pool.resize(2)
    assert pool.num_resident == 2


def test_validation():
    disk, _ = make_disk_with_pages(1)
    with pytest.raises(StorageError):
        ClockBufferPool(disk, capacity=0)
    pool = ClockBufferPool(disk, capacity=1)
    with pytest.raises(StorageError):
        pool.resize(0)


def test_make_buffer_factory():
    disk, _ = make_disk_with_pages(1)
    from repro.storage import BufferPool

    assert isinstance(make_buffer(disk, 4, "lru"), BufferPool)
    assert isinstance(make_buffer(disk, 4, "clock"), ClockBufferPool)
    with pytest.raises(StorageError):
        make_buffer(disk, 4, "fifo")


def test_clock_works_as_rtree_buffer():
    # Full integration: matcher runs unchanged behind a clock buffer.
    from repro.core import MatchingProblem, SkylineMatcher, greedy_reference_matching
    from repro.data import generate_independent
    from repro.prefs import generate_preferences
    from repro.rtree import DiskNodeStore, RTree

    objects = generate_independent(800, 3, seed=220)
    functions = generate_preferences(15, 3, seed=221)
    disk = DiskManager()
    staging = ClockBufferPool(disk, capacity=256)
    store = DiskNodeStore(3, disk=disk, buffer=staging)
    tree = RTree.bulk_load(store, 3, objects.items())
    staging.flush()
    store.buffer = ClockBufferPool(disk, capacity=8)
    disk.stats.reset()
    problem = MatchingProblem(
        objects, functions, tree, disk, store.buffer
    )
    matching = SkylineMatcher(problem).run()
    assert matching.as_set() == greedy_reference_matching(
        objects, functions
    ).as_set()
    assert disk.stats.io_accesses > 0
