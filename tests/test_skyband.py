"""K-skyband computation."""

import pytest

from repro.data import generate_anticorrelated, generate_independent
from repro.errors import ReproError
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree
from repro.skyline import (
    canonical_skyline_naive,
    compute_kskyband,
    compute_skyline,
    kskyband_naive,
)


def build(dataset, disk=False):
    store = DiskNodeStore(dataset.dims) if disk else MemoryNodeStore(8)
    return RTree.bulk_load(store, dataset.dims, dataset.items()), store


@pytest.mark.parametrize("generator,dims,k", [
    (generate_independent, 2, 1),
    (generate_independent, 2, 3),
    (generate_independent, 4, 5),
    (generate_anticorrelated, 3, 2),
])
def test_matches_naive_oracle(generator, dims, k):
    dataset = generator(400, dims, seed=340)
    tree, _ = build(dataset)
    band = compute_kskyband(tree, k)
    want = [oid for oid, _ in kskyband_naive(list(dataset.items()), k)]
    assert sorted(band) == want


def test_one_skyband_is_the_skyline():
    dataset = generate_independent(300, 3, seed=341)
    tree, _ = build(dataset)
    band = compute_kskyband(tree, 1)
    state = compute_skyline(tree)
    assert sorted(band) == sorted(state.ids())
    naive = canonical_skyline_naive(list(dataset.items()))
    assert sorted(band) == [oid for oid, _ in naive]


def test_skybands_are_nested():
    dataset = generate_independent(300, 3, seed=342)
    tree, _ = build(dataset)
    previous = set()
    for k in (1, 2, 4, 8):
        band = set(compute_kskyband(tree, k))
        assert previous <= band
        previous = band


def test_huge_k_returns_everything():
    dataset = generate_independent(50, 2, seed=343)
    tree, _ = build(dataset)
    band = compute_kskyband(tree, 1000)
    assert sorted(band) == dataset.ids


def test_duplicates_budget_each_other():
    tree = RTree(MemoryNodeStore(8), dims=2)
    for i in range(4):
        tree.insert(i, (0.7, 0.7))
    # k=2: the two lowest-id duplicates survive (each later one is
    # weakly dominated by all earlier ones).
    band = compute_kskyband(tree, 2)
    assert sorted(band) == [0, 1]
    items = [(i, (0.7, 0.7)) for i in range(4)]
    assert [oid for oid, _ in kskyband_naive(items, 2)] == [0, 1]


def test_invalid_k():
    dataset = generate_independent(10, 2, seed=344)
    tree, _ = build(dataset)
    with pytest.raises(ReproError):
        compute_kskyband(tree, 0)
    with pytest.raises(ReproError):
        kskyband_naive([], 0)


def test_skyband_prunes_io():
    dataset = generate_independent(5000, 3, seed=345)
    tree, store = build(dataset, disk=True)
    store.buffer.resize(4)
    store.buffer.clear()
    store.disk.stats.reset()
    compute_kskyband(tree, 2)
    assert store.disk.stats.page_reads < store.disk.num_pages / 2


def test_skyband_covers_capacitated_candidates():
    """Every object used by a capacity-k matching of unit-demand
    functions... more precisely: the top-k objects of any function lie
    in the k-skyband."""
    import numpy as np

    from repro.prefs import generate_preferences

    dataset = generate_independent(400, 3, seed=346)
    tree, _ = build(dataset)
    k = 3
    band = set(compute_kskyband(tree, k))
    for function in generate_preferences(20, 3, seed=347):
        scores = dataset.matrix @ np.asarray(function.weights)
        top_k_rows = np.argsort(-scores)[:k]
        top_k_ids = {dataset.ids[r] for r in top_k_rows}
        assert top_k_ids <= band, function.fid
