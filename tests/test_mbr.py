"""Unit tests for MBR geometry and score/dominance bounds."""

import pytest

from repro.errors import DimensionalityError, GeometryError
from repro.geometry import MBR


def box(lo, hi):
    return MBR(lo, hi)


def test_point_box():
    point = MBR.from_point((0.2, 0.7))
    assert point.is_point
    assert point.low == point.high == (0.2, 0.7)
    assert point.area() == 0.0


def test_invalid_corners():
    with pytest.raises(GeometryError):
        MBR((0.5, 0.5), (0.4, 0.6))
    with pytest.raises(DimensionalityError):
        MBR((0.1,), (0.2, 0.3))


def test_area_margin_center():
    b = box((0.0, 0.0), (0.5, 0.25))
    assert b.area() == pytest.approx(0.125)
    assert b.margin() == pytest.approx(0.75)
    assert b.center() == (0.25, 0.125)


def test_union_covers_both():
    a = box((0.0, 0.2), (0.3, 0.5))
    b = box((0.2, 0.0), (0.6, 0.3))
    u = a.union(b)
    assert u.low == (0.0, 0.0)
    assert u.high == (0.6, 0.5)
    assert u.contains(a) and u.contains(b)


def test_union_all():
    boxes = [MBR.from_point((x / 10, 1 - x / 10)) for x in range(11)]
    u = MBR.union_all(boxes)
    assert u.low == (0.0, 0.0)
    assert u.high == (1.0, 1.0)
    with pytest.raises(GeometryError):
        MBR.union_all([])


def test_intersects_and_overlap_area():
    a = box((0.0, 0.0), (0.5, 0.5))
    b = box((0.4, 0.4), (0.9, 0.9))
    c = box((0.6, 0.6), (0.8, 0.8))
    assert a.intersects(b)
    assert not a.intersects(c)
    assert a.overlap_area(b) == pytest.approx(0.01)
    assert a.overlap_area(c) == 0.0
    # Touching boxes intersect but overlap zero area.
    d = box((0.5, 0.0), (0.9, 0.5))
    assert a.intersects(d)
    assert a.overlap_area(d) == 0.0


def test_contains_point():
    b = box((0.1, 0.1), (0.4, 0.4))
    assert b.contains_point((0.1, 0.4))
    assert b.contains_point((0.25, 0.25))
    assert not b.contains_point((0.05, 0.2))
    with pytest.raises(DimensionalityError):
        b.contains_point((0.1,))


def test_enlargement():
    a = box((0.0, 0.0), (0.5, 0.5))
    inside = box((0.1, 0.1), (0.2, 0.2))
    assert a.enlargement(inside) == pytest.approx(0.0)
    outside = box((0.0, 0.0), (1.0, 0.5))
    assert a.enlargement(outside) == pytest.approx(0.25)


def test_upper_and_lower_score():
    b = box((0.2, 0.4), (0.6, 0.8))
    weights = (0.5, 0.5)
    assert b.upper_score(weights) == pytest.approx(0.7)
    assert b.lower_score(weights) == pytest.approx(0.3)
    # Every contained point's score lies between the bounds.
    for point in [(0.2, 0.4), (0.6, 0.8), (0.3, 0.7)]:
        score = 0.5 * point[0] + 0.5 * point[1]
        assert b.lower_score(weights) <= score <= b.upper_score(weights)


def test_mindist_to_best_is_l1_to_ideal():
    b = box((0.1, 0.1), (0.6, 0.9))
    assert b.mindist_to_best() == pytest.approx((1 - 0.6) + (1 - 0.9))
    ideal = MBR.from_point((1.0, 1.0))
    assert ideal.mindist_to_best() == 0.0


def test_dominated_by_point_prunes_whole_box():
    b = box((0.1, 0.1), (0.5, 0.5))
    assert b.dominated_by_point((0.5, 0.5))   # equality prunes (paper's
    assert b.dominated_by_point((0.9, 0.6))   # "equal or better")
    assert not b.dominated_by_point((0.4, 0.9))
    with pytest.raises(DimensionalityError):
        b.dominated_by_point((1.0,))


def test_equality_and_hash():
    a = box((0.0, 0.0), (1.0, 1.0))
    b = box((0.0, 0.0), (1.0, 1.0))
    assert a == b
    assert hash(a) == hash(b)
    assert a != box((0.0, 0.0), (1.0, 0.9))
    assert len({a, b}) == 1
