"""Freshness oracle: every boundary equals a cold recompute, everywhere.

The replay driver's own verification uses ``repro.match`` over a
structural oracle; this suite cross-checks the whole arrangement with
the *other* independent machine in the repository — the
zero-incrementality :class:`~repro.dynamic.RecomputeSession`, which
rebuilds the tree and rematches from scratch on every flush. At every
``advance()`` boundary of a replayed scenario:

1. the replayed session's matching must equal the recompute baseline's
   matching on the same event prefix, and
2. every request workload served at that boundary must equal a cold
   ``repro.match`` over the surviving population
   (:func:`~repro.dynamic.apply_events` on the same prefix) at the
   same clock,

across the repair-capable algorithms (``sb`` / ``bf`` / ``chain``) and
both storage backends (``memory`` / ``disk``). All three algorithms
compute the canonical stable matching, so a single divergence anywhere
is a serving-stack bug, not an algorithmic difference.
"""

import pytest

import repro
from repro.dynamic import RecomputeSession, apply_events
from repro.replay import ReplayDriver, TraceRequest, scenario_trace

SEED = 11
ALGORITHMS = ("sb", "bf", "chain")
BACKENDS = ("memory", "disk")


def _served_equals_cold_recompute(scenario, algorithm, backend):
    trace = scenario_trace(scenario, seed=SEED, scale=0.5)
    with ReplayDriver(trace, algorithm=algorithm, backend=backend,
                      verify=False) as driver:
        recompute = RecomputeSession(
            trace.objects, list(trace.functions),
            driver.service.plan.config,
        )
        fed = []
        cursor = 0
        boundaries = sorted({float(r.ts) for r in trace.records})
        for ts in boundaries:
            driver.advance(ts)
            while (cursor < len(trace.records)
                   and float(trace.records[cursor].ts) <= ts):
                record = trace.records[cursor]
                if not isinstance(record, TraceRequest):
                    recompute.submit(record.event)
                    fed.append(record.event)
                cursor += 1
            # (1) The incrementally repaired session == full recompute.
            assert driver.matching().as_set() == \
                recompute.matching().as_set(), (
                    f"{scenario}/{algorithm}/{backend}: session diverged "
                    f"from the recompute baseline at clock {ts}"
                )
            # (2) Every workload served at this boundary == a cold match
            # over the surviving population at the same clock.
            bursts = [r for r in trace.records
                      if isinstance(r, TraceRequest) and float(r.ts) == ts]
            if not bursts:
                continue
            surviving, _ = apply_events(
                trace.objects, list(trace.functions), fed,
            )
            for request in bursts:
                served = driver.service.submit(list(request.functions))
                truth = repro.match(
                    surviving, list(request.functions),
                    config=driver.service.plan.config,
                )
                assert served.as_set() == truth.as_set(), (
                    f"{scenario}/{algorithm}/{backend}: served result at "
                    f"clock {ts} diverged from a cold recompute"
                )
        assert recompute.recomputes > 0
        assert fed  # the scenario actually churned


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_flash_crowd_boundaries_match_cold_recompute(algorithm, backend):
    _served_equals_cold_recompute("flash-crowd", algorithm, backend)


@pytest.mark.parametrize("scenario", ["diurnal", "adversarial"])
def test_other_scenarios_match_cold_recompute(scenario):
    _served_equals_cold_recompute(scenario, "sb", "memory")
