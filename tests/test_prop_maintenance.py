"""Property test: both maintenance strategies admit identical members.

Section IV-B's plist-based ``update_after_removal`` and the re-traversal
baseline ``recompute_with_pruning`` are alternative implementations of
the same contract — after removing any batch of members, the refreshed
skylines must agree member for member, and both must equal the naive
oracle over the surviving pool. Randomized multi-member removal
schedules (sizes, duplicates-heavy data, exhaustion) probe the corner
cases; SearchStats plumbing is asserted on both code paths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree import MemoryNodeStore, RTree
from repro.skyline import (
    canonical_skyline_naive,
    compute_skyline,
    recompute_with_pruning,
    update_after_removal,
)
from repro.storage.stats import SearchStats

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

# Coarse coordinates force exact ties and duplicate points.
coarse = st.integers(min_value=0, max_value=4).map(lambda v: v / 4)


def point_lists(coordinate, dims=3, min_size=6, max_size=48):
    return st.lists(
        st.tuples(*([coordinate] * dims)),
        min_size=min_size, max_size=max_size,
    )


def build_tree(items, dims=3, fanout=4):
    tree = RTree(MemoryNodeStore(fanout), dims=dims)
    for object_id, point in items:
        tree.insert(object_id, point)
    return tree


def oracle_ids(pool):
    return [
        oid for oid, _ in canonical_skyline_naive(sorted(pool.items()))
    ]


def run_schedule(points, batch_picks):
    """Drive both strategies through the same multi-member removals."""
    items = list(enumerate(points))
    dims = len(points[0])
    tree_plist = build_tree(items, dims=dims)
    tree_baseline = build_tree(items, dims=dims)
    stats_plist = SearchStats()
    stats_baseline = SearchStats()
    state_plist = compute_skyline(tree_plist, stats=stats_plist)
    state_baseline = compute_skyline(tree_baseline, stats=stats_baseline)
    assert sorted(state_plist.ids()) == sorted(state_baseline.ids())

    pool = dict(items)
    excluded = set()
    for picks in batch_picks:
        if not len(state_plist):
            break
        members = state_plist.ids()
        batch = sorted({members[pick % len(members)] for pick in picks})
        orphans = []
        for victim in batch:
            del pool[victim]
            excluded.add(victim)
            orphans.extend(state_plist.remove(victim))
            state_baseline.remove(victim)
        admitted_plist = update_after_removal(
            tree_plist, state_plist, orphans, stats=stats_plist,
        )
        admitted_baseline = recompute_with_pruning(
            tree_baseline, state_baseline, excluded, stats=stats_baseline,
        )
        want = oracle_ids(pool)
        assert sorted(state_plist.ids()) == want
        assert sorted(state_baseline.ids()) == want
        for object_id in admitted_plist:
            assert object_id in state_plist
        for object_id in admitted_baseline:
            assert object_id in state_baseline
    return stats_plist, stats_baseline


@settings(max_examples=40, deadline=None)
@given(
    point_lists(unit),
    st.lists(
        st.lists(st.integers(min_value=0, max_value=1000),
                 min_size=1, max_size=5),
        min_size=1, max_size=8,
    ),
)
def test_multi_member_removals_agree_on_smooth_data(points, batch_picks):
    run_schedule(points, batch_picks)


@settings(max_examples=40, deadline=None)
@given(
    point_lists(coarse, dims=2),
    st.lists(
        st.lists(st.integers(min_value=0, max_value=1000),
                 min_size=1, max_size=4),
        min_size=1, max_size=8,
    ),
)
def test_multi_member_removals_agree_with_heavy_ties(points, batch_picks):
    run_schedule(points, batch_picks)


def test_search_stats_plumbing_on_both_strategies():
    """Both maintenance paths must report their CPU work."""
    points = [
        ((i * 37) % 100 / 100.0, (i * 61) % 100 / 100.0, (i * 89) % 100 / 100.0)
        for i in range(120)
    ]
    stats_plist, stats_baseline = run_schedule(
        points, [[0, 1, 2]] * 6,
    )
    for stats in (stats_plist, stats_baseline):
        assert stats.heap_pushes > 0
        assert stats.heap_pops > 0
        assert stats.dominance_checks > 0
    # The re-traversal baseline restarts from the root every batch: it
    # must pay strictly more dominance work than plist maintenance.
    assert (
        stats_baseline.dominance_checks > stats_plist.dominance_checks
    )


def test_removal_to_exhaustion_agrees():
    points = [((i % 7) / 6.0, ((i * 3) % 7) / 6.0) for i in range(30)]
    items = list(enumerate(points))
    tree_plist = build_tree(items, dims=2)
    tree_baseline = build_tree(items, dims=2)
    state_plist = compute_skyline(tree_plist)
    state_baseline = compute_skyline(tree_baseline)
    excluded = set()
    while len(state_plist):
        batch = state_plist.ids()[:2]
        orphans = []
        for victim in batch:
            excluded.add(victim)
            orphans.extend(state_plist.remove(victim))
            state_baseline.remove(victim)
        update_after_removal(tree_plist, state_plist, orphans)
        recompute_with_pruning(tree_baseline, state_baseline, excluded)
        assert sorted(state_plist.ids()) == sorted(state_baseline.ids())
    assert len(state_baseline) == 0
    assert len(excluded) == 30
