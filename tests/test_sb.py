"""SB — the paper's skyline-based matcher — and its variants."""

import pytest

from repro.core import MatchingProblem, SkylineMatcher, greedy_reference_matching
from repro.data import (
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
    generate_zillow,
)
from repro.errors import MatchingError
from repro.prefs import generate_preferences


def make_problem(n=400, dims=3, nf=25, generator=generate_independent,
                 seed=140):
    objects = generator(n, dims, seed=seed)
    functions = generate_preferences(nf, dims, seed=seed + 1)
    return MatchingProblem.build(objects, functions)


@pytest.mark.parametrize("generator", [
    generate_independent,
    generate_anticorrelated,
    generate_correlated,
])
def test_matches_greedy_reference(generator):
    problem = make_problem(generator=generator)
    matching = SkylineMatcher(problem).run()
    reference = greedy_reference_matching(problem.objects, problem.functions)
    assert matching.as_set() == reference.as_set()
    # Per-pair scores are bitwise identical (emission *order* differs:
    # SB emits all currently-mutual pairs per round, which is a
    # subsequence — not a prefix — of the greedy order).
    assert {p.function_id: p.score for p in matching.pairs} == {
        p.function_id: float(p.score) for p in reference.pairs
    }


def test_zillow_workload():
    objects = generate_zillow(500, seed=141)
    functions = generate_preferences(30, 5, seed=142)
    problem = MatchingProblem.build(objects, functions)
    matching = SkylineMatcher(problem).run()
    assert matching.as_set() == greedy_reference_matching(
        objects, functions
    ).as_set()


def test_sb_never_mutates_the_tree():
    problem = make_problem()
    SkylineMatcher(problem).run()
    assert problem.tree.num_objects == 400  # objects only leave the skyline


def test_multi_pair_fewer_rounds_than_single():
    problem_a = make_problem(nf=40, seed=143)
    problem_b = make_problem(nf=40, seed=143)
    multi = SkylineMatcher(problem_a, multi_pair=True)
    single = SkylineMatcher(problem_b, multi_pair=False)
    matched_multi = multi.run()
    matched_single = single.run()
    assert matched_multi.as_set() == matched_single.as_set()
    assert multi.rounds < single.rounds
    assert single.rounds == len(matched_single)  # one pair per round


def test_pairs_within_round_in_canonical_order():
    problem = make_problem(nf=40, seed=144)
    pairs = list(SkylineMatcher(problem).pairs())
    for earlier, later in zip(pairs, pairs[1:]):
        if earlier.round == later.round:
            assert (-earlier.score, earlier.function_id, earlier.object_id) < (
                -later.score, later.function_id, later.object_id
            )


@pytest.mark.parametrize("kwargs", [
    {"maintenance": "retraversal"},
    {"threshold": "naive"},
    {"cache_best": False},
    {"multi_pair": False, "maintenance": "retraversal"},
])
def test_all_variants_identical_matching(kwargs):
    problem_a = make_problem(generator=generate_anticorrelated, seed=145)
    problem_b = make_problem(generator=generate_anticorrelated, seed=145)
    default = SkylineMatcher(problem_a).run()
    variant = SkylineMatcher(problem_b, **kwargs).run()
    assert default.as_set() == variant.as_set()


def test_plist_maintenance_does_fewer_io_than_retraversal():
    problem_a = make_problem(n=2000, nf=60, seed=146)
    problem_b = make_problem(n=2000, nf=60, seed=146)
    SkylineMatcher(problem_a, maintenance="plist").run()
    io_plist = problem_a.io_stats.io_accesses
    SkylineMatcher(problem_b, maintenance="retraversal").run()
    io_retraversal = problem_b.io_stats.io_accesses
    assert io_plist < io_retraversal


def test_invalid_maintenance_mode():
    problem = make_problem(n=10, nf=2)
    with pytest.raises(MatchingError):
        SkylineMatcher(problem, maintenance="rebuild")


def test_more_functions_than_objects():
    objects = generate_independent(12, 3, seed=147)
    functions = generate_preferences(30, 3, seed=148)
    problem = MatchingProblem.build(objects, functions)
    matching = SkylineMatcher(problem).run()
    assert len(matching) == 12
    assert len(matching.unmatched_functions) == 18
    assert matching.as_set() == greedy_reference_matching(
        objects, functions
    ).as_set()


def test_single_function_gets_its_top1():
    import numpy as np

    objects = generate_independent(200, 3, seed=149)
    functions = generate_preferences(1, 3, seed=150)
    problem = MatchingProblem.build(objects, functions)
    matching = SkylineMatcher(problem).run()
    scores = objects.matrix @ np.asarray(functions[0].weights)
    assert matching.pairs[0].object_id == int(np.argmax(scores))


def test_empty_sides():
    problem = MatchingProblem.build(generate_independent(5, 2, seed=151), [])
    assert len(SkylineMatcher(problem).run()) == 0
    problem = MatchingProblem.build(
        generate_independent(0, 2, seed=152),
        generate_preferences(4, 2, seed=153),
    )
    matching = SkylineMatcher(problem).run()
    assert len(matching) == 0
    assert len(matching.unmatched_functions) == 4


def test_duplicate_objects_matched_to_distinct_functions():
    from repro.data import Dataset

    # Five identical top objects: SB must hand them out one per function.
    vectors = [[0.9, 0.9]] * 5 + [[0.1, 0.1]] * 5
    objects = Dataset(vectors)
    functions = generate_preferences(5, 2, seed=154)
    problem = MatchingProblem.build(objects, functions)
    matching = SkylineMatcher(problem).run()
    assert len(matching) == 5
    assert {p.object_id for p in matching.pairs} == {0, 1, 2, 3, 4}
    assert matching.as_set() == greedy_reference_matching(
        objects, functions
    ).as_set()


def test_reverse_top1_queries_counted():
    problem = make_problem()
    matcher = SkylineMatcher(problem)
    matcher.run()
    assert matcher.reverse_top1_queries > 0


def test_cache_reduces_reverse_queries():
    problem_a = make_problem(nf=50, seed=155)
    problem_b = make_problem(nf=50, seed=155)
    cached = SkylineMatcher(problem_a, cache_best=True)
    uncached = SkylineMatcher(problem_b, cache_best=False)
    cached.run()
    uncached.run()
    assert cached.reverse_top1_queries < uncached.reverse_top1_queries
