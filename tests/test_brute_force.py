"""Brute Force matcher (Section III-A)."""

import pytest

from repro.core import BruteForceMatcher, MatchingProblem, greedy_reference_matching
from repro.data import generate_anticorrelated, generate_independent
from repro.errors import MatchingError
from repro.prefs import generate_preferences


def make_problem(n=400, dims=3, nf=25, generator=generate_independent,
                 seed=110):
    objects = generator(n, dims, seed=seed)
    functions = generate_preferences(nf, dims, seed=seed + 1)
    return MatchingProblem.build(objects, functions)


def test_matches_greedy_reference():
    problem = make_problem()
    matching = BruteForceMatcher(problem).run()
    reference = greedy_reference_matching(problem.objects, problem.functions)
    assert matching.as_set() == reference.as_set()
    assert [p.score for p in matching.pairs] == [
        p.score for p in reference.pairs
    ]


def test_pairs_emitted_in_descending_canonical_order():
    problem = make_problem(generator=generate_anticorrelated, seed=111)
    pairs = list(BruteForceMatcher(problem).pairs())
    keys = [(-p.score, p.function_id, p.object_id) for p in pairs]
    assert keys == sorted(keys)


def test_progressive_emission():
    # pairs() must be a generator: the first pair arrives without
    # completing the whole matching.
    problem = make_problem()
    stream = BruteForceMatcher(problem).pairs()
    first = next(stream)
    reference = greedy_reference_matching(problem.objects, problem.functions)
    assert first.function_id == reference.pairs[0].function_id
    assert first.object_id == reference.pairs[0].object_id


def test_deletion_removes_objects_from_tree():
    problem = make_problem(n=300, nf=20)
    BruteForceMatcher(problem, deletion_mode="delete").run()
    assert problem.tree.num_objects == 280


def test_filter_mode_same_matching_no_tree_mutation():
    problem_a = make_problem(seed=112)
    problem_b = make_problem(seed=112)
    matched_a = BruteForceMatcher(problem_a, deletion_mode="delete").run()
    matched_b = BruteForceMatcher(problem_b, deletion_mode="filter").run()
    assert matched_a.as_set() == matched_b.as_set()
    assert problem_b.tree.num_objects == 400  # untouched


def test_invalid_deletion_mode():
    problem = make_problem(n=20, nf=2)
    with pytest.raises(MatchingError):
        BruteForceMatcher(problem, deletion_mode="purge")


def test_more_functions_than_objects():
    objects = generate_independent(10, 2, seed=113)
    functions = generate_preferences(25, 2, seed=114)
    problem = MatchingProblem.build(objects, functions)
    matching = BruteForceMatcher(problem).run()
    assert len(matching) == 10
    assert len(matching.unmatched_functions) == 15
    reference = greedy_reference_matching(objects, functions)
    assert matching.as_set() == reference.as_set()
    assert sorted(matching.unmatched_functions) == sorted(
        reference.unmatched_functions
    )


def test_no_functions():
    problem = MatchingProblem.build(
        generate_independent(10, 2, seed=115), []
    )
    matching = BruteForceMatcher(problem).run()
    assert len(matching) == 0


def test_no_objects():
    problem = MatchingProblem.build(
        generate_independent(0, 2, seed=116),
        generate_preferences(5, 2, seed=117),
    )
    matching = BruteForceMatcher(problem).run()
    assert len(matching) == 0
    assert len(matching.unmatched_functions) == 5


def test_top1_search_count_at_least_one_per_function():
    problem = make_problem(n=300, nf=30)
    matcher = BruteForceMatcher(problem)
    matcher.run()
    assert matcher.top1_searches >= 30  # |F| initial searches minimum
