"""Workload generators: determinism, validity, mixes, and the replay oracle."""

import pytest

import repro
from repro.dynamic import (
    AddFunction,
    DeleteObject,
    InsertObject,
    MIXED_CHURN,
    OBJECT_CHURN,
    PREFERENCE_CHURN,
    RemoveFunction,
    UpdateMix,
    apply_events,
    events_for_ratio,
    generate_events,
)
from repro.errors import ReproError


@pytest.fixture(scope="module")
def population():
    objects = repro.generate_independent(100, 3, seed=1)
    functions = repro.generate_preferences(20, 3, seed=2)
    return objects, functions


def test_streams_are_deterministic(population):
    objects, functions = population
    a = generate_events(objects, functions, 50, seed=7)
    b = generate_events(objects, functions, 50, seed=7)
    assert a == b
    c = generate_events(objects, functions, 50, seed=8)
    assert a != c


def test_streams_are_always_valid(population):
    objects, functions = population
    events = generate_events(objects, functions, 400, seed=9)
    assert len(events) == 400
    live_objects = set(objects.ids)
    live_functions = {f.fid for f in functions}
    for event in events:
        if isinstance(event, InsertObject):
            assert event.object_id not in live_objects
            assert len(event.point) == objects.dims
            assert all(0.0 <= v <= 1.0 for v in event.point)
            live_objects.add(event.object_id)
        elif isinstance(event, DeleteObject):
            assert event.object_id in live_objects
            live_objects.discard(event.object_id)
        elif isinstance(event, AddFunction):
            assert event.function.fid not in live_functions
            live_functions.add(event.function.fid)
        else:
            assert event.function_id in live_functions
            live_functions.discard(event.function_id)


def test_single_sided_mixes(population):
    objects, functions = population
    for event in generate_events(objects, functions, 60, mix=OBJECT_CHURN,
                                 seed=3):
        assert isinstance(event, (InsertObject, DeleteObject))
    for event in generate_events(objects, functions, 60,
                                 mix=PREFERENCE_CHURN, seed=4):
        assert isinstance(event, (AddFunction, RemoveFunction))


def test_departures_fall_back_to_arrivals_when_empty():
    objects = repro.generate_independent(2, 2, seed=5)
    functions = repro.generate_preferences(1, 2, seed=6)
    events = generate_events(objects, functions, 80,
                             mix=UpdateMix(0.0, 1.0, 0.0, 1.0), seed=7)
    assert len(events) == 80  # inserts/adds fill in once sides drain
    apply_events(objects, functions, events)  # replay never raises


def test_insert_pool_supplies_points(population):
    objects, functions = population
    pool = repro.generate_anticorrelated(32, 3, seed=11)
    events = generate_events(objects, functions, 120, mix=OBJECT_CHURN,
                             seed=12, insert_pool=pool)
    pool_points = {point for _, point in pool.items()}
    inserted = [e.point for e in events if isinstance(e, InsertObject)]
    assert inserted and all(point in pool_points for point in inserted)


def test_apply_events_replays_correctly(population):
    objects, functions = population
    events = [
        DeleteObject(0),
        InsertObject(500, (0.5, 0.5, 0.5)),
        AddFunction(repro.LinearPreference(900, (0.2, 0.3, 0.5))),
        RemoveFunction(functions[0].fid),
    ]
    surviving, prefs = apply_events(objects, functions, events)
    assert 0 not in surviving
    assert surviving.vector(500) == (0.5, 0.5, 0.5)
    fids = [f.fid for f in prefs]
    assert 900 in fids and functions[0].fid not in fids
    assert len(surviving) == len(objects)  # one out, one in


def test_events_for_ratio(population):
    objects, _ = population
    assert events_for_ratio(objects, 0.05) == 5
    assert events_for_ratio(objects, 0.0) == 1  # floor of one event
    with pytest.raises(ReproError):
        events_for_ratio(objects, -0.1)


def test_mix_validation():
    with pytest.raises(ReproError):
        UpdateMix(-1.0, 0.0, 0.0, 0.0).weights()
    with pytest.raises(ReproError):
        UpdateMix(0.0, 0.0, 0.0, 0.0).weights()
    assert sum(MIXED_CHURN.weights()) == pytest.approx(1.0)


def test_negative_event_count_rejected(population):
    objects, functions = population
    with pytest.raises(ReproError):
        generate_events(objects, functions, -1)


# ----------------------------------------------------------------------
# Timestamps (the replay layer's ordering key)
# ----------------------------------------------------------------------
def test_default_ts_is_zero_and_streams_are_unchanged(population):
    """Old call sites keep getting byte-identical streams: ``ts`` is a
    trailing default, and without ``rate`` every event carries 0.0."""
    objects, functions = population
    events = generate_events(objects, functions, 50, seed=7)
    assert all(event.ts == 0.0 for event in events)
    # The payload (everything but ts) matches a pre-ts-era stream:
    # determinism pins the rng, so any drift would show up here.
    again = generate_events(objects, functions, 50, seed=7,
                            start_ts=100.0)  # start_ts alone is inert
    assert [type(e) for e in again] == [type(e) for e in events]


def test_rate_assigns_strictly_increasing_timestamps(population):
    objects, functions = population
    events = generate_events(objects, functions, 40, seed=7,
                             start_ts=5.0, rate=4.0)
    stamps = [event.ts for event in events]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)  # strictly increasing
    assert stamps[0] == pytest.approx(5.0 + 1 / 4.0)
    assert stamps[-1] == pytest.approx(5.0 + 40 / 4.0)


def test_rate_does_not_perturb_the_event_payloads(population):
    """Stamping is orthogonal: same seed, same events, only ts differs."""
    import dataclasses

    objects, functions = population
    plain = generate_events(objects, functions, 30, seed=13)
    stamped = generate_events(objects, functions, 30, seed=13, rate=2.0)
    assert [dataclasses.replace(e, ts=0.0) for e in stamped] == plain


def test_equal_timestamps_keep_submission_order(population):
    """Sessions apply events in submission order; equal (default) ts
    must not reorder anything, so replaying both streams agrees."""
    objects, functions = population
    events = generate_events(objects, functions, 60, seed=21)  # all ts=0
    direct = apply_events(objects, functions, events)
    stable_sorted = sorted(events, key=lambda event: event.ts)
    assert stable_sorted == events  # sorted() is stable on equal keys
    replayed = apply_events(objects, functions, stable_sorted)
    assert dict(direct[0].items()) == dict(replayed[0].items())
    assert direct[1] == replayed[1]


def test_invalid_rate_rejected(population):
    objects, functions = population
    for bad in (0.0, -1.0):
        with pytest.raises(ReproError):
            generate_events(objects, functions, 5, rate=bad)
