"""The repo passes its own linter — the tier-1 enforcement hook.

This is the test that makes ``repro.lint`` load-bearing: a new lock
violation, blocking call in a coroutine, unpicklable boundary type,
frozen-type mutation, or rotted export anywhere under the default
targets fails the ordinary test run, not just a separate CI job.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint import Baseline, available_rules, run_lint
from repro.lint.cli import BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Rules whose baseline must stay empty: no grandfathered concurrency
#: or serialization debt, ever (ISSUE acceptance criterion). The
#: whole-program rules joined the set the day they landed — the repo
#: was cleaned in the same change, so they start with zero debt too.
ZERO_BASELINE_RULES = {
    "lock-guard", "async-safety", "picklability", "frozen-mutation",
    "lock-cycle", "determinism", "exception-contract", "wire-schema",
}


def test_repo_is_lint_clean():
    report = run_lint(
        baseline_path=REPO_ROOT / BASELINE_NAME, root=REPO_ROOT,
    )
    assert report.files_checked > 100
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"new lint findings:\n{rendered}"
    assert not report.stale_baseline
    stale = "\n".join(s.render() for s in report.stale_suppressions)
    assert not report.stale_suppressions, (
        f"suppression comments that silence nothing:\n{stale}"
    )


def test_concurrency_rules_have_no_baselined_debt():
    baseline = Baseline.load(REPO_ROOT / BASELINE_NAME)
    leftover = [
        key for key in baseline.stale_keys()
        if key[0] in ZERO_BASELINE_RULES
    ]
    assert not leftover, (
        f"baselined debt for zero-tolerance rules: {leftover}"
    )


def test_rule_registry_is_complete():
    assert set(available_rules()) == {
        "lock-guard", "lock-order", "async-safety", "picklability",
        "frozen-mutation", "api-surface", "lock-cycle", "determinism",
        "exception-contract", "wire-schema",
    }


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in
        (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if part
    )
    return env


def test_cli_module_entry_point_is_clean(tmp_path):
    json_path = tmp_path / "findings.json"
    completed = subprocess.run(
        [sys.executable, "-m", "repro.lint", "-q",
         "--json", str(json_path)],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=300,
        env=_subprocess_env(),
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert completed.stdout.strip().startswith("OK:")
    payload = json.loads(json_path.read_text())
    assert payload["ok"] is True


def test_list_rules_catalog():
    completed = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        env=_subprocess_env(),
    )
    assert completed.returncode == 0
    for rule in available_rules():
        assert rule in completed.stdout
