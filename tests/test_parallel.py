"""The sharded parallel layer: partitioning, executors, facade plumbing."""

import pytest

import repro
from repro import MatchingConfig, MatchingEngine, available_executors
from repro.data import generate_independent
from repro.errors import MatchingError
from repro.parallel import (
    ShardedMatcher,
    hilbert_ranges,
    is_sharded_algorithm,
    run_shard_tasks,
)
from repro.prefs import generate_preferences
from repro.rtree.hilbert import hilbert_key_for_point
from repro.storage import SearchStats


def tiny_workload(n_objects=300, n_functions=12, dims=3, seed=70):
    objects = generate_independent(n_objects, dims, seed=seed)
    functions = generate_preferences(n_functions, dims, seed=seed + 1)
    return objects, functions


def assignments(result):
    return sorted(
        (pair.function_id, pair.object_id, pair.score)
        for pair in result.pairs
    )


# ----------------------------------------------------------------------
# Hilbert partitioning
# ----------------------------------------------------------------------
def test_hilbert_ranges_partition_the_items():
    objects, _ = tiny_workload(n_objects=101)
    items = list(objects.items())
    parts = hilbert_ranges(items, 4)
    assert len(parts) == 4
    # Near-equal cardinalities and a complete, disjoint cover.
    sizes = [len(part) for part in parts]
    assert max(sizes) - min(sizes) <= 1
    flattened = [object_id for part in parts for object_id, _ in part]
    assert sorted(flattened) == sorted(object_id for object_id, _ in items)
    assert len(set(flattened)) == len(items)


def test_hilbert_ranges_are_contiguous_in_hilbert_order():
    objects, _ = tiny_workload(n_objects=64)
    parts = hilbert_ranges(list(objects.items()), 4)
    keys = [
        [hilbert_key_for_point(point) for _, point in part]
        for part in parts
    ]
    # Every shard's key range precedes the next shard's.
    for left, right in zip(keys, keys[1:]):
        if left and right:
            assert max(left) <= min(right)


def test_hilbert_ranges_more_shards_than_items():
    objects, _ = tiny_workload(n_objects=3)
    parts = hilbert_ranges(list(objects.items()), 10)
    assert len(parts) == 10
    assert sum(len(part) for part in parts) == 3
    assert all(len(part) <= 1 for part in parts)


def test_hilbert_ranges_deterministic_and_validating():
    objects, _ = tiny_workload(n_objects=40)
    items = list(objects.items())
    assert hilbert_ranges(items, 3) == hilbert_ranges(list(reversed(items)), 3)
    with pytest.raises(MatchingError, match="shards"):
        hilbert_ranges(items, 0)


# ----------------------------------------------------------------------
# Config + registry surface
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [
    dict(shards=0),
    dict(shards=-2),
    dict(executor="gpu"),
    dict(max_workers=0),
])
def test_parallel_config_validation(bad):
    with pytest.raises(MatchingError):
        MatchingConfig(**bad)


def test_available_executors():
    assert set(available_executors()) == {"process", "thread", "serial",
                                          "remote"}


def test_sharded_algorithm_registered():
    assert "sharded-sb" in repro.available_algorithms()
    assert is_sharded_algorithm("sharded-sb")
    assert is_sharded_algorithm("ssb")
    assert is_sharded_algorithm("parallel-sb")
    assert not is_sharded_algorithm("sb")


def test_run_shard_tasks_rejects_unknown_executor():
    with pytest.raises(MatchingError, match="executor"):
        run_shard_tasks([], executor="gpu")
    assert run_shard_tasks([], executor="serial") == []


# ----------------------------------------------------------------------
# Facade plumbing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_match_with_shards_equals_single_process(executor):
    objects, functions = tiny_workload(seed=71)
    single = repro.match(objects, functions, backend="memory")
    sharded = repro.match(
        objects, functions, backend="memory",
        shards=3, executor=executor,
    )
    assert assignments(sharded) == assignments(single)
    assert sharded.algorithm == "sharded-sb"
    assert sharded.stats["shards_used"] == 3


def test_match_by_sharded_algorithm_name():
    objects, functions = tiny_workload(seed=72)
    single = repro.match(objects, functions, backend="memory")
    named = repro.match(
        objects, functions, backend="memory",
        algorithm="sharded-sb", executor="serial",
    )
    # Selecting the algorithm by name opts into the default fan-out.
    assert named.stats["shards_used"] > 1
    assert assignments(named) == assignments(single)


def test_engine_create_matcher_routes_to_sharded():
    objects, functions = tiny_workload(seed=73)
    engine = MatchingEngine(backend="memory", shards=4, executor="serial")
    problem = engine.build_problem(objects, functions)
    matcher = engine.create_matcher(problem)
    assert isinstance(matcher, ShardedMatcher)
    assert matcher.base_algorithm == "sb"
    pairs = list(matcher.pairs())
    single = repro.match(objects, functions, backend="memory")
    assert sorted((p.function_id, p.object_id, p.score) for p in pairs) == \
        assignments(single)


def test_sharded_io_is_aggregated_across_shards():
    objects, functions = tiny_workload(seed=74)
    single = repro.match(objects, functions, algorithm="sb", backend="disk")
    sharded = repro.match(objects, functions, backend="disk",
                          shards=4, executor="serial")
    assert assignments(sharded) == assignments(single)
    # Workers simulate their own disks; the result must see their I/O.
    assert sharded.io_accesses > 0


def test_sharded_search_stats_are_aggregated():
    objects, functions = tiny_workload(seed=75)
    engine = MatchingEngine(backend="memory", shards=3, executor="serial")
    problem = engine.build_problem(objects, functions)
    stats = SearchStats()
    matcher = engine.create_matcher(problem, search_stats=stats)
    assert list(matcher.pairs())
    assert stats.dominance_checks > 0
    assert stats.score_evaluations > 0


def test_staged_reuse_survives_sharded_runs():
    objects, functions = tiny_workload(seed=76)
    engine = MatchingEngine(backend="memory", shards=3, executor="serial")
    first = engine.match(objects, functions)
    second = engine.match(objects, functions)
    assert assignments(first) == assignments(second)
    assert engine.stagings == 1  # the parent problem was reused


def test_sharded_create_matcher_rejects_base_overrides():
    objects, functions = tiny_workload(seed=69)
    engine = MatchingEngine(backend="memory", shards=2, executor="serial")
    problem = engine.build_problem(objects, functions)
    with pytest.raises(MatchingError, match="not supported with sharded"):
        engine.create_matcher(problem, on_round=lambda *args: None)
    # Sharding-level overrides still work.
    matcher = engine.create_matcher(problem, executor="serial", shards=3)
    assert matcher.shards == 3


def test_sharded_stats_always_report_full_counter_set():
    # One object: the degenerate delegation path, where every sharded
    # counter is zero — the keys must exist anyway.
    objects, functions = tiny_workload(n_objects=1, seed=68)
    result = repro.match(objects, functions, backend="memory",
                         shards=4, executor="serial")
    assert result.stats["shards_used"] == 1
    assert result.stats["merge_displaced"] == 0
    assert result.stats["repair_chains"] == 0
    assert result.stats["repair_steals"] == 0


def test_open_session_rejects_sharded_configs():
    objects, functions = tiny_workload(seed=77)
    with pytest.raises(MatchingError, match="single-process"):
        repro.open_session(objects, functions, shards=4)
    with pytest.raises(MatchingError, match="repair"):
        repro.open_session(objects, functions, algorithm="sharded-sb")


# ----------------------------------------------------------------------
# Parent-problem bulk load is skipped on the sharded path
# ----------------------------------------------------------------------
def test_sharded_match_skips_parent_bulk_load(monkeypatch):
    # The merge/repair pass reads only problem.objects, so the serving
    # pipeline stages the parent problem *deferred*: only the K shard
    # trees are ever bulk-loaded — and the result stays pair-identical.
    objects, functions = tiny_workload(seed=66)
    single = repro.match(objects, functions, backend="memory")

    from repro.rtree import RTree

    loads = []
    original = RTree.bulk_load.__func__

    def counting_bulk_load(cls, store, dims, items, **kwargs):
        items = list(items)
        loads.append(len(items))
        return original(cls, store, dims, items, **kwargs)

    monkeypatch.setattr(RTree, "bulk_load",
                        classmethod(counting_bulk_load))
    sharded = repro.match(objects, functions, backend="memory",
                          shards=3, executor="serial")
    assert assignments(sharded) == assignments(single)
    # Three shard trees, no parent tree: 3 loads covering |O| once.
    assert len(loads) == 3
    assert sum(loads) == len(objects)


def test_engine_sharded_serving_reuses_pool_and_shard_trees():
    objects, _ = tiny_workload(seed=67)
    engine = MatchingEngine(backend="memory", shards=3, executor="thread")
    reference = MatchingEngine(backend="memory")
    prefs = generate_preferences(10, 3, seed=400)
    for round_number in range(5):
        warm = engine.match(objects, prefs)
        assert assignments(warm) == assignments(
            reference.match(objects, prefs)
        )
    prepared = engine._prepared
    assert not prepared.parent_tree_built
    # One cold fan-out, then four cache hits — the pool spawned at most
    # once and the shard trees were staged exactly once.
    assert prepared.pool.spawn_count <= 1
    assert prepared.cache.info()["hits"] == 4


# ----------------------------------------------------------------------
# ShardedMatcher guards
# ----------------------------------------------------------------------
def test_sharded_matcher_rejects_non_canonical_base():
    objects, functions = tiny_workload(seed=78)
    engine = MatchingEngine(backend="memory")
    problem = engine.build_problem(objects, functions)
    config = MatchingConfig(backend="memory")
    with pytest.raises(MatchingError, match="cannot run sharded"):
        ShardedMatcher(problem, config, base_algorithm="generic-sb")
    with pytest.raises(MatchingError, match="unknown base algorithm"):
        ShardedMatcher(problem, config, base_algorithm="oracle")
    with pytest.raises(MatchingError, match="itself sharded"):
        ShardedMatcher(problem, config, base_algorithm="sharded-sb")


def test_sharded_matcher_single_shard_delegates_exactly():
    objects, functions = tiny_workload(seed=79)
    engine = MatchingEngine(backend="memory")
    problem = engine.build_problem(objects, functions)
    config = MatchingConfig(backend="memory")
    matcher = ShardedMatcher(problem, config, base_algorithm="sb", shards=1)
    sharded_pairs = [
        (p.function_id, p.object_id, p.score, p.round, p.rank)
        for p in matcher.pairs()
    ]
    fresh = engine.build_problem(objects, functions)
    from repro.engine import create_matcher

    direct = [
        (p.function_id, p.object_id, p.score, p.round, p.rank)
        for p in create_matcher("sb", fresh, config).pairs()
    ]
    # Pair-for-pair identical *including* round/rank provenance.
    assert sharded_pairs == direct
    assert matcher.shards_used == 1
