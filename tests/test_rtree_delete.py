"""R-tree deletion: condensation, root shrinking, reinsertion."""

import random

import pytest

from tests.conftest import check_rtree_invariants
from repro.data import generate_independent
from repro.errors import EntryNotFoundError
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree


def build_memory_tree(n=300, dims=3, seed=5, fanout=8):
    dataset = generate_independent(n, dims, seed=seed)
    tree = RTree(MemoryNodeStore(fanout), dims=dims)
    for object_id, point in dataset.items():
        tree.insert(object_id, point)
    return tree, dict(dataset.items())


def test_delete_single_object():
    tree, points = build_memory_tree(n=10)
    tree.delete(3, points[3])
    assert tree.num_objects == 9
    assert 3 not in {oid for oid, _ in tree.iter_objects()}
    check_rtree_invariants(tree)


def test_delete_missing_object_raises():
    tree, points = build_memory_tree(n=10)
    with pytest.raises(EntryNotFoundError) as excinfo:
        tree.delete(999, (0.5, 0.5, 0.5))
    assert excinfo.value.object_id == 999
    assert tree.num_objects == 10


def test_delete_same_object_twice_raises():
    tree, points = build_memory_tree(n=10)
    tree.delete(0, points[0])
    with pytest.raises(EntryNotFoundError):
        tree.delete(0, points[0])


def test_delete_all_objects_empties_tree():
    tree, points = build_memory_tree(n=120)
    for object_id, point in points.items():
        tree.delete(object_id, point)
    assert tree.num_objects == 0
    assert tree.height == 1
    assert list(tree.iter_objects()) == []


def test_delete_shrinks_height():
    tree, points = build_memory_tree(n=400, fanout=6)
    tall = tree.height
    assert tall >= 3
    ids = list(points)
    for object_id in ids[:390]:
        tree.delete(object_id, points[object_id])
    assert tree.height < tall
    check_rtree_invariants(tree)


def test_random_interleaved_inserts_and_deletes():
    rng = random.Random(9)
    dataset = generate_independent(500, 3, seed=6)
    points = dict(dataset.items())
    tree = RTree(MemoryNodeStore(8), dims=3)
    alive = set()
    for object_id in list(points)[:250]:
        tree.insert(object_id, points[object_id])
        alive.add(object_id)
    for _ in range(600):
        if alive and (rng.random() < 0.5 or len(alive) == len(points)):
            victim = rng.choice(sorted(alive))
            tree.delete(victim, points[victim])
            alive.remove(victim)
        else:
            candidates = sorted(set(points) - alive)
            newcomer = rng.choice(candidates)
            tree.insert(newcomer, points[newcomer])
            alive.add(newcomer)
    assert {oid for oid, _ in tree.iter_objects()} == alive
    check_rtree_invariants(tree)


def test_delete_on_disk_tree_costs_io_and_preserves_structure():
    dataset = generate_independent(800, 4, seed=7)
    store = DiskNodeStore(4)
    tree = RTree.bulk_load(store, 4, dataset.items())
    points = dict(dataset.items())
    store.buffer.resize(4)  # tiny buffer so deletes must touch disk
    store.disk.stats.reset()
    for object_id in dataset.ids[:100]:
        tree.delete(object_id, points[object_id])
    assert store.disk.stats.io_accesses > 0
    assert tree.num_objects == 700
    check_rtree_invariants(tree)


def test_duplicate_coordinates_delete_right_id():
    tree = RTree(MemoryNodeStore(4), dims=2)
    for i in range(6):
        tree.insert(i, (0.4, 0.6))
    tree.delete(3, (0.4, 0.6))
    remaining = sorted(oid for oid, _ in tree.iter_objects())
    assert remaining == [0, 1, 2, 4, 5]
