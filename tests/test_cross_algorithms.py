"""Integration: every matcher produces the identical stable matching."""

import pytest

from repro.core import (
    BruteForceMatcher,
    ChainMatcher,
    MatchingProblem,
    SkylineMatcher,
    gale_shapley,
    greedy_reference_matching,
    preference_lists_from_scores,
    verify_stable_matching,
)
from repro.data import (
    generate_anticorrelated,
    generate_clustered,
    generate_independent,
    generate_zillow,
)
from repro.prefs import generate_preferences

MATCHERS = [SkylineMatcher, BruteForceMatcher, ChainMatcher]

WORKLOADS = [
    ("independent-2d", generate_independent, 300, 2, 20),
    ("independent-5d", generate_independent, 300, 5, 20),
    ("anticorrelated-3d", generate_anticorrelated, 300, 3, 30),
    ("clustered-3d", generate_clustered, 300, 3, 15),
    ("zillow", generate_zillow, 300, None, 25),
    ("more-functions", generate_independent, 40, 3, 60),
    ("one-object", generate_independent, 1, 3, 5),
]


@pytest.mark.parametrize(
    "name,generator,n,dims,nf",
    WORKLOADS,
    ids=[w[0] for w in WORKLOADS],
)
def test_all_algorithms_identical_and_stable(name, generator, n, dims, nf):
    objects = generator(n, dims, seed=160) if dims else generator(n, seed=160)
    functions = generate_preferences(nf, objects.dims, seed=161)
    reference = greedy_reference_matching(objects, functions)
    assert verify_stable_matching(reference, objects, functions)

    for matcher_cls in MATCHERS:
        problem = MatchingProblem.build(objects, functions)
        matching = matcher_cls(problem).run()
        assert matching.as_set() == reference.as_set(), matcher_cls.__name__
        assert verify_stable_matching(matching, objects, functions)


def test_gale_shapley_agrees_on_aligned_preferences():
    objects = generate_independent(40, 3, seed=162)
    functions = generate_preferences(15, 3, seed=163)
    function_lists, object_lists = preference_lists_from_scores(
        objects, functions
    )
    gs = gale_shapley(function_lists, object_lists)
    reference = greedy_reference_matching(objects, functions)
    assert gs == reference.as_dict()


def test_brute_force_emission_order_is_the_greedy_order():
    # Brute Force emits pairs in exactly the greedy (globally decreasing
    # canonical) order; SB and Chain emit the same *set* in a different
    # order (SB per mutual round, Chain per chain closure).
    objects = generate_anticorrelated(250, 3, seed=164)
    functions = generate_preferences(30, 3, seed=165)
    reference = greedy_reference_matching(objects, functions)
    problem = MatchingProblem.build(objects, functions)
    emissions = [
        (p.function_id, p.object_id)
        for p in BruteForceMatcher(problem).pairs()
    ]
    assert emissions == [
        (p.function_id, p.object_id) for p in reference.pairs
    ]


def test_scores_bitwise_identical_across_matchers():
    objects = generate_independent(200, 4, seed=166)
    functions = generate_preferences(20, 4, seed=167)
    score_maps = []
    for matcher_cls in MATCHERS:
        problem = MatchingProblem.build(objects, functions)
        matching = matcher_cls(problem).run()
        score_maps.append(
            {p.function_id: p.score for p in matching.pairs}
        )
    assert score_maps[0] == score_maps[1] == score_maps[2]


def test_io_advantage_of_sb():
    """The paper's headline on a small instance: SB incurs far fewer I/Os
    than both competitors."""
    objects = generate_anticorrelated(3000, 4, seed=168)
    functions = generate_preferences(100, 4, seed=169)
    ios = {}
    for matcher_cls in MATCHERS:
        problem = MatchingProblem.build(objects, functions)
        problem.reset_io()
        matcher_cls(problem).run()
        ios[matcher_cls.__name__] = problem.io_stats.io_accesses
    assert ios["SkylineMatcher"] * 10 < ios["BruteForceMatcher"]
    assert ios["SkylineMatcher"] * 10 < ios["ChainMatcher"]
