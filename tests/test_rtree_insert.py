"""R-tree insertion: growth, splits, and structural invariants."""

import pytest

from tests.conftest import check_rtree_invariants
from repro.data import generate_independent
from repro.errors import DimensionalityError, RTreeError
from repro.geometry import MBR
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree


def test_empty_tree():
    tree = RTree(MemoryNodeStore(8), dims=2)
    assert tree.height == 1
    assert tree.num_objects == 0
    assert list(tree.iter_objects()) == []


def test_single_insert_and_search():
    tree = RTree(MemoryNodeStore(8), dims=2)
    tree.insert(42, (0.3, 0.7))
    assert tree.num_objects == 1
    assert list(tree.iter_objects()) == [(42, (0.3, 0.7))]
    hits = tree.range_search(MBR((0.0, 0.0), (1.0, 1.0)))
    assert hits == [(42, (0.3, 0.7))]


def test_insert_grows_height_on_overflow():
    tree = RTree(MemoryNodeStore(4), dims=2)
    for i in range(5):  # capacity 4: fifth insert splits the root leaf
        tree.insert(i, (i / 10, 1 - i / 10))
    assert tree.height == 2
    check_rtree_invariants(tree)


def test_many_inserts_preserve_membership_and_invariants():
    dataset = generate_independent(400, 3, seed=1)
    tree = RTree(MemoryNodeStore(8), dims=3)
    for object_id, point in dataset.items():
        tree.insert(object_id, point)
    assert tree.num_objects == 400
    assert tree.height >= 3
    check_rtree_invariants(tree)
    assert sorted(oid for oid, _ in tree.iter_objects()) == dataset.ids


def test_insert_into_disk_tree_counts_io():
    dataset = generate_independent(500, 3, seed=2)
    store = DiskNodeStore(3)
    tree = RTree(store, dims=3)
    for object_id, point in dataset.items():
        tree.insert(object_id, point)
    check_rtree_invariants(tree)
    # With a buffer smaller than the tree, inserts must cause disk traffic.
    store.buffer.resize(4)
    before = store.disk.stats.io_accesses
    tree.insert(10_000, (0.5, 0.5, 0.5))
    assert store.disk.stats.io_accesses > before


def test_range_search_matches_linear_scan():
    dataset = generate_independent(300, 2, seed=3)
    tree = RTree(MemoryNodeStore(8), dims=2)
    for object_id, point in dataset.items():
        tree.insert(object_id, point)
    query = MBR((0.2, 0.3), (0.6, 0.9))
    got = sorted(tree.range_search(query))
    want = sorted(
        (object_id, point)
        for object_id, point in dataset.items()
        if query.contains_point(point)
    )
    assert got == want
    assert want  # the query window must be non-trivial


def test_duplicate_points_allowed_distinct_ids():
    tree = RTree(MemoryNodeStore(4), dims=2)
    for i in range(10):
        tree.insert(i, (0.5, 0.5))
    assert tree.num_objects == 10
    check_rtree_invariants(tree)


def test_wrong_dimensionality_rejected():
    tree = RTree(MemoryNodeStore(8), dims=3)
    with pytest.raises(DimensionalityError):
        tree.insert(0, (0.1, 0.2))


def test_unknown_split_strategy_rejected():
    with pytest.raises(RTreeError):
        RTree(MemoryNodeStore(8), dims=2, split="linear")


def test_quadratic_split_tree_works_too():
    dataset = generate_independent(200, 2, seed=4)
    tree = RTree(MemoryNodeStore(6), dims=2, split="quadratic")
    for object_id, point in dataset.items():
        tree.insert(object_id, point)
    check_rtree_invariants(tree)
    assert sorted(oid for oid, _ in tree.iter_objects()) == dataset.ids
