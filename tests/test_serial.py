"""Unit tests for node serialization (the fan-out-defining layer)."""

import pytest

from repro.errors import SerializationError
from repro.geometry import MBR
from repro.rtree import Entry, RTreeNode, branch_capacity, leaf_capacity
from repro.rtree.serial import deserialize_node, serialize_node


def leaf_node(node_id=0, dims=3, count=5):
    entries = [
        Entry.for_object(i, tuple((i + d) / 10 % 1 for d in range(dims)))
        for i in range(count)
    ]
    return RTreeNode(node_id, 0, entries)


def branch_node(node_id=1, dims=3, count=4):
    entries = [
        Entry(MBR([0.1 * i] * dims, [0.1 * i + 0.2] * dims), 100 + i)
        for i in range(count)
    ]
    return RTreeNode(node_id, 2, entries)


def test_leaf_roundtrip():
    node = leaf_node(dims=4, count=7)
    data = serialize_node(node, 4, 4096)
    restored, dims = deserialize_node(node.node_id, data)
    assert dims == 4
    assert restored.level == 0
    assert restored.entries == node.entries


def test_branch_roundtrip_preserves_level():
    node = branch_node(dims=3, count=4)
    data = serialize_node(node, 3, 4096)
    restored, dims = deserialize_node(node.node_id, data)
    assert restored.level == 2
    assert restored.entries == node.entries


def test_empty_node_roundtrip():
    node = RTreeNode(0, 0, [])
    restored, _ = deserialize_node(0, serialize_node(node, 3, 4096))
    assert restored.entries == []


def test_capacities_match_struct_sizes():
    # leaf entry: 8 (id) + 8 * D; branch entry: 8 (child) + 16 * D;
    # header: 8 bytes.
    assert leaf_capacity(4096, 4) == (4096 - 8) // (8 + 32)
    assert branch_capacity(4096, 4) == (4096 - 8) // (8 + 64)
    # Leaves always pack at least as many entries as branches.
    for dims in range(2, 8):
        assert leaf_capacity(4096, dims) >= branch_capacity(4096, dims)


def test_capacity_grows_with_page_size_and_shrinks_with_dims():
    assert leaf_capacity(8192, 4) > leaf_capacity(4096, 4)
    assert leaf_capacity(4096, 6) < leaf_capacity(4096, 3)


def test_full_leaf_fits_exactly():
    dims = 5
    cap = leaf_capacity(4096, dims)
    node = leaf_node(dims=dims, count=cap)
    data = serialize_node(node, dims, 4096)
    assert len(data) <= 4096
    restored, _ = deserialize_node(0, data)
    assert len(restored.entries) == cap


def test_overflowing_node_rejected():
    dims = 5
    cap = leaf_capacity(4096, dims)
    node = leaf_node(dims=dims, count=cap + 1)
    with pytest.raises(SerializationError):
        serialize_node(node, dims, 4096)


def test_tiny_page_rejected():
    with pytest.raises(SerializationError):
        leaf_capacity(32, 6)


def test_bad_magic_rejected():
    node = leaf_node()
    data = bytearray(serialize_node(node, 3, 4096))
    data[0] ^= 0xFF
    with pytest.raises(SerializationError):
        deserialize_node(0, bytes(data))


def test_truncated_page_rejected():
    with pytest.raises(SerializationError):
        deserialize_node(0, b"\x5a\x00")


def test_wrong_dims_entry_rejected():
    node = RTreeNode(0, 0, [Entry.for_object(1, (0.1, 0.2))])
    with pytest.raises(SerializationError):
        serialize_node(node, 3, 4096)


def test_float_values_survive_exactly():
    point = (0.1 + 0.2, 1.0 / 3.0, 2.0 ** -40)
    node = RTreeNode(0, 0, [Entry.for_object(7, point)])
    restored, _ = deserialize_node(0, serialize_node(node, 3, 4096))
    assert restored.entries[0].mbr.low == point  # bitwise identical
