"""Constrained skyline and divide-and-conquer skyline."""

import pytest

from repro.data import generate_anticorrelated, generate_independent
from repro.errors import DimensionalityError
from repro.geometry import MBR
from repro.rtree import DiskNodeStore, MemoryNodeStore, RTree
from repro.skyline import (
    canonical_skyline_naive,
    constrained_skyline,
    dnc_skyline,
    update_after_removal,
)


def build(dataset, disk=False):
    store = DiskNodeStore(dataset.dims) if disk else MemoryNodeStore(8)
    return RTree.bulk_load(store, dataset.dims, dataset.items()), store


# ----------------------------------------------------------------------
# D&C skyline
# ----------------------------------------------------------------------
@pytest.mark.parametrize("generator,dims", [
    (generate_independent, 2),
    (generate_independent, 4),
    (generate_anticorrelated, 3),
])
def test_dnc_matches_naive(generator, dims):
    items = list(generator(500, dims, seed=250).items())
    assert dnc_skyline(items) == canonical_skyline_naive(items)


def test_dnc_edge_cases():
    assert dnc_skyline([]) == []
    assert dnc_skyline([(3, (0.1, 0.9))]) == [(3, (0.1, 0.9))]
    duplicates = [(i, (0.5, 0.5)) for i in (7, 2, 9)]
    assert dnc_skyline(duplicates) == [(2, (0.5, 0.5))]


def test_dnc_identical_points_bigger_than_base_case():
    items = [(i, (0.4, 0.6, 0.2)) for i in range(40)]
    assert dnc_skyline(items) == [(0, (0.4, 0.6, 0.2))]


def test_dnc_boundary_ties_on_split_axis():
    # Points sharing the split-axis value where one dominates the other:
    # the regression case for value-based partitioning.
    items = [(0, (0.5, 0.1)), (1, (0.5, 0.9)), (2, (0.2, 0.3))] + [
        (3 + i, (0.5, 0.05 + i / 100)) for i in range(20)
    ]
    assert dnc_skyline(items) == canonical_skyline_naive(items)


def test_dnc_with_coarse_grid_ties():
    import itertools

    items = [
        (i, (x / 3, y / 3))
        for i, (x, y) in enumerate(
            itertools.product(range(4), repeat=2)
        )
    ] * 1
    items = items + [(100 + i, p) for i, (_, p) in enumerate(items[:5])]
    assert dnc_skyline(items) == canonical_skyline_naive(items)


# ----------------------------------------------------------------------
# Constrained skyline
# ----------------------------------------------------------------------
def constrained_oracle(items, region):
    inside = [
        (oid, p) for oid, p in items if region.contains_point(p)
    ]
    return canonical_skyline_naive(inside)


@pytest.mark.parametrize("low,high", [
    ((0.0, 0.0), (1.0, 1.0)),      # unconstrained
    ((0.2, 0.3), (0.7, 0.9)),      # interior window
    ((0.0, 0.0), (0.3, 0.3)),      # low corner
    ((0.9, 0.9), (1.0, 1.0)),      # possibly empty
])
def test_constrained_matches_oracle(low, high):
    dataset = generate_independent(600, 2, seed=251)
    tree, _ = build(dataset)
    region = MBR(low, high)
    state = constrained_skyline(tree, region)
    want = [oid for oid, _ in constrained_oracle(list(dataset.items()), region)]
    assert sorted(state.ids()) == want


def test_constrained_higher_dims():
    dataset = generate_anticorrelated(500, 3, seed=252)
    tree, _ = build(dataset)
    region = MBR((0.1, 0.1, 0.1), (0.8, 0.8, 0.8))
    state = constrained_skyline(tree, region)
    want = [oid for oid, _ in constrained_oracle(list(dataset.items()), region)]
    assert sorted(state.ids()) == want


def test_constrained_dims_mismatch():
    dataset = generate_independent(20, 2, seed=253)
    tree, _ = build(dataset)
    with pytest.raises(DimensionalityError):
        constrained_skyline(tree, MBR((0.0,), (1.0,)))


def test_constrained_supports_incremental_maintenance():
    from repro.skyline import constrained_update_after_removal

    dataset = generate_independent(400, 2, seed=254)
    tree, _ = build(dataset)
    region = MBR((0.1, 0.1), (0.9, 0.9))
    state = constrained_skyline(tree, region)
    remaining = {
        oid: p for oid, p in dataset.items() if region.contains_point(p)
    }
    for _ in range(15):
        victim = state.ids()[0]
        del remaining[victim]
        constrained_update_after_removal(
            tree, region, state, state.remove(victim)
        )
        want = [oid for oid, _ in canonical_skyline_naive(
            list(remaining.items())
        )]
        assert sorted(state.ids()) == want


def test_constrained_skyline_reads_less_than_full_bbs():
    dataset = generate_independent(5000, 3, seed=255)
    tree, store = build(dataset, disk=True)
    store.buffer.resize(4)
    store.buffer.clear()
    store.disk.stats.reset()
    constrained_skyline(tree, MBR((0.4, 0.4, 0.4), (0.6, 0.6, 0.6)))
    constrained_reads = store.disk.stats.page_reads
    store.buffer.clear()
    store.disk.stats.reset()
    from repro.skyline import compute_skyline

    compute_skyline(tree)
    full_reads = store.disk.stats.page_reads
    assert constrained_reads <= full_reads
