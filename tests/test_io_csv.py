"""CSV dataset round-trips."""

import numpy as np
import pytest

from repro.data import Dataset, generate_independent, load_dataset_csv, save_dataset_csv
from repro.errors import DatasetError


def test_roundtrip_exact(tmp_path):
    ds = generate_independent(50, 3, seed=90)
    path = tmp_path / "objects.csv"
    save_dataset_csv(ds, path)
    loaded = load_dataset_csv(path)
    assert loaded.ids == ds.ids
    assert np.array_equal(loaded.matrix, ds.matrix)  # repr() is lossless


def test_roundtrip_custom_ids_and_columns(tmp_path):
    ds = Dataset([[0.25, 0.75]], ids=[99], name="one")
    path = tmp_path / "one.csv"
    save_dataset_csv(ds, path, column_names=["speed", "comfort"])
    text = path.read_text()
    assert text.splitlines()[0] == "id,speed,comfort"
    loaded = load_dataset_csv(path)
    assert loaded.ids == [99]


def test_column_name_mismatch(tmp_path):
    ds = Dataset([[0.5, 0.5]])
    with pytest.raises(DatasetError):
        save_dataset_csv(ds, tmp_path / "x.csv", column_names=["only-one"])


def test_load_with_normalization(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text("id,size,price\n0,10,100\n1,30,300\n")
    loaded = load_dataset_csv(
        path, normalize=True, larger_is_better=[True, False]
    )
    assert loaded.vector(0) == (0.0, 1.0)
    assert loaded.vector(1) == (1.0, 0.0)


def test_load_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("oid,a\n1,0.5\n")
    with pytest.raises(DatasetError):
        load_dataset_csv(path)


def test_load_rejects_ragged_rows(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("id,a,b\n0,0.1,0.2\n1,0.3\n")
    with pytest.raises(DatasetError):
        load_dataset_csv(path)


def test_load_skips_blank_lines(tmp_path):
    path = tmp_path / "blank.csv"
    path.write_text("id,a\n0,0.5\n\n1,0.6\n")
    loaded = load_dataset_csv(path)
    assert len(loaded) == 2


def test_default_name_from_stem(tmp_path):
    path = tmp_path / "hotels.csv"
    save_dataset_csv(Dataset([[0.1]]), path)
    assert load_dataset_csv(path).name == "hotels"
