from setuptools import find_packages, setup

setup(
    name="repro-preference-matching",
    version="1.0.0",
    description=(
        "Reproduction of 'Efficient Evaluation of Multiple Preference "
        "Queries' (ICDE 2009): skyline-based stable matching with a "
        "unified engine facade"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={
        "repro": ["py.typed"],
        "repro.bench.matrix": ["configs/*.json"],
    },
    include_package_data=True,
    zip_safe=False,
    python_requires=">=3.8",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        "docs": ["mkdocs>=1.5", "mkdocs-material>=9"],
    },
)
