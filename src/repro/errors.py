"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """Base class for simulated-disk and buffer-pool errors."""


class PageNotFoundError(StorageError):
    """Raised when reading a page id that was never allocated."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist on the simulated disk")
        self.page_id = page_id

    def __reduce__(self):
        # Rebuild from the original arguments: the default exception
        # reduction passes ``self.args`` (the message) back into this
        # multi-argument __init__, which breaks unpickling — and an
        # exception that cannot unpickle kills a process pool instead
        # of propagating from the worker that raised it.
        return (type(self), (self.page_id,))


class PageSizeError(StorageError):
    """Raised when page payloads do not fit the configured page size."""


class GeometryError(ReproError):
    """Raised for invalid geometric primitives (inverted or empty MBRs)."""


class RTreeError(ReproError):
    """Base class for R-tree structural errors."""


class EntryNotFoundError(RTreeError):
    """Raised when deleting an entry that is not present in the tree."""

    def __init__(self, object_id: int) -> None:
        super().__init__(f"object {object_id} is not stored in the R-tree")
        self.object_id = object_id

    def __reduce__(self):
        # See PageNotFoundError.__reduce__: keep worker-raised
        # instances picklable across process-pool boundaries.
        return (type(self), (self.object_id,))


class SerializationError(RTreeError):
    """Raised when a node cannot be (de)serialized into a disk page."""


class PreferenceError(ReproError):
    """Raised for invalid preference functions (bad weights, wrong arity)."""


class DimensionalityError(ReproError):
    """Raised when objects/functions/queries disagree on dimensionality."""

    def __init__(self, expected: int, got: int, what: str = "vector") -> None:
        super().__init__(
            f"expected {what} of dimensionality {expected}, got {got}"
        )
        self.expected = expected
        self.got = got
        self.what = what

    def __reduce__(self):
        # See PageNotFoundError.__reduce__: keep worker-raised
        # instances picklable across process-pool boundaries.
        return (type(self), (self.expected, self.got, self.what))


class MatchingError(ReproError):
    """Raised for inconsistent matching-problem configurations."""


class ServiceOverloadedError(MatchingError):
    """Raised when a serving request cannot be admitted.

    A :class:`~repro.engine.service.MatchingService` with a
    ``max_inflight`` bound either rejects excess requests immediately
    (``admission="reject"``) or blocks until capacity frees; a blocked
    request whose ``timeout`` expires before admission raises this too.
    """


class NetworkError(ReproError):
    """Base class for the :mod:`repro.net` socket serving layer."""


class CodecError(NetworkError):
    """Raised when a request or result cannot cross the wire.

    The JSON codec is exact only for :class:`~repro.prefs.LinearPreference`
    workloads; any other preference type (monotone functions, ad-hoc
    callables) has no faithful wire form and is rejected with this error
    instead of being silently approximated.
    """


class ConnectionRetriesExceededError(NetworkError):
    """Raised when a client exhausts its connect retry budget.

    Carries how many ``attempts`` were made and the ``last_error`` the
    final attempt raised, so callers can distinguish a down server from
    a misconfigured address without parsing the message.
    """

    def __init__(self, address: str, attempts: int,
                 last_error: object = None) -> None:
        super().__init__(
            f"could not connect to {address} after {attempts} attempt(s): "
            f"{last_error!r}"
        )
        self.address = address
        self.attempts = attempts
        self.last_error = last_error

    def __reduce__(self):
        # See PageNotFoundError.__reduce__: keep worker-raised
        # instances picklable across process-pool boundaries.
        return (type(self), (self.address, self.attempts, self.last_error))


class RemoteError(NetworkError):
    """A server-side failure surfaced to a network client.

    ``code`` is the HTTP-flavoured status the server attached to the
    error frame (400 bad request, 429 overloaded, 500 internal, 503
    draining, 504 timed out); ``remote_type`` names the exception class
    the server actually raised. Errors with exact local counterparts
    (overload, codec) are re-raised as those types instead of this one.
    """

    def __init__(self, code: int, remote_type: str, message: str) -> None:
        super().__init__(f"[{code} {remote_type}] {message}")
        self.code = code
        self.remote_type = remote_type
        self.remote_message = message

    def __reduce__(self):
        # See PageNotFoundError.__reduce__: keep worker-raised
        # instances picklable across process-pool boundaries.
        return (type(self), (self.code, self.remote_type,
                             self.remote_message))


class DatasetError(ReproError):
    """Raised for malformed datasets (NaNs, out-of-range values, bad shape)."""


class SessionError(ReproError):
    """Raised for invalid dynamic-session events (unknown ids, reuse of a
    deleted id before compaction, dimensionality drift, closed session)."""


class ReplayError(ReproError):
    """Raised for invalid :mod:`repro.replay` driver operations.

    Covers advancing a closed driver, advancing the clock backwards
    (use :meth:`~repro.replay.driver.ReplayDriver.rewind`), and
    rewinding to a timestamp earlier than every retained checkpoint.
    """


class TraceError(ReplayError):
    """Base class for trace-file problems (format and versioning)."""


class TraceVersionError(TraceError):
    """Raised when a trace file declares an unsupported schema version.

    Carries the offending ``version`` so tooling can distinguish
    "produced by a newer repro" from garbage input.
    """

    def __init__(self, version: object) -> None:
        super().__init__(
            f"unsupported trace version {version!r}; this build reads "
            f"version 1"
        )
        self.version = version

    def __reduce__(self):
        # See PageNotFoundError.__reduce__: keep worker-raised
        # instances picklable across process-pool boundaries.
        return (type(self), (self.version,))


class TraceFormatError(TraceError):
    """Raised for structurally invalid trace files.

    Truncated files (missing the ``end`` footer or with a record count
    that disagrees with it), non-JSON lines, unknown record kinds and
    non-monotone timestamps all land here."""


class BenchError(ReproError):
    """Base class for benchmark-matrix problems (:mod:`repro.bench.matrix`)."""


class MatrixConfigError(BenchError):
    """Raised for invalid matrix configurations.

    Covers unknown axes, values outside an axis's domain, axes that do
    not apply to a grid's kind, duplicate cells across grids, and
    malformed gate or check specifications."""


class ArtifactValidationError(BenchError):
    """Raised when a benchmark artifact fails schema validation.

    Every per-cell JSON, matrix report, and trajectory record is
    type-checked against its schema *before* it is written (and again
    when loaded), so a malformed artifact can never be committed."""


class TrajectoryError(BenchError):
    """Raised for unreadable or schema-invalid trajectory files.

    A failed ``--check`` comparison is *not* an exception — it is a
    :class:`~repro.bench.matrix.trajectory.CheckReport` with
    ``ok=False``; this error means the committed file itself cannot be
    trusted (wrong schema version, missing sections, type drift)."""
