"""Minimum bounding rectangles (MBRs) and score/dominance bounds.

All coordinates in the library live in the unit hypercube with "larger is
better" in every dimension (the paper's best corner is the top-right corner
of the space). An :class:`MBR` is an axis-aligned box given by its ``low``
and ``high`` corner tuples; a point is represented as a degenerate MBR or a
plain tuple, depending on context.

Besides the classic R-tree geometry (union, area, margin, overlap,
enlargement), this module provides the two bounds that drive the paper's
algorithms:

* :meth:`MBR.upper_score` — the best possible linear score of any point in
  the box, used by branch-and-bound ranked (top-k) search [Tao et al. 2007];
* :meth:`MBR.mindist_to_best` — the L1 distance of the box's best corner to
  the ideal point ``(1, …, 1)``, the priority key of BBS skyline search
  [Papadias et al. 2005].
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..errors import DimensionalityError, GeometryError

Vector = Tuple[float, ...]


class MBR:
    """An axis-aligned box ``[low_i, high_i]`` per dimension.

    Instances are immutable; all combining operations return new boxes.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]) -> None:
        if len(low) != len(high):
            raise DimensionalityError(len(low), len(high), "MBR corner")
        for lo, hi in zip(low, high):
            if lo > hi:
                raise GeometryError(
                    f"MBR low corner {tuple(low)} exceeds high corner "
                    f"{tuple(high)}"
                )
        self.low: Vector = tuple(float(v) for v in low)
        self.high: Vector = tuple(float(v) for v in high)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """The degenerate box containing exactly ``point``."""
        return cls(point, point)

    @classmethod
    def union_all(cls, boxes: Iterable["MBR"]) -> "MBR":
        """The tightest box covering every box in ``boxes`` (non-empty)."""
        it = iter(boxes)
        try:
            first = next(it)
        except StopIteration:
            raise GeometryError(
                "union_all() requires at least one MBR"
            ) from None
        low = list(first.low)
        high = list(first.high)
        for box in it:
            for i, (lo, hi) in enumerate(zip(box.low, box.high)):
                if lo < low[i]:
                    low[i] = lo
                if hi > high[i]:
                    high[i] = hi
        return cls(low, high)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return len(self.low)

    @property
    def is_point(self) -> bool:
        return self.low == self.high

    def area(self) -> float:
        """Product of side lengths (the volume, for D > 2)."""
        result = 1.0
        for lo, hi in zip(self.low, self.high):
            result *= hi - lo
        return result

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion)."""
        return sum(hi - lo for lo, hi in zip(self.low, self.high))

    def center(self) -> Vector:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.low, self.high))

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        return MBR(
            tuple(min(a, b) for a, b in zip(self.low, other.low)),
            tuple(max(a, b) for a, b in zip(self.high, other.high)),
        )

    def intersects(self, other: "MBR") -> bool:
        return all(
            lo <= other_hi and other_lo <= hi
            for lo, hi, other_lo, other_hi in zip(
                self.low, self.high, other.low, other.high
            )
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        if len(point) != self.dims:
            raise DimensionalityError(self.dims, len(point), "point")
        return all(lo <= p <= hi for lo, p, hi in zip(self.low, point, self.high))

    def contains(self, other: "MBR") -> bool:
        return all(
            lo <= other_lo and other_hi <= hi
            for lo, hi, other_lo, other_hi in zip(
                self.low, self.high, other.low, other.high
            )
        )

    def overlap_area(self, other: "MBR") -> float:
        """Volume of the intersection (0 when disjoint)."""
        result = 1.0
        for lo, hi, other_lo, other_hi in zip(
            self.low, self.high, other.low, other.high
        ):
            side = min(hi, other_hi) - max(lo, other_lo)
            if side <= 0.0:
                return 0.0
            result *= side
        return result

    def enlargement(self, other: "MBR") -> float:
        """Area growth needed for this box to also cover ``other``."""
        return self.union(other).area() - self.area()

    # ------------------------------------------------------------------
    # Score / dominance bounds
    # ------------------------------------------------------------------
    def upper_score(self, weights: Sequence[float]) -> float:
        """Max of ``sum(w_i * x_i)`` over points ``x`` in the box.

        With non-negative weights the maximum is attained at the ``high``
        corner; this is the admissible bound used by branch-and-bound
        ranked search.
        """
        return sum(w * hi for w, hi in zip(weights, self.high))

    def lower_score(self, weights: Sequence[float]) -> float:
        """Min of ``sum(w_i * x_i)`` over points in the box (``low`` corner)."""
        return sum(w * lo for w, lo in zip(weights, self.low))

    def mindist_to_best(self) -> float:
        """L1 distance of the box's best (high) corner to ``(1, …, 1)``.

        BBS pops entries in increasing order of this key; a point can only
        be dominated by points with a strictly smaller key, which is what
        makes BBS progressive and I/O-optimal.
        """
        return sum(1.0 - hi for hi in self.high)

    def dominated_by_point(self, point: Sequence[float]) -> bool:
        """Whether ``point`` weakly dominates the *entire* box.

        True iff ``point_i >= high_i`` in every dimension: then every point
        of the box is equal-or-worse than ``point`` everywhere, i.e. the
        box can be pruned from skyline consideration (the paper's
        "equal or better" convention).
        """
        if len(point) != self.dims:
            raise DimensionalityError(self.dims, len(point), "point")
        return all(p >= hi for p, hi in zip(point, self.high))

    def best_corner(self) -> Vector:
        """The corner closest to the ideal point (the ``high`` corner)."""
        return self.high

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return self.low == other.low and self.high == other.high

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MBR(low={self.low}, high={self.high})"
