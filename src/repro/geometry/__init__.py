"""Geometric primitives: MBR algebra plus score and dominance bounds."""

from .mbr import MBR, Vector

__all__ = ["MBR", "Vector"]
