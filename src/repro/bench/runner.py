"""Experiment runner: bench algorithm panel and parameter sweeps.

The harness mirrors the paper's protocol: for each point of a sweep (a
dimensionality, or an object-set size) it builds a fresh problem per
algorithm (Brute Force and Chain mutate the R-tree), runs the matcher on a
cold buffer, and records a :class:`~repro.bench.instruments.RunMeasurement`.

Problems and matchers are staged through the unified
:class:`~repro.engine.MatchingEngine` facade: each bench panel name maps
to a :class:`~repro.engine.MatchingConfig` in :data:`BENCH_CONFIGS`, and
``--backend`` selects the storage backend for the whole sweep (the
``disk`` default reproduces the paper's I/O figures; ``memory`` times
the serving fast path).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core import Matcher, MatchingProblem
from ..data import Dataset
from ..engine import MatchingConfig, MatchingEngine
from ..errors import ReproError
from ..prefs import LinearPreference
from .instruments import RunMeasurement, measure_matcher

#: Bench panel name -> full engine configuration.
BENCH_CONFIGS: Dict[str, MatchingConfig] = {
    "SB": MatchingConfig(algorithm="sb"),
    "BruteForce": MatchingConfig(algorithm="bf"),
    "Chain": MatchingConfig(algorithm="chain"),
    # Reference algorithms (not part of the paper's figures).
    "GaleShapley": MatchingConfig(algorithm="gs"),
    "GenericSB": MatchingConfig(algorithm="generic-sb"),
    # Ablation variants (not part of the paper's figures).
    "SB-single": MatchingConfig(algorithm="sb", multi_pair=False),
    "SB-retraversal": MatchingConfig(algorithm="sb",
                                     maintenance="retraversal"),
    "SB-naive-threshold": MatchingConfig(algorithm="sb", threshold="naive"),
    "SB-nocache": MatchingConfig(algorithm="sb", cache_best=False),
    "Chain-stack": MatchingConfig(algorithm="chain", restart=False),
    "BruteForce-filter": MatchingConfig(algorithm="bf",
                                        deletion_mode="filter"),
}


def _factory(config: MatchingConfig) -> Callable[[MatchingProblem], Matcher]:
    return lambda problem: MatchingEngine(config).create_matcher(problem)


#: Backwards-compatible view: display name -> matcher factory.
MatcherFactory = Callable[[MatchingProblem], Matcher]

ALGORITHMS: Dict[str, MatcherFactory] = {
    name: _factory(config) for name, config in BENCH_CONFIGS.items()
}

#: The paper's plotting order (SB last in its legends, first here for
#: readability of the winner).
DEFAULT_ALGORITHM_ORDER = ("SB", "BruteForce", "Chain")


def resolve_algorithms(names: Optional[Sequence[str]]) -> List[str]:
    """Validate bench panel names, defaulting to the paper's panel set."""
    if names is None:
        return list(DEFAULT_ALGORITHM_ORDER)
    unknown = [name for name in names if name not in BENCH_CONFIGS]
    if unknown:
        raise ReproError(
            f"unknown algorithm {unknown[0]!r}; expected one of "
            f"{sorted(BENCH_CONFIGS)}"
        )
    return list(names)


def bench_scale(default: float = 0.05) -> float:
    """Global workload scale factor, from ``REPRO_BENCH_SCALE``.

    The paper runs |O| up to 400K objects in C++; the default scale of
    0.05 keeps the pure-Python suite to minutes while preserving every
    qualitative relationship. Set ``REPRO_BENCH_SCALE=1.0`` to run the
    paper's exact cardinalities.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ReproError(f"REPRO_BENCH_SCALE must be > 0, got {raw!r}")
    return value


@dataclass
class SweepPoint:
    """One x-axis point of a figure: parameters + per-algorithm results."""

    x: float
    label: str
    params: Dict[str, float] = field(default_factory=dict)
    results: Dict[str, RunMeasurement] = field(default_factory=dict)

    def metric(self, algorithm: str, name: str) -> float:
        measurement = self.results[algorithm]
        return float(getattr(measurement, name))


@dataclass
class Sweep:
    """A complete figure's worth of measurements."""

    name: str
    x_label: str
    points: List[SweepPoint] = field(default_factory=list)
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER

    def series(self, algorithm: str, metric: str) -> List[float]:
        """One plotted line: ``metric`` of ``algorithm`` across the sweep."""
        return [point.metric(algorithm, metric) for point in self.points]

    def xs(self) -> List[float]:
        return [point.x for point in self.points]


def run_point(objects: Dataset, functions: Sequence[LinearPreference],
              algorithms: Optional[Sequence[str]] = None,
              backend: str = "disk",
              buffer_fraction: float = 0.02,
              page_size: int = 4096) -> Dict[str, RunMeasurement]:
    """Run each algorithm on its own fresh copy of one workload."""
    names = resolve_algorithms(algorithms)
    results: Dict[str, RunMeasurement] = {}
    for name in names:
        engine = MatchingEngine(BENCH_CONFIGS[name].replace(
            backend=backend,
            buffer_fraction=buffer_fraction,
            page_size=page_size,
        ))
        problem = engine.build_problem(objects, functions)
        results[name] = measure_matcher(engine.create_matcher(problem))
    return results
