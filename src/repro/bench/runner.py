"""Experiment runner: algorithm registry and parameter sweeps.

The harness mirrors the paper's protocol: for each point of a sweep (a
dimensionality, or an object-set size) it builds a fresh problem per
algorithm (Brute Force and Chain mutate the R-tree), runs the matcher on a
cold buffer, and records a :class:`~repro.bench.instruments.RunMeasurement`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core import (
    BruteForceMatcher,
    ChainMatcher,
    Matcher,
    MatchingProblem,
    SkylineMatcher,
)
from ..data import Dataset
from ..errors import ReproError
from ..prefs import LinearPreference
from .instruments import RunMeasurement, measure_matcher

#: Algorithm registry: display name -> matcher factory.
MatcherFactory = Callable[[MatchingProblem], Matcher]

ALGORITHMS: Dict[str, MatcherFactory] = {
    "SB": lambda problem: SkylineMatcher(problem),
    "BruteForce": lambda problem: BruteForceMatcher(problem),
    "Chain": lambda problem: ChainMatcher(problem),
    # Ablation variants (not part of the paper's figures).
    "SB-single": lambda problem: SkylineMatcher(problem, multi_pair=False),
    "SB-retraversal": lambda problem: SkylineMatcher(
        problem, maintenance="retraversal"
    ),
    "SB-naive-threshold": lambda problem: SkylineMatcher(
        problem, threshold="naive"
    ),
    "SB-nocache": lambda problem: SkylineMatcher(problem, cache_best=False),
    "Chain-stack": lambda problem: ChainMatcher(problem, restart=False),
    "BruteForce-filter": lambda problem: BruteForceMatcher(
        problem, deletion_mode="filter"
    ),
}

#: The paper's plotting order (SB last in its legends, first here for
#: readability of the winner).
DEFAULT_ALGORITHM_ORDER = ("SB", "BruteForce", "Chain")


def bench_scale(default: float = 0.05) -> float:
    """Global workload scale factor, from ``REPRO_BENCH_SCALE``.

    The paper runs |O| up to 400K objects in C++; the default scale of
    0.05 keeps the pure-Python suite to minutes while preserving every
    qualitative relationship. Set ``REPRO_BENCH_SCALE=1.0`` to run the
    paper's exact cardinalities.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ReproError(f"REPRO_BENCH_SCALE must be > 0, got {raw!r}")
    return value


@dataclass
class SweepPoint:
    """One x-axis point of a figure: parameters + per-algorithm results."""

    x: float
    label: str
    params: Dict[str, float] = field(default_factory=dict)
    results: Dict[str, RunMeasurement] = field(default_factory=dict)

    def metric(self, algorithm: str, name: str) -> float:
        measurement = self.results[algorithm]
        return float(getattr(measurement, name))


@dataclass
class Sweep:
    """A complete figure's worth of measurements."""

    name: str
    x_label: str
    points: List[SweepPoint] = field(default_factory=list)
    algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER

    def series(self, algorithm: str, metric: str) -> List[float]:
        """One plotted line: ``metric`` of ``algorithm`` across the sweep."""
        return [point.metric(algorithm, metric) for point in self.points]

    def xs(self) -> List[float]:
        return [point.x for point in self.points]


def run_point(objects: Dataset, functions: Sequence[LinearPreference],
              algorithms: Optional[Sequence[str]] = None,
              buffer_fraction: float = 0.02,
              page_size: int = 4096) -> Dict[str, RunMeasurement]:
    """Run each algorithm on its own fresh copy of one workload."""
    if algorithms is None:
        algorithms = DEFAULT_ALGORITHM_ORDER
    results: Dict[str, RunMeasurement] = {}
    for name in algorithms:
        try:
            factory = ALGORITHMS[name]
        except KeyError:
            raise ReproError(
                f"unknown algorithm {name!r}; expected one of "
                f"{sorted(ALGORITHMS)}"
            ) from None
        problem = MatchingProblem.build(
            objects, functions,
            buffer_fraction=buffer_fraction, page_size=page_size,
        )
        results[name] = measure_matcher(factory(problem))
    return results
