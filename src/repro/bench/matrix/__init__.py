# lint: replay-root
"""Unified ablation/benchmark matrix with a persisted perf trajectory.

One declarative :class:`MatrixConfig` sweeps algorithm × backend ×
shards × executor × batch size × cache (plus dynamic-churn and
replay-scenario axes) through one runner built on the existing bench
instruments. Every cell's matching is asserted pair-identical to the
canonical matcher, thresholds are enforced by declarative *gates*, and
runs persist as schema-validated artifacts — including the committed
``BENCH_<pr>.json`` trajectory that ``--check`` regresses against.

See ``docs/guides/benchmarks.md`` for the config reference and the
trajectory workflow; ``python -m repro.bench.matrix list`` prints the
shipped configs.
"""

from .cells import CellResult, MatrixContext, run_cell
from .config import (
    CellSpec,
    CheckPolicy,
    GateSpec,
    GridSpec,
    GridWorkload,
    KIND_AXES,
    MatrixConfig,
    available_configs,
    config_digest,
    config_from_dict,
    config_to_dict,
    expand_cells,
    load_config,
    load_named_config,
)
from .gates import GateResult, evaluate_gates
from .runner import MatrixResult, run_matrix, write_artifacts
from .trajectory import (
    CheckReport,
    Trajectory,
    build_trajectory,
    canonical_dumps,
    check_trajectory,
    load_trajectory,
    write_trajectory,
)

__all__ = [
    # configuration
    "MatrixConfig",
    "GridSpec",
    "GridWorkload",
    "GateSpec",
    "CheckPolicy",
    "CellSpec",
    "KIND_AXES",
    "config_from_dict",
    "config_to_dict",
    "config_digest",
    "expand_cells",
    "load_config",
    "load_named_config",
    "available_configs",
    # execution
    "MatrixContext",
    "CellResult",
    "run_cell",
    "run_matrix",
    "MatrixResult",
    "write_artifacts",
    # gates
    "GateResult",
    "evaluate_gates",
    # trajectory
    "Trajectory",
    "CheckReport",
    "build_trajectory",
    "write_trajectory",
    "load_trajectory",
    "check_trajectory",
    "canonical_dumps",
]
