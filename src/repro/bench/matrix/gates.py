# lint: replay-root
"""Evaluating gate assertions over an executed matrix.

A gate (:class:`~repro.bench.matrix.config.GateSpec`) selects cells by
axis values and asserts a threshold over one metric. Evaluation is pure
bookkeeping over :class:`~repro.bench.matrix.cells.CellResult` rows —
no cell ever re-runs — and always yields a
:class:`GateResult` per gate (a gate that matches no cells *fails*:
a threshold silently skipped is a threshold not enforced).

Ratio-family gates pair numerator cells with denominator cells that
agree on every axis the selectors do not pin, so one ``ratio`` gate
covers a whole sweep (e.g. "SB I/O ≤ BruteForce I/O / 10 at every
dimensionality").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .cells import CellResult
from .config import GateSpec, MatrixConfig


@dataclass(frozen=True)
class GateResult:
    """One gate's verdict: threshold, observation, and explanation."""

    name: str
    kind: str
    metric: str
    ok: bool
    observed: Optional[float]
    detail: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "ok": self.ok,
            "observed": self.observed,
            "detail": self.detail,
        }


def _cell_axes(cell: CellResult) -> Dict[str, Any]:
    axes = {"grid": cell.spec.grid.name}
    axes.update(cell.spec.axes)
    return axes


def _matches(cell: CellResult, selector: Mapping[str, Any]) -> bool:
    axes = _cell_axes(cell)
    return all(
        key in axes and axes[key] == value
        for key, value in selector.items()
    )


def _select(cells: Sequence[CellResult], gate: GateSpec,
            selector: Mapping[str, Any]) -> List[CellResult]:
    return [
        cell for cell in cells
        if _matches(cell, gate.where) and _matches(cell, selector)
        and gate.metric in cell.metrics
    ]


def _group_key(cell: CellResult, pinned: Sequence[str],
               ignore: Sequence[str] = ()) -> Tuple[Tuple[str, Any], ...]:
    axes = _cell_axes(cell)
    return tuple(
        (key, axes[key]) for key in sorted(axes)
        if key not in pinned and key not in ignore
    )


def _fail(gate: GateSpec, detail: str) -> GateResult:
    return GateResult(name=gate.name, kind=gate.kind, metric=gate.metric,
                      ok=False, observed=None, detail=detail)


def _bound_gate(gate: GateSpec,
                cells: Sequence[CellResult]) -> GateResult:
    matched = _select(cells, gate, {})
    if not matched:
        return _fail(gate, "no cells matched the selector")
    assert gate.value is not None
    if gate.kind == "min":
        worst = min(cell.metrics[gate.metric] for cell in matched)
        ok = worst >= gate.value
        relation = ">=" if ok else "<"
        detail = (f"min over {len(matched)} cell(s) = {worst:g} "
                  f"{relation} {gate.value:g}")
    else:
        worst = max(cell.metrics[gate.metric] for cell in matched)
        ok = worst <= gate.value
        relation = "<=" if ok else ">"
        detail = (f"max over {len(matched)} cell(s) = {worst:g} "
                  f"{relation} {gate.value:g}")
    return GateResult(name=gate.name, kind=gate.kind, metric=gate.metric,
                      ok=ok, observed=worst, detail=detail)


def _pair_groups(gate: GateSpec, cells: Sequence[CellResult],
                 ignore: Sequence[str] = ()) -> "List[Tuple[List[CellResult], List[CellResult]]] | GateResult":
    """Pair numerator and denominator cells on their free axes."""
    numerators = _select(cells, gate, gate.numerator)
    denominators = _select(cells, gate, gate.denominator)
    if not numerators:
        return _fail(gate, "numerator selector matched no cells")
    if not denominators:
        return _fail(gate, "denominator selector matched no cells")
    pinned = sorted(set(gate.numerator) | set(gate.denominator))
    groups: Dict[Tuple[Tuple[str, Any], ...],
                 Tuple[List[CellResult], List[CellResult]]] = {}
    for cell in numerators:
        groups.setdefault(_group_key(cell, pinned, ignore),
                          ([], []))[0].append(cell)
    for cell in denominators:
        key = _group_key(cell, pinned, ignore)
        if key in groups:
            groups[key][1].append(cell)
    paired = [
        (nums, dens) for nums, dens in
        (groups[key] for key in sorted(groups, key=repr))
        if dens
    ]
    if not paired:
        return _fail(gate, "numerator and denominator cells share no "
                           "axis combination")
    return paired


def _ratio_gate(gate: GateSpec,
                cells: Sequence[CellResult]) -> GateResult:
    paired = _pair_groups(gate, cells)
    if isinstance(paired, GateResult):
        return paired
    assert gate.max_ratio is not None
    worst: Optional[float] = None
    observed = 0.0
    checked = 0
    for nums, dens in paired:
        for num in nums:
            for den in dens:
                checked += 1
                bound = gate.max_ratio * den.metrics[gate.metric]
                value = num.metrics[gate.metric]
                excess = value - bound
                if worst is None or excess > worst:
                    worst = excess
                    observed = (value / den.metrics[gate.metric]
                                if den.metrics[gate.metric] else value)
    assert worst is not None
    ok = worst < 0 if gate.strict else worst <= 0
    relation = ("<" if gate.strict else "<=") if ok else ">"
    detail = (f"{checked} pair(s): worst {gate.metric} ratio "
              f"{observed:g} {relation} {gate.max_ratio:g}")
    return GateResult(name=gate.name, kind=gate.kind, metric=gate.metric,
                      ok=ok, observed=observed, detail=detail)


def _aggregate_gate(gate: GateSpec,
                    cells: Sequence[CellResult]) -> GateResult:
    """``sum_ratio`` and ``span_ratio``: one comparison per group.

    ``along`` (mandatory for ``span_ratio``, optional for ``sum_ratio``)
    is the aggregation axis: cells are grouped ignoring it, and each
    group aggregates across it.
    """
    ignore: Tuple[str, ...] = ()
    if gate.along is not None:
        ignore = (gate.along,)
    paired = _pair_groups(gate, cells, ignore)
    if isinstance(paired, GateResult):
        return paired
    assert gate.max_ratio is not None

    def aggregate(group: List[CellResult]) -> float:
        values = [cell.metrics[gate.metric] for cell in group]
        if gate.kind == "sum_ratio":
            return sum(values)
        assert gate.along is not None
        ordered = sorted(
            group, key=lambda cell: _cell_axes(cell)[gate.along]
        )
        return (ordered[-1].metrics[gate.metric]
                - ordered[0].metrics[gate.metric])

    worst: Optional[float] = None
    observed = 0.0
    for nums, dens in paired:
        num_value = aggregate(nums)
        den_value = aggregate(dens)
        excess = num_value - gate.max_ratio * den_value
        if worst is None or excess > worst:
            worst = excess
            observed = (num_value / den_value if den_value
                        else num_value)
    assert worst is not None
    ok = worst < 0 if gate.strict else worst <= 0
    relation = ("<" if gate.strict else "<=") if ok else ">"
    what = "sum" if gate.kind == "sum_ratio" else f"span({gate.along})"
    detail = (f"{len(paired)} group(s): worst {what} {gate.metric} "
              f"ratio {observed:g} {relation} {gate.max_ratio:g}")
    return GateResult(name=gate.name, kind=gate.kind, metric=gate.metric,
                      ok=ok, observed=observed, detail=detail)


def _growth_gate(gate: GateSpec,
                 cells: Sequence[CellResult]) -> GateResult:
    matched = _select(cells, gate, {})
    if not matched:
        return _fail(gate, "no cells matched the selector")
    assert gate.along is not None
    groups: Dict[Tuple[Tuple[str, Any], ...], List[CellResult]] = {}
    for cell in matched:
        groups.setdefault(
            _group_key(cell, (), (gate.along,)), []
        ).append(cell)
    worst: Optional[float] = None
    for key in sorted(groups, key=repr):
        ordered = sorted(
            groups[key], key=lambda cell: _cell_axes(cell)[gate.along]
        )
        if len(ordered) < 2:
            return _fail(
                gate,
                f"a group has fewer than two points along {gate.along!r}"
            )
        first = ordered[0].metrics[gate.metric]
        last = ordered[-1].metrics[gate.metric]
        growth = last / first if first else float(last > 0)
        if worst is None or growth < worst:
            worst = growth
    assert worst is not None
    ok = worst > gate.min_growth
    relation = ">" if ok else "<="
    detail = (f"{len(groups)} group(s): worst {gate.metric} growth "
              f"along {gate.along} = {worst:g}x {relation} "
              f"{gate.min_growth:g}x")
    return GateResult(name=gate.name, kind=gate.kind, metric=gate.metric,
                      ok=ok, observed=worst, detail=detail)


def evaluate_gates(config: MatrixConfig,
                   cells: Sequence[CellResult]) -> List[GateResult]:
    """Evaluate every configured gate over the executed cells."""
    results: List[GateResult] = []
    for gate in config.gates:
        if gate.kind in ("min", "max"):
            results.append(_bound_gate(gate, cells))
        elif gate.kind == "ratio":
            results.append(_ratio_gate(gate, cells))
        elif gate.kind in ("sum_ratio", "span_ratio"):
            results.append(_aggregate_gate(gate, cells))
        else:
            results.append(_growth_gate(gate, cells))
    return results
