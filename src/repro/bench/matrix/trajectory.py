# lint: replay-root
"""The committed performance trajectory and its regression check.

A trajectory record (``BENCH_<pr>.json`` at the repo root) freezes one
matrix run: the config identity (name + digest), the scale it ran at,
an environment fingerprint, the per-metric check policies, and every
cell's metrics with repr-exact floats. ``--check`` re-runs the config
and compares fresh metrics cell-by-cell under those policies:

``exact``
    The values must be equal. Counters (I/O accesses, pairs, rounds,
    top-1 searches) are deterministic functions of the workload, so any
    drift is a real behaviour change that must be re-baselined
    deliberately.
``ratio``
    fresh ≤ ``max_regression`` × committed. For timings on hardware you
    control.
``info``
    Recorded, never gated — the default for wall-clock metrics, which
    do not transfer across machines.

Serialization is canonical (sorted keys, compact separators, trailing
newline) and floats round-trip through ``repr`` exactly, so
write → load → write is byte-stable and a trajectory diff is always a
real value change.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ...errors import TrajectoryError
from .config import CheckPolicy, MatrixConfig, config_digest
from .validate import TRAJECTORY_SCHEMA, TRAJECTORY_SCHEMA_TAG, validate

PathLike = Union[str, Path]

#: Metrics whose committed values must match a fresh run exactly: all
#: of them are deterministic counters (or 0/1 verdicts) of a seeded
#: workload, independent of machine speed.
EXACT_METRICS: Tuple[str, ...] = (
    "io_accesses", "page_reads", "page_writes", "buffer_hits",
    "pairs", "rounds", "top1_searches", "reverse_top1_queries",
    "identity_ok", "n_objects", "n_functions", "n_events", "n_queries",
    "n_requests", "vectorized_requests", "incremental_io",
    "recompute_io", "requests", "churn_events", "freshness_checks",
    "freshness_mismatches", "stale_hits", "rewind_verified",
    "shards_used",
)


def default_checks(config: MatrixConfig) -> Dict[str, CheckPolicy]:
    """The effective policy map: exact counters + config overrides."""
    checks = {metric: CheckPolicy(policy="exact")
              for metric in EXACT_METRICS}
    checks.update(config.checks)
    return checks


def environment_fingerprint() -> Dict[str, str]:
    """Where a trajectory was recorded (informational, never gated)."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy.__version__,
    }


def canonical_dumps(payload: Any) -> str:
    """The canonical JSON form: sorted, compact, newline-terminated.

    ``json.dumps`` renders floats with ``repr``, which round-trips
    every IEEE double bit-exactly — so equal payloads always serialize
    to identical bytes.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"


@dataclass(frozen=True)
class Trajectory:
    """One committed matrix run."""

    pr: str
    config: str
    config_digest: str
    scale: float
    fingerprint: Mapping[str, str]
    checks: Mapping[str, CheckPolicy]
    cells: Tuple[Dict[str, Any], ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": TRAJECTORY_SCHEMA_TAG,
            "pr": self.pr,
            "config": self.config,
            "config_digest": self.config_digest,
            "scale": self.scale,
            "fingerprint": dict(self.fingerprint),
            "checks": {
                metric: {"policy": policy.policy,
                         "max_regression": policy.max_regression}
                for metric, policy in sorted(self.checks.items())
            },
            "cells": [dict(cell) for cell in self.cells],
        }

    def cell_index(self) -> Dict[str, Dict[str, Any]]:
        return {cell["cell_id"]: cell for cell in self.cells}


def build_trajectory(config: MatrixConfig, scale: float, pr: str,
                     cells: List[Dict[str, Any]]) -> Trajectory:
    """Assemble a trajectory from executed-cell payloads."""
    return Trajectory(
        pr=pr,
        config=config.name,
        config_digest=config_digest(config),
        scale=scale,
        fingerprint=environment_fingerprint(),
        checks=default_checks(config),
        cells=tuple(
            {
                "cell_id": cell["cell_id"],
                "kind": cell["kind"],
                "axes": dict(cell["axes"]),
                "metrics": dict(cell["metrics"]),
            }
            for cell in cells
        ),
    )


def write_trajectory(trajectory: Trajectory, path: PathLike) -> None:
    """Validate, then write the canonical bytes."""
    payload = trajectory.as_dict()
    validate(payload, TRAJECTORY_SCHEMA, str(path))
    Path(path).write_text(canonical_dumps(payload))


def load_trajectory(path: PathLike) -> Trajectory:
    """Load and schema-check a committed trajectory file."""
    path = Path(path)
    if not path.is_file():
        raise TrajectoryError(f"no trajectory file at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise TrajectoryError(f"{path}: not valid JSON: {error}")
    try:
        validate(payload, TRAJECTORY_SCHEMA, str(path))
    except Exception as error:
        raise TrajectoryError(str(error)) from None
    checks = {}
    for metric, spec in payload["checks"].items():
        if spec["policy"] not in ("exact", "ratio", "info"):
            raise TrajectoryError(
                f"{path}: check for {metric!r} has unknown policy "
                f"{spec['policy']!r}"
            )
        checks[metric] = CheckPolicy(
            policy=spec["policy"],
            max_regression=float(spec["max_regression"]),
        )
    return Trajectory(
        pr=payload["pr"],
        config=payload["config"],
        config_digest=payload["config_digest"],
        scale=float(payload["scale"]),
        fingerprint=dict(payload["fingerprint"]),
        checks=checks,
        cells=tuple(payload["cells"]),
    )


@dataclass(frozen=True)
class CheckFinding:
    """One compared metric (only mismatches and warnings are kept)."""

    cell_id: str
    metric: str
    policy: str
    committed: Optional[float]
    fresh: Optional[float]
    ok: bool
    detail: str


@dataclass
class CheckReport:
    """The full verdict of ``--check``."""

    trajectory_path: str
    compared: int = 0
    findings: List[CheckFinding] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(not finding.ok for finding in self.findings)

    def format(self) -> str:
        lines = [
            f"trajectory check against {self.trajectory_path}: "
            f"{self.compared} metric(s) compared",
        ]
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        failures = [f for f in self.findings if not f.ok]
        for finding in failures:
            lines.append(
                f"  REGRESSION {finding.cell_id} :: {finding.metric} "
                f"[{finding.policy}] {finding.detail}"
            )
        lines.append("OK" if self.ok
                     else f"FAILED ({len(failures)} regression(s))")
        return "\n".join(lines)


def check_trajectory(trajectory: Trajectory, config: MatrixConfig,
                     scale: float, cells: List[Dict[str, Any]],
                     path: PathLike = "<trajectory>") -> CheckReport:
    """Compare a fresh run's cells against the committed trajectory.

    The config digest and scale must match exactly — comparing runs of
    different matrices is meaningless. Fingerprint drift (a different
    Python or numpy) is reported as a warning, not a failure.
    """
    report = CheckReport(trajectory_path=str(path))
    digest = config_digest(config)
    if trajectory.config != config.name:
        raise TrajectoryError(
            f"trajectory records config {trajectory.config!r}, "
            f"but this run used {config.name!r}"
        )
    if trajectory.config_digest != digest:
        raise TrajectoryError(
            f"config {config.name!r} changed since the trajectory was "
            f"recorded (digest {trajectory.config_digest[:12]} != "
            f"{digest[:12]}); re-baseline with --write-trajectory"
        )
    if trajectory.scale != scale:
        raise TrajectoryError(
            f"trajectory was recorded at scale {trajectory.scale:g}, "
            f"this run used {scale:g}"
        )
    fresh_env = environment_fingerprint()
    for key in sorted(fresh_env):
        committed_value = trajectory.fingerprint.get(key)
        if committed_value != fresh_env[key]:
            report.warnings.append(
                f"fingerprint {key}: committed {committed_value!r}, "
                f"fresh {fresh_env[key]!r}"
            )

    committed_cells = trajectory.cell_index()
    fresh_cells = {cell["cell_id"]: cell for cell in cells}
    for cell_id in sorted(committed_cells):
        if cell_id not in fresh_cells:
            report.findings.append(CheckFinding(
                cell_id=cell_id, metric="-", policy="exact",
                committed=None, fresh=None, ok=False,
                detail="cell missing from the fresh run",
            ))
    for cell_id in sorted(fresh_cells):
        committed = committed_cells.get(cell_id)
        if committed is None:
            report.warnings.append(
                f"cell {cell_id} is new (not in the trajectory)"
            )
            continue
        _check_cell(report, trajectory, cell_id,
                    committed["metrics"], fresh_cells[cell_id]["metrics"])
    return report


def _check_cell(report: CheckReport, trajectory: Trajectory,
                cell_id: str, committed: Mapping[str, float],
                fresh: Mapping[str, float]) -> None:
    for metric in sorted(set(committed) | set(fresh)):
        policy = trajectory.checks.get(metric, CheckPolicy())
        if policy.policy == "info":
            continue
        report.compared += 1
        committed_value = committed.get(metric)
        fresh_value = fresh.get(metric)
        if committed_value is None or fresh_value is None:
            missing = "fresh run" if fresh_value is None else "trajectory"
            report.findings.append(CheckFinding(
                cell_id=cell_id, metric=metric, policy=policy.policy,
                committed=committed_value, fresh=fresh_value, ok=False,
                detail=f"metric missing from the {missing}",
            ))
            continue
        if policy.policy == "exact":
            ok = committed_value == fresh_value
            detail = (f"committed {committed_value!r}, "
                      f"fresh {fresh_value!r}")
        else:
            bound = policy.max_regression * committed_value
            ok = fresh_value <= bound
            detail = (f"fresh {fresh_value!r} vs committed "
                      f"{committed_value!r} (allowed <= {bound!r})")
        if not ok:
            report.findings.append(CheckFinding(
                cell_id=cell_id, metric=metric, policy=policy.policy,
                committed=committed_value, fresh=fresh_value, ok=False,
                detail=detail,
            ))
