# lint: replay-root
"""Executing one matrix cell and asserting its pair-identity.

Each grid kind maps to one runner here. All runners reuse the existing
bench instruments (:mod:`repro.bench.instruments` and the per-kind
point functions in :mod:`repro.bench`), so the matrix measures exactly
what the eight historical smoke benches measured — it just measures all
of it through one declarative sweep.

Every cell's matching is compared against the *canonical* matcher (the
config's ``reference`` algorithm on the in-memory backend, cached per
workload by :class:`MatrixContext`); ``identity_ok`` lands in the cell's
metrics as 0/1 so the identity bar is part of the recorded trajectory,
not just a transient assertion.

No wall clock is read here except ``time.perf_counter`` interval
timing — the artifacts must stay byte-stable for a fixed machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Sequence, Tuple

from ...data import (
    Dataset,
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
    generate_zillow,
)
from ...dynamic import (
    MIXED_CHURN,
    RecomputeSession,
    events_for_ratio,
    generate_events,
)
from ...engine import MatchingConfig, MatchingEngine
from ...errors import MatchingError
from ...prefs import LinearPreference, generate_preferences
from ..instruments import measure_run
from ..replay import run_replay_point
from ..runner import BENCH_CONFIGS
from ..serving import run_serving_point
from ..throughput import run_throughput_point
from .config import CellSpec, GridSpec

PairSet = FrozenSet[Tuple[int, int]]


def _generate_dataset(generator: str, n: int, dims: int,
                      seed: int) -> Dataset:
    if generator == "independent":
        return generate_independent(n, dims, seed=seed)
    if generator == "anticorrelated":
        return generate_anticorrelated(n, dims, seed=seed)
    if generator == "correlated":
        return generate_correlated(n, dims, seed=seed)
    if generator == "zillow":
        return generate_zillow(n, seed=seed)
    raise MatchingError(f"unknown workload generator {generator!r}")


def scaled_size(target: int, scale: float, floor: int) -> int:
    """An axis/workload size at the runner's global scale factor."""
    return max(floor, int(target * scale))


@dataclass
class CellResult:
    """One executed cell: its spec, flat metrics, and identity verdict."""

    spec: CellSpec
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def identity_ok(self) -> bool:
        return bool(self.metrics.get("identity_ok", 0.0))


class MatrixContext:
    """Shared state of one matrix run: workloads and canonical answers.

    Datasets and preference workloads are cached per (generator, size,
    dims, seed) so every cell of a grid sees the identical inputs, and
    the canonical reference matching is computed once per workload and
    reused by every cell that must equal it.
    """

    def __init__(self, reference: str = "sb", scale: float = 1.0) -> None:
        self.reference = reference
        self.scale = scale
        self._datasets: Dict[Tuple[str, int, int, int], Dataset] = {}
        self._functions: Dict[Tuple[int, int, int],
                              List[LinearPreference]] = {}
        self._references: Dict[Tuple[int, int], PairSet] = {}

    # -- workloads ---------------------------------------------------
    def dataset(self, generator: str, n: int, dims: int,
                seed: int) -> Dataset:
        key = (generator, n, dims, seed)
        if key not in self._datasets:
            self._datasets[key] = _generate_dataset(generator, n, dims,
                                                    seed)
        return self._datasets[key]

    def functions(self, n: int, dims: int,
                  seed: int) -> List[LinearPreference]:
        key = (n, dims, seed)
        if key not in self._functions:
            self._functions[key] = list(
                generate_preferences(n, dims, seed=seed)
            )
        return self._functions[key]

    def grid_objects(self, grid: GridSpec, n_unscaled: int,
                     dims: int) -> Dataset:
        workload = grid.workload
        n = scaled_size(n_unscaled, self.scale, workload.min_objects)
        return self.dataset(workload.generator, n, dims, workload.seed)

    def grid_functions(self, grid: GridSpec, dims: int,
                       offset: int = 1) -> List[LinearPreference]:
        workload = grid.workload
        n = scaled_size(workload.num_functions, self.scale,
                        workload.min_functions)
        return self.functions(n, dims, workload.seed + offset)

    # -- canonical answers -------------------------------------------
    def reference_pairs(self, objects: Dataset,
                        functions: Sequence[LinearPreference]) -> PairSet:
        """The canonical matching of one workload, as a pair set."""
        key = (id(objects), id(functions))
        if key not in self._references:
            engine = MatchingEngine(MatchingConfig(
                algorithm=self.reference, backend="memory",
            ))
            result = engine.match(objects, list(functions))
            self._references[key] = frozenset(result.as_set())
        return self._references[key]


# ----------------------------------------------------------------------
# Per-kind runners
# ----------------------------------------------------------------------

def _run_match_cell(spec: CellSpec, ctx: MatrixContext) -> CellResult:
    axes = spec.axes
    dims = int(axes["dims"])
    objects = ctx.grid_objects(spec.grid, int(axes["objects"]), dims)
    functions = ctx.grid_functions(spec.grid, dims)
    config = BENCH_CONFIGS[str(axes["algorithm"])].replace(
        backend=str(axes["backend"]),
        shards=int(axes["shards"]),
        executor=str(axes["executor"]),
    )
    reference = ctx.reference_pairs(objects, functions)
    metrics: Dict[str, float]
    if config.shards > 1:
        # Sharded execution only exists on the plan/engine path; measure
        # the end-to-end match() wall and its merged I/O.
        best: Dict[str, float] = {}
        pair_set: PairSet = frozenset()
        for _ in range(max(1, spec.grid.workload.repeats)):
            engine = MatchingEngine(config)
            start = time.perf_counter()
            result = engine.match(objects, functions)
            elapsed = time.perf_counter() - start
            if not best or elapsed < best["cpu_seconds"]:
                best = {
                    "cpu_seconds": elapsed,
                    "io_accesses": float(result.io_accesses),
                    "pairs": float(len(result.pairs)),
                    "shards_used": float(
                        result.stats.get("shards_used", config.shards)
                    ),
                }
                pair_set = frozenset(result.as_set())
        metrics = best
    else:
        measurement = None
        pair_set = frozenset()
        for _ in range(max(1, spec.grid.workload.repeats)):
            engine = MatchingEngine(config)
            problem = engine.build_problem(objects, functions)
            candidate, matching = measure_run(
                engine.create_matcher(problem)
            )
            if measurement is None or \
                    candidate.cpu_seconds < measurement.cpu_seconds:
                measurement = candidate
                pair_set = frozenset(matching.as_set())
        assert measurement is not None
        metrics = {
            "io_accesses": float(measurement.io_accesses),
            "page_reads": float(measurement.page_reads),
            "page_writes": float(measurement.page_writes),
            "buffer_hits": float(measurement.buffer_hits),
            "cpu_seconds": measurement.cpu_seconds,
            "pairs": float(measurement.pairs),
            "rounds": float(measurement.rounds),
            "top1_searches": float(measurement.top1_searches),
            "reverse_top1_queries": float(
                measurement.reverse_top1_queries
            ),
        }
    metrics["n_objects"] = float(len(objects))
    metrics["n_functions"] = float(len(functions))
    metrics["identity_ok"] = float(pair_set == reference)
    return CellResult(spec=spec, metrics=metrics)


def _serving_base(spec: CellSpec) -> MatchingConfig:
    axes = spec.axes
    config = BENCH_CONFIGS[str(axes["algorithm"])]
    if not bool(axes.get("cache", True)):
        config = config.replace(cache_size=0)
    return config


def _run_serving_cell(spec: CellSpec, ctx: MatrixContext) -> CellResult:
    workload = spec.grid.workload
    dims = workload.dims
    objects = ctx.grid_objects(spec.grid, workload.num_objects, dims)
    workloads = [
        ctx.grid_functions(spec.grid, dims, offset=1 + query)
        for query in range(workload.num_queries)
    ]
    point, warm_results = run_serving_point(
        objects, workloads, _serving_base(spec),
        backend=str(spec.axes["backend"]),
        label=str(spec.axes["algorithm"]),
    )
    identity = all(
        frozenset(result.as_set()) == ctx.reference_pairs(objects,
                                                          functions)
        for result, functions in zip(warm_results, workloads)
    )
    metrics = {
        "cold_seconds": point.cold_seconds,
        "warm_miss_seconds": point.warm_miss_seconds,
        "warm_hit_seconds": point.warm_hit_seconds,
        "miss_speedup": point.miss_speedup,
        "hit_speedup": point.hit_speedup,
        "n_objects": float(point.n_objects),
        "n_functions": float(point.n_functions),
        "n_queries": float(len(workloads)),
        "identity_ok": float(identity),
    }
    return CellResult(spec=spec, metrics=metrics)


def grid_requests(grid: GridSpec) -> int:
    """Distinct requests a throughput grid serves (same for all cells)."""
    explicit = grid.workload.num_requests
    if explicit:
        return explicit
    return 2 * max(int(value) for value in grid.axes["batch"])


def _run_throughput_cell(spec: CellSpec,
                         ctx: MatrixContext) -> CellResult:
    workload = spec.grid.workload
    dims = workload.dims
    objects = ctx.grid_objects(spec.grid, workload.num_objects, dims)
    n_requests = grid_requests(spec.grid)
    workloads = [
        ctx.functions(workload.functions_per_request, dims,
                      workload.seed + 1 + request)
        for request in range(n_requests)
    ]
    base = BENCH_CONFIGS[str(spec.axes["algorithm"])]
    point = run_throughput_point(
        objects, workloads, base, int(spec.axes["batch"]),
        backend=str(spec.axes["backend"]),
        label=str(spec.axes["algorithm"]),
    )
    # run_throughput_point already verified batched == looped; check a
    # sample of the looped answers against the canonical matcher.
    serving = MatchingEngine(base.replace(
        backend=str(spec.axes["backend"]), deletion_mode="filter",
    ))
    identity = all(
        frozenset(serving.match(objects, functions).as_set())
        == ctx.reference_pairs(objects, functions)
        for functions in workloads[:workload.identity_sample]
    )
    metrics = {
        "looped_rps": point.looped_rps,
        "batched_rps": point.batched_rps,
        "speedup": point.speedup,
        "vectorized_requests": float(point.vectorized_requests),
        "vectorized_fraction": point.vectorized_requests
        / max(1, point.n_requests),
        "n_requests": float(point.n_requests),
        "n_objects": float(point.n_objects),
        "n_functions": float(point.n_functions),
        "identity_ok": float(identity),
    }
    return CellResult(spec=spec, metrics=metrics)


def _run_dynamic_cell(spec: CellSpec, ctx: MatrixContext) -> CellResult:
    workload = spec.grid.workload
    dims = workload.dims
    objects = ctx.grid_objects(spec.grid, workload.num_objects, dims)
    functions = ctx.grid_functions(spec.grid, dims)
    insert_pool = ctx.dataset(
        workload.generator, max(64, len(objects) // 4), dims,
        workload.seed + 2,
    )
    churn = float(spec.axes["churn"])
    n_events = events_for_ratio(objects, churn)
    events = generate_events(
        objects, functions, n_events, mix=MIXED_CHURN,
        seed=workload.seed + 3, insert_pool=insert_pool,
    )
    config = BENCH_CONFIGS[str(spec.axes["algorithm"])].replace(
        backend=str(spec.axes["backend"]),
    )

    # Incremental path, recompute fallback disabled (bench.dynamic's
    # protocol): the repair machinery must absorb every event itself.
    engine = MatchingEngine(config.replace(repair_threshold=1e9))
    session = engine.open_session(objects, functions)
    io_before = session.io_snapshot().io_accesses
    start = time.perf_counter()
    for event in events:
        session.submit(event)
    session.flush()
    incremental_seconds = time.perf_counter() - start
    incremental_io = session.io_snapshot().io_accesses - io_before
    incremental_pairs = frozenset(session.matching().as_set())
    session.close()

    baseline = RecomputeSession(objects, functions, config)
    io_before = baseline.io_accesses
    start = time.perf_counter()
    for event in events:
        baseline.submit(event)
    baseline.flush()
    recompute_seconds = time.perf_counter() - start
    recompute_io = baseline.io_accesses - io_before
    recompute_pairs = frozenset(baseline.matching().as_set())

    metrics = {
        "n_events": float(len(events)),
        "n_objects": float(len(objects)),
        "n_functions": float(len(functions)),
        "incremental_io": float(incremental_io),
        "recompute_io": float(recompute_io),
        "incremental_seconds": incremental_seconds,
        "recompute_seconds": recompute_seconds,
        "time_speedup": recompute_seconds
        / max(1e-9, incremental_seconds),
        "identity_ok": float(incremental_pairs == recompute_pairs),
    }
    if incremental_io or recompute_io:
        # Undefined (and uninteresting) on the in-memory backend: leave
        # the metric out rather than record a fake infinity.
        metrics["io_speedup"] = recompute_io / max(1, incremental_io)
    return CellResult(spec=spec, metrics=metrics)


def _run_replay_cell(spec: CellSpec, ctx: MatrixContext) -> CellResult:
    workload = spec.grid.workload
    point, _report = run_replay_point(
        str(spec.axes["scenario"]),
        scale=workload.trace_scale,
        seed=workload.seed,
        backend=str(spec.axes["backend"]),
        transport="local",
    )
    metrics = {
        "requests": float(point.requests),
        "churn_events": float(point.churn_events),
        "freshness_checks": float(point.freshness_checks),
        "freshness_mismatches": float(point.freshness_mismatches),
        "stale_hits": float(point.stale_hits),
        "replay_seconds": point.replay_seconds,
        "rewind_seconds": point.rewind_seconds,
        "rewind_verified": float(point.rewind_verified),
        "identity_ok": float(point.ok),
    }
    return CellResult(spec=spec, metrics=metrics)


_RUNNERS: Dict[str, Callable[[CellSpec, MatrixContext], CellResult]] = {
    "match": _run_match_cell,
    "serving": _run_serving_cell,
    "throughput": _run_throughput_cell,
    "dynamic": _run_dynamic_cell,
    "replay": _run_replay_cell,
}


def run_cell(spec: CellSpec, ctx: MatrixContext) -> CellResult:
    """Execute one cell, returning its metrics (identity included)."""
    return _RUNNERS[spec.kind](spec, ctx)
