# lint: replay-root
"""Command-line front-end: ``python -m repro.bench.matrix``.

``run`` executes a named (or file-based) config, writes validated
artifacts, and optionally records or checks a trajectory::

    python -m repro.bench.matrix run --config smoke --out bench-matrix
    python -m repro.bench.matrix run --config smoke --check BENCH_10.json
    python -m repro.bench.matrix run --config smoke \\
        --write-trajectory BENCH_11.json --pr 11

``list`` prints the configs shipped in-package.

Exit status: 0 — everything passed; 1 — an identity assertion, gate,
or trajectory check failed; 2 — the config or trajectory file itself
is invalid.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, TextIO

from ...errors import BenchError
from ..runner import bench_scale
from .config import (
    MatrixConfig,
    available_configs,
    expand_cells,
    load_config,
    load_named_config,
)
from .runner import run_matrix, write_artifacts
from .trajectory import (
    build_trajectory,
    check_trajectory,
    load_trajectory,
    write_trajectory,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.matrix",
        description="Run a declarative benchmark/ablation matrix.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute a matrix config and write its artifacts",
    )
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--config", metavar="NAME",
        help="a config shipped in-package (see 'list')",
    )
    source.add_argument(
        "--config-file", metavar="PATH",
        help="a JSON/TOML matrix config file",
    )
    run.add_argument(
        "--scale", type=float, default=None, metavar="FACTOR",
        help="workload scale factor (default: REPRO_BENCH_SCALE or 1.0)",
    )
    run.add_argument(
        "--out", metavar="DIR", default=None,
        help="artifact directory (default: bench-matrix/<config>)",
    )
    run.add_argument(
        "--check", metavar="TRAJECTORY", default=None,
        help="compare the fresh run against this committed trajectory "
             "and fail on regression",
    )
    run.add_argument(
        "--write-trajectory", metavar="PATH", default=None,
        help="record this run as a trajectory file",
    )
    run.add_argument(
        "--pr", default="dev", metavar="LABEL",
        help="PR label stamped into --write-trajectory (default: dev)",
    )
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell progress lines",
    )

    commands.add_parser(
        "list", help="print the configs shipped in-package",
    )
    return parser


def _load(args: argparse.Namespace) -> MatrixConfig:
    if args.config is not None:
        return load_named_config(args.config)
    return load_config(args.config_file)


def _run(args: argparse.Namespace, out: TextIO) -> int:
    config = _load(args)
    scale = bench_scale(default=1.0) if args.scale is None else args.scale

    def progress(index: int, total: int, spec) -> None:
        if not args.quiet:
            print(f"[{index + 1}/{total}] {spec.cell_id}", file=out,
                  flush=True)

    result = run_matrix(config, scale=scale, progress=progress)

    out_dir = args.out if args.out is not None \
        else f"bench-matrix/{config.name}"
    written = write_artifacts(result, out_dir)
    print(result.to_text(), file=out)
    print(f"wrote {len(written)} artifact(s) under {out_dir}", file=out)

    status = 0 if result.ok else 1
    cells = [result.cell_payload(cell) for cell in result.cells]

    if args.write_trajectory is not None:
        trajectory = build_trajectory(config, scale, str(args.pr), cells)
        write_trajectory(trajectory, args.write_trajectory)
        print(f"recorded trajectory {args.write_trajectory} "
              f"(pr={args.pr})", file=out)

    if args.check is not None:
        trajectory = load_trajectory(args.check)
        report = check_trajectory(trajectory, config, scale, cells,
                                  path=args.check)
        print(report.format(), file=out)
        if not report.ok:
            status = max(status, 1)
    return status


def _list(out: TextIO) -> int:
    names = available_configs()
    if not names:
        print("no configs shipped", file=out)
        return 0
    for name in names:
        config = load_named_config(name)
        cells = len(expand_cells(config))
        print(f"{name:18} {cells:3d} cell(s)  {config.description}",
              file=out)
    return 0


def main(argv: Optional[List[str]] = None,
         out: Optional[TextIO] = None) -> int:
    """Entry point; returns the process exit status."""
    out = sys.stdout if out is None else out
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _list(out)
        return _run(args, out)
    except BenchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
