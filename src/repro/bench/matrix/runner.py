# lint: replay-root
"""Executing a whole matrix config and emitting its artifacts.

:func:`run_matrix` expands the config into cells, runs each through
:mod:`repro.bench.matrix.cells` (sharing workloads and canonical
reference matchings through one :class:`~repro.bench.matrix.cells.MatrixContext`),
evaluates the gates, and returns a :class:`MatrixResult`.
:func:`write_artifacts` persists the run: one JSON per cell, the
whole-matrix JSON report, and markdown/CSV renderings — every JSON
payload schema-validated *before* it touches disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .cells import CellResult, MatrixContext, run_cell
from .config import (
    CellSpec,
    MatrixConfig,
    config_digest,
    expand_cells,
)
from .gates import GateResult, evaluate_gates
from .report import matrix_to_csv, matrix_to_markdown, matrix_to_text
from .trajectory import canonical_dumps
from .validate import (
    CELL_SCHEMA,
    CELL_SCHEMA_TAG,
    MATRIX_SCHEMA,
    MATRIX_SCHEMA_TAG,
    validate,
)

PathLike = Union[str, Path]

#: Called before each cell runs, with (index, total, cell).
ProgressHook = Callable[[int, int, CellSpec], None]


@dataclass
class MatrixResult:
    """One executed matrix: cells, gate verdicts, and their artifacts."""

    config: MatrixConfig
    scale: float
    cells: List[CellResult] = field(default_factory=list)
    gates: List[GateResult] = field(default_factory=list)

    @property
    def identity_ok(self) -> bool:
        """Every cell produced the canonical matching."""
        return all(cell.identity_ok for cell in self.cells)

    @property
    def gates_ok(self) -> bool:
        return all(gate.ok for gate in self.gates)

    @property
    def ok(self) -> bool:
        return self.identity_ok and self.gates_ok

    def cell_payload(self, cell: CellResult) -> Dict[str, Any]:
        """One cell's validated artifact payload."""
        payload = {
            "schema": CELL_SCHEMA_TAG,
            "config": self.config.name,
            "grid": cell.spec.grid.name,
            "kind": cell.spec.kind,
            "cell_id": cell.spec.cell_id,
            "axes": dict(cell.spec.axes),
            "metrics": dict(cell.metrics),
        }
        validate(payload, CELL_SCHEMA, cell.spec.cell_id)
        return payload

    def as_dict(self) -> Dict[str, Any]:
        """The whole-matrix report payload (validated)."""
        payload = {
            "schema": MATRIX_SCHEMA_TAG,
            "config": self.config.name,
            "config_digest": config_digest(self.config),
            "scale": self.scale,
            "reference": self.config.reference,
            "ok": self.ok,
            "identity_ok": self.identity_ok,
            "cells": [self.cell_payload(cell) for cell in self.cells],
            "gates": [gate.as_dict() for gate in self.gates],
        }
        validate(payload, MATRIX_SCHEMA, f"matrix {self.config.name!r}")
        return payload

    def to_markdown(self) -> str:
        return matrix_to_markdown(self.config, self.cells, self.gates)

    def to_csv(self) -> str:
        return matrix_to_csv(self.cells)

    def to_text(self) -> str:
        return matrix_to_text(self.config, self.cells, self.gates)


def run_matrix(config: MatrixConfig, scale: float = 1.0,
               progress: Optional[ProgressHook] = None) -> MatrixResult:
    """Run every cell of ``config`` at the given scale factor."""
    specs = expand_cells(config)
    context = MatrixContext(reference=config.reference, scale=scale)
    result = MatrixResult(config=config, scale=scale)
    for index, spec in enumerate(specs):
        if progress is not None:
            progress(index, len(specs), spec)
        result.cells.append(run_cell(spec, context))
    result.gates = evaluate_gates(config, result.cells)
    return result


def write_artifacts(result: MatrixResult, out_dir: PathLike) -> List[Path]:
    """Persist the run under ``out_dir``; returns the written paths.

    Layout: ``cells/<cell>.json`` (one validated artifact per cell),
    ``matrix.json`` (the full report, canonical bytes), ``matrix.md``
    and ``matrix.csv`` (renderings of the same data).
    """
    out = Path(out_dir)
    cells_dir = out / "cells"
    cells_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for cell in result.cells:
        payload = result.cell_payload(cell)
        path = cells_dir / f"{cell.spec.file_stem}.json"
        path.write_text(canonical_dumps(payload))
        written.append(path)
    matrix_path = out / "matrix.json"
    matrix_path.write_text(canonical_dumps(result.as_dict()))
    written.append(matrix_path)
    markdown_path = out / "matrix.md"
    markdown_path.write_text(result.to_markdown())
    written.append(markdown_path)
    csv_path = out / "matrix.csv"
    csv_path.write_text(result.to_csv())
    written.append(csv_path)
    return written
