# lint: replay-root
"""``python -m repro.bench.matrix`` — see :mod:`repro.bench.matrix.cli`."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
