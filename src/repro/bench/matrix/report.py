# lint: replay-root
"""Rendering an executed matrix: markdown, CSV, and terminal text.

The matrix report is grouped by grid (cells of one grid share a kind
and therefore a metric set); each grid renders as one table with the
pinned axes first and the metrics after, followed by the gate verdict
table. CSV output is flat — one row per cell, one column per axis and
metric union — for spreadsheet/pandas consumption.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Sequence

from .cells import CellResult
from .config import KIND_AXES, MatrixConfig
from .gates import GateResult


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _grid_cells(cells: Sequence[CellResult]) -> Dict[str, List[CellResult]]:
    grouped: Dict[str, List[CellResult]] = {}
    for cell in cells:
        grouped.setdefault(cell.spec.grid.name, []).append(cell)
    return grouped


def _metric_columns(cells: Sequence[CellResult]) -> List[str]:
    names = sorted({name for cell in cells for name in cell.metrics})
    # identity_ok last: it is the verdict, not a measurement.
    if "identity_ok" in names:
        names.remove("identity_ok")
        names.append("identity_ok")
    return names


def matrix_to_markdown(config: MatrixConfig,
                       cells: Sequence[CellResult],
                       gates: Sequence[GateResult]) -> str:
    """The full run as GitHub-flavored Markdown."""
    lines: List[str] = [f"# Benchmark matrix: {config.name}", ""]
    if config.description:
        lines.extend([config.description, ""])
    for grid_name, grid_cells in _grid_cells(cells).items():
        kind = grid_cells[0].spec.kind
        axes = list(KIND_AXES[kind])
        metrics = _metric_columns(grid_cells)
        lines.append(f"## {grid_name} ({kind})")
        lines.append("")
        lines.append("| " + " | ".join(axes + metrics) + " |")
        lines.append("|" + "---|" * (len(axes) + len(metrics)))
        for cell in grid_cells:
            row = [str(cell.spec.axes[axis]) for axis in axes]
            row.extend(
                _format_value(cell.metrics[name])
                if name in cell.metrics else ""
                for name in metrics
            )
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    lines.append("## Gates")
    lines.append("")
    if gates:
        lines.append("| gate | kind | metric | verdict | detail |")
        lines.append("|---|---|---|---|---|")
        for gate in gates:
            verdict = "pass" if gate.ok else "**FAIL**"
            lines.append(
                f"| {gate.name} | {gate.kind} | {gate.metric} "
                f"| {verdict} | {gate.detail} |"
            )
    else:
        lines.append("(none configured)")
    lines.append("")
    return "\n".join(lines)


def matrix_to_csv(cells: Sequence[CellResult]) -> str:
    """One flat row per cell: grid, kind, cell id, axes, metrics."""
    axis_names = sorted({
        axis for cell in cells for axis in cell.spec.axes
    })
    metric_names = sorted({
        name for cell in cells for name in cell.metrics
    })
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["grid", "kind", "cell_id"] + axis_names
                    + metric_names)
    for cell in cells:
        row: List[str] = [cell.spec.grid.name, cell.spec.kind,
                          cell.spec.cell_id]
        for axis in axis_names:
            value = cell.spec.axes.get(axis, "")
            row.append(str(value))
        for name in metric_names:
            if name in cell.metrics:
                row.append(repr(cell.metrics[name]))
            else:
                row.append("")
        writer.writerow(row)
    return buffer.getvalue()


def matrix_to_text(config: MatrixConfig,
                   cells: Sequence[CellResult],
                   gates: Sequence[GateResult]) -> str:
    """A compact terminal summary: per-grid cell counts + gate verdicts."""
    lines = [f"matrix {config.name}: {len(cells)} cell(s)"]
    for grid_name, grid_cells in _grid_cells(cells).items():
        identical = sum(cell.identity_ok for cell in grid_cells)
        lines.append(
            f"  {grid_name} ({grid_cells[0].spec.kind}): "
            f"{len(grid_cells)} cell(s), "
            f"{identical}/{len(grid_cells)} pair-identical"
        )
    for gate in gates:
        verdict = "pass" if gate.ok else "FAIL"
        lines.append(f"  gate {gate.name}: {verdict} — {gate.detail}")
    identity_ok = all(cell.identity_ok for cell in cells)
    gates_ok = all(gate.ok for gate in gates)
    lines.append(
        "verdict: "
        + ("OK" if identity_ok and gates_ok else "FAILED")
        + (" (identity)" if not identity_ok else "")
        + (" (gates)" if not gates_ok else "")
    )
    return "\n".join(lines)
