# lint: replay-root
"""Declarative configuration of a benchmark/ablation matrix.

A :class:`MatrixConfig` names a set of *grids* — each a cartesian
product over benchmark axes (algorithm × backend × shards × executor ×
batch size × cache, plus the dynamic-churn and replay-scenario axes) —
and a set of *gates*, threshold assertions evaluated over the resulting
cells. Configs are plain data: they parse from JSON or TOML (and
round-trip through :func:`config_to_dict`, whose canonical form is the
config's digest), so every speed claim in the repo is one committed
config line plus an enforced gate, not ad-hoc benchmark code.

Grid kinds and their axes:

``match``
    One cold matcher execution per cell, measured with the
    :mod:`repro.bench.instruments` protocol.
    Axes: ``algorithm``, ``backend``, ``shards``, ``executor``,
    ``dims``, ``objects``.
``serving``
    Cold ``match()`` vs warm ``prepared.run()`` (miss and cache hit).
    Axes: ``algorithm``, ``backend``, ``cache``.
``throughput``
    Batched ``submit_many`` vs looped ``submit`` requests/second.
    Axes: ``algorithm``, ``backend``, ``batch``.
``dynamic``
    Incremental session repair vs full recompute on an event stream.
    Axes: ``algorithm``, ``backend``, ``churn``.
``replay``
    A scenario trace replayed with freshness verification and an exact
    rewind check. Axes: ``scenario``, ``backend``.

Examples
--------
A one-grid config expands into one cell per axis combination::

    >>> from repro.bench.matrix.config import config_from_dict
    >>> config = config_from_dict({
    ...     "name": "tiny",
    ...     "grids": [{"name": "static", "kind": "match",
    ...                "workload": {"num_objects": 300},
    ...                "axes": {"backend": ["disk", "memory"]}}],
    ... })
    >>> [cell.cell_id for cell in expand_cells(config)]
    ['static/algorithm=SB/backend=disk/shards=1/executor=serial/dims=4/objects=300', 'static/algorithm=SB/backend=memory/shards=1/executor=serial/dims=4/objects=300']
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ...errors import MatrixConfigError
from ..runner import BENCH_CONFIGS

#: Grid kinds and the axes each one understands, in canonical order.
KIND_AXES: Dict[str, Tuple[str, ...]] = {
    "match": ("algorithm", "backend", "shards", "executor", "dims",
              "objects"),
    "serving": ("algorithm", "backend", "cache"),
    "throughput": ("algorithm", "backend", "batch"),
    "dynamic": ("algorithm", "backend", "churn"),
    "replay": ("scenario", "backend"),
}

#: Executors a matrix cell may use (``remote`` needs worker processes
#: the runner does not manage).
MATRIX_EXECUTORS = ("serial", "thread", "process")

#: Dataset generators a workload may name.
WORKLOAD_GENERATORS = ("independent", "anticorrelated", "correlated",
                       "zillow")

#: Gate kinds understood by :mod:`repro.bench.matrix.gates`.
GATE_KINDS = ("ratio", "sum_ratio", "span_ratio", "growth", "min", "max")

#: Trajectory check policies (see :mod:`repro.bench.matrix.trajectory`).
CHECK_POLICIES = ("exact", "ratio", "info")

PathLike = Union[str, Path]


@dataclass(frozen=True)
class GridWorkload:
    """Workload knobs of one grid (sizes are *unscaled* targets).

    ``num_objects``/``num_functions`` scale with the runner's ``scale``
    factor, floored at ``min_objects``/``min_functions``. The remaining
    knobs are read by specific kinds only: ``num_queries`` (serving),
    ``functions_per_request``/``num_requests``/``identity_sample``
    (throughput), ``trace_scale`` (replay), ``repeats`` (match).
    """

    generator: str = "independent"
    num_objects: int = 1000
    num_functions: int = 50
    dims: int = 4
    seed: int = 42
    min_objects: int = 200
    min_functions: int = 20
    num_queries: int = 3
    functions_per_request: int = 16
    num_requests: int = 0
    identity_sample: int = 4
    trace_scale: float = 0.5
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.generator not in WORKLOAD_GENERATORS:
            raise MatrixConfigError(
                f"workload generator must be one of "
                f"{WORKLOAD_GENERATORS}, got {self.generator!r}"
            )
        for name in ("num_objects", "num_functions", "min_objects",
                     "min_functions", "num_queries",
                     "functions_per_request", "identity_sample",
                     "repeats"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise MatrixConfigError(
                    f"workload.{name} must be a positive integer, "
                    f"got {value!r}"
                )
        if not isinstance(self.num_requests, int) or self.num_requests < 0:
            raise MatrixConfigError(
                f"workload.num_requests must be a non-negative integer "
                f"(0 = twice the largest batch), got {self.num_requests!r}"
            )
        if not isinstance(self.dims, int) or not 2 <= self.dims <= 10:
            raise MatrixConfigError(
                f"workload.dims must be an integer in [2, 10], "
                f"got {self.dims!r}"
            )
        if not isinstance(self.seed, int):
            raise MatrixConfigError(
                f"workload.seed must be an integer, got {self.seed!r}"
            )
        if not (isinstance(self.trace_scale, (int, float))
                and self.trace_scale > 0):
            raise MatrixConfigError(
                f"workload.trace_scale must be > 0, "
                f"got {self.trace_scale!r}"
            )


@dataclass(frozen=True)
class GridSpec:
    """One sub-grid of the matrix: a kind, a workload, and axis values."""

    name: str
    kind: str
    workload: GridWorkload = field(default_factory=GridWorkload)
    axes: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class GateSpec:
    """One threshold assertion over the matrix's cells.

    ``where`` restricts the cells considered (axis name — or the
    pseudo-axis ``grid`` — to required value). ``ratio`` pairs each
    ``numerator`` cell with the ``denominator`` cell agreeing on every
    other axis and asserts ``num <= max_ratio * den`` (strictly ``<``
    when ``strict``); ``sum_ratio`` compares the two sums;
    ``span_ratio`` compares the two spans (last minus first along
    ``along``); ``growth`` asserts ``last > min_growth * first`` along
    ``along`` within each group; ``min``/``max`` bound the metric on
    every matched cell.
    """

    name: str
    kind: str
    metric: str
    where: Mapping[str, Any] = field(default_factory=dict)
    numerator: Mapping[str, Any] = field(default_factory=dict)
    denominator: Mapping[str, Any] = field(default_factory=dict)
    along: Optional[str] = None
    max_ratio: Optional[float] = None
    min_growth: float = 1.0
    value: Optional[float] = None
    strict: bool = False


@dataclass(frozen=True)
class CheckPolicy:
    """How one metric is compared against the committed trajectory.

    ``exact`` — the fresh value must equal the committed one (counters:
    I/O, pairs, rounds; any drift is a real behaviour change).
    ``ratio`` — the fresh value must not exceed ``max_regression``
    times the committed one (timings, on hardware you control).
    ``info`` — recorded, never gated (timings, by default: wall clock
    does not transfer across machines).
    """

    policy: str = "info"
    max_regression: float = 1.0

    def __post_init__(self) -> None:
        if self.policy not in CHECK_POLICIES:
            raise MatrixConfigError(
                f"check policy must be one of {CHECK_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.policy == "ratio" and self.max_regression <= 0:
            raise MatrixConfigError(
                f"check max_regression must be > 0, "
                f"got {self.max_regression!r}"
            )


@dataclass(frozen=True)
class MatrixConfig:
    """A named matrix: grids + gates + trajectory check overrides."""

    name: str
    description: str = ""
    reference: str = "sb"
    grids: Tuple[GridSpec, ...] = ()
    gates: Tuple[GateSpec, ...] = ()
    checks: Mapping[str, CheckPolicy] = field(default_factory=dict)


@dataclass(frozen=True)
class CellSpec:
    """One cell of the expanded matrix: its grid plus pinned axes."""

    grid: GridSpec
    axes: Mapping[str, Any]

    @property
    def kind(self) -> str:
        return self.grid.kind

    @property
    def cell_id(self) -> str:
        """Stable, filesystem-safe identifier of this cell."""
        parts = [self.grid.name]
        for axis in KIND_AXES[self.grid.kind]:
            value = self.axes[axis]
            if isinstance(value, bool):
                value = "on" if value else "off"
            parts.append(f"{axis}={value}")
        return "/".join(parts)

    @property
    def file_stem(self) -> str:
        """The cell id flattened for use as a file name."""
        return self.cell_id.replace("/", "__").replace("=", "-")


# ----------------------------------------------------------------------
# Axis domains
# ----------------------------------------------------------------------

def _axis_defaults(workload: GridWorkload) -> Dict[str, Any]:
    return {
        "algorithm": "SB",
        "backend": "memory",
        "shards": 1,
        "executor": "serial",
        "dims": workload.dims,
        "objects": workload.num_objects,
        "cache": True,
        "batch": 1,
        "churn": 0.05,
        "scenario": "flash-crowd",
    }


def _validate_axis_value(axis: str, value: Any, grid: str) -> Any:
    """Type- and domain-check one axis value; returns it normalized."""
    def fail(expected: str) -> MatrixConfigError:
        return MatrixConfigError(
            f"grid {grid!r}: axis {axis!r} {expected}, got {value!r}"
        )

    if axis == "algorithm":
        if value not in BENCH_CONFIGS:
            raise fail(f"must be a bench panel name "
                       f"({', '.join(sorted(BENCH_CONFIGS))})")
    elif axis == "backend":
        from ...engine import available_backends

        if value not in available_backends():
            raise fail(f"must be a registered backend "
                       f"({', '.join(sorted(available_backends()))})")
    elif axis in ("shards", "batch", "objects"):
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 1:
            raise fail("must be a positive integer")
    elif axis == "executor":
        if value not in MATRIX_EXECUTORS:
            raise fail(f"must be one of {MATRIX_EXECUTORS} (the matrix "
                       f"runner does not manage remote workers)")
    elif axis == "dims":
        if not isinstance(value, int) or isinstance(value, bool) \
                or not 2 <= value <= 10:
            raise fail("must be an integer in [2, 10]")
    elif axis == "cache":
        if not isinstance(value, bool):
            raise fail("must be a boolean")
    elif axis == "churn":
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not 0 < value <= 1:
            raise fail("must be a fraction in (0, 1]")
        value = float(value)
    elif axis == "scenario":
        from ...replay import available_scenarios

        if value not in available_scenarios():
            raise fail(f"must be a shipped scenario "
                       f"({', '.join(sorted(available_scenarios()))})")
    return value


def _normalize_grid(grid: GridSpec) -> GridSpec:
    """Fill defaulted axes, validate values and repair support."""
    if grid.kind not in KIND_AXES:
        raise MatrixConfigError(
            f"grid {grid.name!r}: kind must be one of "
            f"{tuple(KIND_AXES)}, got {grid.kind!r}"
        )
    known = KIND_AXES[grid.kind]
    unknown = sorted(set(grid.axes) - set(known))
    if unknown:
        raise MatrixConfigError(
            f"grid {grid.name!r}: axis {unknown[0]!r} does not apply to "
            f"kind {grid.kind!r} (its axes are {', '.join(known)})"
        )
    defaults = _axis_defaults(grid.workload)
    axes: Dict[str, Tuple[Any, ...]] = {}
    for axis in known:
        raw = grid.axes.get(axis)
        values = (defaults[axis],) if raw is None else tuple(raw)
        if not values:
            raise MatrixConfigError(
                f"grid {grid.name!r}: axis {axis!r} needs at least one "
                f"value"
            )
        if len(set(map(repr, values))) != len(values):
            raise MatrixConfigError(
                f"grid {grid.name!r}: axis {axis!r} repeats a value"
            )
        axes[axis] = tuple(
            _validate_axis_value(axis, value, grid.name)
            for value in values
        )
    if grid.workload.generator == "zillow":
        bad_dims = [
            value for value in axes.get("dims", ())
            if value != 5
        ]
        if bad_dims or ("dims" not in axes
                        and grid.workload.dims != 5):
            raise MatrixConfigError(
                f"grid {grid.name!r}: the zillow generator is fixed at "
                f"5 attributes; set dims to 5"
            )
    needs_repair = grid.kind == "dynamic" or (
        "shards" in axes and max(axes["shards"]) > 1
    )
    if needs_repair:
        from ...engine import algorithm_supports_repair

        for panel in axes["algorithm"]:
            if not algorithm_supports_repair(BENCH_CONFIGS[panel].algorithm):
                raise MatrixConfigError(
                    f"grid {grid.name!r}: algorithm {panel!r} does not "
                    f"support repair, required for "
                    f"{'dynamic sessions' if grid.kind == 'dynamic' else 'sharded execution'}"
                )
    return GridSpec(name=grid.name, kind=grid.kind,
                    workload=grid.workload, axes=axes)


def expand_cells(config: MatrixConfig) -> List[CellSpec]:
    """Expand every grid into its cells; reject duplicate cell ids."""
    cells: List[CellSpec] = []
    seen: Dict[str, str] = {}
    for grid in config.grids:
        combos: List[Dict[str, Any]] = [{}]
        for axis in KIND_AXES[grid.kind]:
            combos = [
                {**combo, axis: value}
                for combo in combos
                for value in grid.axes[axis]
            ]
        for combo in combos:
            cell = CellSpec(grid=grid, axes=combo)
            if cell.cell_id in seen:
                raise MatrixConfigError(
                    f"duplicate cell {cell.cell_id!r} (grids "
                    f"{seen[cell.cell_id]!r} and {grid.name!r})"
                )
            seen[cell.cell_id] = grid.name
            cells.append(cell)
    return cells


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

def _expect_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise MatrixConfigError(f"{what} must be a mapping, got "
                                f"{type(value).__name__}")
    return value


def _only_keys(payload: Mapping[str, Any], allowed: Sequence[str],
               what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise MatrixConfigError(
            f"{what}: unknown key {unknown[0]!r} (allowed: "
            f"{', '.join(allowed)})"
        )


def _gate_from_dict(payload: Mapping[str, Any]) -> GateSpec:
    payload = _expect_mapping(payload, "gate")
    _only_keys(payload, ("name", "kind", "metric", "where", "numerator",
                         "denominator", "along", "max_ratio",
                         "min_growth", "value", "strict"), "gate")
    for key in ("name", "kind", "metric"):
        if not isinstance(payload.get(key), str):
            raise MatrixConfigError(f"gate needs a string {key!r}")
    name = payload["name"]
    kind = payload["kind"]
    if kind not in GATE_KINDS:
        raise MatrixConfigError(
            f"gate {name!r}: kind must be one of {GATE_KINDS}, "
            f"got {kind!r}"
        )
    if kind in ("ratio", "sum_ratio", "span_ratio"):
        for side in ("numerator", "denominator"):
            if not payload.get(side):
                raise MatrixConfigError(
                    f"gate {name!r}: {kind} gates need a {side} selector"
                )
        if not isinstance(payload.get("max_ratio"), (int, float)):
            raise MatrixConfigError(
                f"gate {name!r}: {kind} gates need a numeric max_ratio"
            )
    if kind in ("span_ratio", "growth") and \
            not isinstance(payload.get("along"), str):
        raise MatrixConfigError(
            f"gate {name!r}: {kind} gates need an 'along' axis"
        )
    if kind in ("min", "max") and \
            not isinstance(payload.get("value"), (int, float)):
        raise MatrixConfigError(
            f"gate {name!r}: {kind} gates need a numeric value"
        )
    return GateSpec(
        name=name, kind=kind, metric=payload["metric"],
        where=dict(_expect_mapping(payload.get("where", {}),
                                   f"gate {name!r} where")),
        numerator=dict(_expect_mapping(payload.get("numerator", {}),
                                       f"gate {name!r} numerator")),
        denominator=dict(_expect_mapping(payload.get("denominator", {}),
                                         f"gate {name!r} denominator")),
        along=payload.get("along"),
        max_ratio=(None if payload.get("max_ratio") is None
                   else float(payload["max_ratio"])),
        min_growth=float(payload.get("min_growth", 1.0)),
        value=(None if payload.get("value") is None
               else float(payload["value"])),
        strict=bool(payload.get("strict", False)),
    )


def _grid_from_dict(payload: Mapping[str, Any]) -> GridSpec:
    payload = _expect_mapping(payload, "grid")
    _only_keys(payload, ("name", "kind", "workload", "axes"), "grid")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise MatrixConfigError("every grid needs a non-empty 'name'")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise MatrixConfigError(f"grid {name!r} needs a string 'kind'")
    workload_raw = _expect_mapping(payload.get("workload", {}),
                                   f"grid {name!r} workload")
    try:
        workload = GridWorkload(**dict(workload_raw))
    except TypeError as error:
        raise MatrixConfigError(
            f"grid {name!r} workload: {error}"
        ) from None
    axes_raw = _expect_mapping(payload.get("axes", {}),
                               f"grid {name!r} axes")
    axes = {}
    for axis, values in axes_raw.items():
        if not isinstance(values, Sequence) or isinstance(values, str):
            raise MatrixConfigError(
                f"grid {name!r}: axis {axis!r} must list its values"
            )
        axes[axis] = tuple(values)
    return _normalize_grid(
        GridSpec(name=name, kind=kind, workload=workload, axes=axes)
    )


def config_from_dict(payload: Mapping[str, Any]) -> MatrixConfig:
    """Build (and fully validate) a :class:`MatrixConfig` from a dict."""
    payload = _expect_mapping(payload, "matrix config")
    _only_keys(payload, ("name", "description", "reference", "grids",
                         "gates", "checks"), "matrix config")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise MatrixConfigError("matrix config needs a non-empty 'name'")
    grids_raw = payload.get("grids")
    if not isinstance(grids_raw, Sequence) or not grids_raw:
        raise MatrixConfigError(
            f"config {name!r} needs at least one grid"
        )
    reference = payload.get("reference", "sb")
    from ...engine import algorithm_supports_repair, available_algorithms

    if reference not in available_algorithms():
        raise MatrixConfigError(
            f"config {name!r}: reference must be a registered algorithm "
            f"({', '.join(sorted(available_algorithms()))}), "
            f"got {reference!r}"
        )
    grids = tuple(_grid_from_dict(grid) for grid in grids_raw)
    if len({grid.name for grid in grids}) != len(grids):
        raise MatrixConfigError(f"config {name!r}: grid names repeat")
    gates_raw = payload.get("gates", ())
    if not isinstance(gates_raw, Sequence):
        raise MatrixConfigError(f"config {name!r}: gates must be a list")
    gates = tuple(_gate_from_dict(gate) for gate in gates_raw)
    if len({gate.name for gate in gates}) != len(gates):
        raise MatrixConfigError(f"config {name!r}: gate names repeat")
    checks_raw = _expect_mapping(payload.get("checks", {}),
                                 f"config {name!r} checks")
    checks = {}
    for metric, spec in checks_raw.items():
        spec = _expect_mapping(spec, f"check for {metric!r}")
        _only_keys(spec, ("policy", "max_regression"),
                   f"check for {metric!r}")
        checks[metric] = CheckPolicy(
            policy=str(spec.get("policy", "info")),
            max_regression=float(spec.get("max_regression", 1.0)),
        )
    config = MatrixConfig(
        name=name,
        description=str(payload.get("description", "")),
        reference=str(reference),
        grids=grids,
        gates=gates,
        checks=checks,
    )
    expand_cells(config)  # surfaces duplicate-cell errors at parse time
    _validate_gate_axes(config)
    return config


def _validate_gate_axes(config: MatrixConfig) -> None:
    """Gate selectors may only name real axes (or the grid pseudo-axis)."""
    axis_names = {"grid"}
    for grid in config.grids:
        axis_names.update(KIND_AXES[grid.kind])
    for gate in config.gates:
        for selector in (gate.where, gate.numerator, gate.denominator):
            for key in selector:
                if key not in axis_names:
                    raise MatrixConfigError(
                        f"gate {gate.name!r}: selector names unknown "
                        f"axis {key!r}"
                    )
        if gate.along is not None and gate.along not in axis_names:
            raise MatrixConfigError(
                f"gate {gate.name!r}: 'along' names unknown axis "
                f"{gate.along!r}"
            )


# ----------------------------------------------------------------------
# Serialization + digest
# ----------------------------------------------------------------------

def config_to_dict(config: MatrixConfig) -> Dict[str, Any]:
    """The canonical dict form (it re-parses to an equal config)."""
    return {
        "name": config.name,
        "description": config.description,
        "reference": config.reference,
        "grids": [
            {
                "name": grid.name,
                "kind": grid.kind,
                "workload": {
                    name: getattr(grid.workload, name)
                    for name in sorted(GridWorkload.__dataclass_fields__)
                },
                "axes": {
                    axis: list(grid.axes[axis])
                    for axis in KIND_AXES[grid.kind]
                },
            }
            for grid in config.grids
        ],
        "gates": [
            {
                "name": gate.name,
                "kind": gate.kind,
                "metric": gate.metric,
                "where": dict(gate.where),
                "numerator": dict(gate.numerator),
                "denominator": dict(gate.denominator),
                "along": gate.along,
                "max_ratio": gate.max_ratio,
                "min_growth": gate.min_growth,
                "value": gate.value,
                "strict": gate.strict,
            }
            for gate in config.gates
        ],
        "checks": {
            metric: {"policy": policy.policy,
                     "max_regression": policy.max_regression}
            for metric, policy in sorted(config.checks.items())
        },
    }


def config_digest(config: MatrixConfig) -> str:
    """SHA-256 of the canonical JSON form — the config's identity."""
    canonical = json.dumps(config_to_dict(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_config(path: PathLike) -> MatrixConfig:
    """Load a config from a JSON (or, on 3.11+, TOML) file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python < 3.11
            raise MatrixConfigError(
                f"{path}: TOML configs need Python >= 3.11 (tomllib); "
                f"use JSON"
            ) from None
        payload = tomllib.loads(text)
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise MatrixConfigError(f"{path}: not valid JSON: {error}")
    return config_from_dict(payload)


#: Directory of the named configs shipped in-package.
CONFIG_DIR = Path(__file__).resolve().parent / "configs"


def available_configs() -> Tuple[str, ...]:
    """Names of the configs shipped under ``matrix/configs/``."""
    return tuple(sorted(
        path.stem for path in CONFIG_DIR.glob("*.json")
    ))


def load_named_config(name: str) -> MatrixConfig:
    """Load one shipped config by name (see :func:`available_configs`)."""
    path = CONFIG_DIR / f"{name}.json"
    if not path.is_file():
        raise MatrixConfigError(
            f"unknown matrix config {name!r}; shipped configs: "
            f"{', '.join(available_configs())}"
        )
    config = load_config(path)
    if config.name != name:
        raise MatrixConfigError(
            f"{path}: config names itself {config.name!r}, expected "
            f"{name!r}"
        )
    return config
