# lint: replay-root
"""Schema validation for every matrix artifact.

Each artifact the matrix runner emits — per-cell JSON, the matrix
report, the trajectory record — is type-checked against its schema
*before* it is written, and again whenever it is loaded, so a malformed
artifact can never reach disk (or be trusted off it). Failures raise
:class:`~repro.errors.ArtifactValidationError` with the JSON path of
the offending field.

The checker is a tiny combinator set (no external dependency): a schema
is a mapping of field name to checker, and checkers compose through
:func:`seq_of`, :func:`map_of` and :func:`mapping`.

    >>> from repro.bench.matrix.validate import is_int, mapping, validate
    >>> validate({"pairs": 3}, {"pairs": is_int}, "demo")
    >>> validate({"pairs": "3"}, {"pairs": is_int}, "demo")
    Traceback (most recent call last):
        ...
    repro.errors.ArtifactValidationError: demo: $.pairs: expected an integer, got str
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ...errors import ArtifactValidationError

#: A checker inspects one value; it raises nothing but returns an error
#: string (or ``None`` when the value conforms).
Checker = Callable[[Any], "str | None"]


def _fail(value: Any, expected: str) -> str:
    return f"expected {expected}, got {type(value).__name__}"


def is_str(value: Any) -> "str | None":
    """The value must be a string."""
    return None if isinstance(value, str) else _fail(value, "a string")


def is_bool(value: Any) -> "str | None":
    """The value must be a boolean."""
    return None if isinstance(value, bool) else _fail(value, "a boolean")


def is_int(value: Any) -> "str | None":
    """The value must be an integer (booleans do not count)."""
    if isinstance(value, int) and not isinstance(value, bool):
        return None
    return _fail(value, "an integer")


def is_number(value: Any) -> "str | None":
    """The value must be a finite int or float (booleans do not count)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if value != value or value in (float("inf"), float("-inf")):
            return "expected a finite number"
        return None
    return _fail(value, "a number")


def is_scalar(value: Any) -> "str | None":
    """The value must be a JSON scalar (str, bool, finite number)."""
    if isinstance(value, (str, bool)):
        return None
    return is_number(value)


def nullable(checker: Checker) -> Checker:
    """Allow ``None`` in addition to whatever ``checker`` accepts."""
    def check(value: Any) -> "str | None":
        return None if value is None else checker(value)
    return check


def seq_of(checker: Checker) -> Checker:
    """The value must be a list whose items all pass ``checker``."""
    def check(value: Any) -> "str | None":
        if not isinstance(value, list):
            return _fail(value, "a list")
        for index, item in enumerate(value):
            error = checker(item)
            if error is not None:
                return f"[{index}]: {error}"
        return None
    return check


def map_of(checker: Checker) -> Checker:
    """The value must be a string-keyed mapping of conforming values."""
    def check(value: Any) -> "str | None":
        if not isinstance(value, dict):
            return _fail(value, "a mapping")
        for key in sorted(value, key=repr):
            if not isinstance(key, str):
                return f"key {key!r} is not a string"
            error = checker(value[key])
            if error is not None:
                return f".{key}: {error}"
        return None
    return check


def mapping(schema: Mapping[str, Checker],
            optional: Sequence[str] = ()) -> Checker:
    """The value must be a dict matching ``schema`` exactly.

    Every non-``optional`` schema key must be present; keys outside the
    schema are rejected (schema drift should fail loudly, not pass
    silently).
    """
    def check(value: Any) -> "str | None":
        if not isinstance(value, dict):
            return _fail(value, "a mapping")
        for key in sorted(schema):
            if key not in value:
                if key in optional:
                    continue
                return f"missing required field {key!r}"
        for key in sorted(value, key=repr):
            if key not in schema:
                return f"unknown field {key!r}"
            error = schema[key](value[key])
            if error is not None:
                return f".{key}: {error}"
        return None
    return check


def validate(payload: Any, schema: Mapping[str, Checker],
             what: str) -> None:
    """Check ``payload`` against ``schema``; raise on the first problem."""
    error = mapping(schema)(payload)
    if error is not None:
        sep = "" if error.startswith((".", "[")) else " "
        raise ArtifactValidationError(f"{what}: $" + sep + error)


# ----------------------------------------------------------------------
# The artifact schemas
# ----------------------------------------------------------------------

#: Schema tag written into (and required of) every per-cell artifact.
CELL_SCHEMA_TAG = "repro.bench.matrix/cell@1"

#: Schema tag of the matrix report artifact.
MATRIX_SCHEMA_TAG = "repro.bench.matrix/matrix@1"

#: Schema tag of the committed trajectory record.
TRAJECTORY_SCHEMA_TAG = "repro.bench.matrix/trajectory@1"


def _tag(expected: str) -> Checker:
    def check(value: Any) -> "str | None":
        if value != expected:
            return f"expected schema tag {expected!r}, got {value!r}"
        return None
    return check


#: One cell's artifact: identity, pinned axes, and its flat metrics.
CELL_SCHEMA: Mapping[str, Checker] = {
    "schema": _tag(CELL_SCHEMA_TAG),
    "config": is_str,
    "grid": is_str,
    "kind": is_str,
    "cell_id": is_str,
    "axes": map_of(is_scalar),
    "metrics": map_of(is_number),
}

_GATE_RESULT_SCHEMA: Checker = mapping({
    "name": is_str,
    "kind": is_str,
    "metric": is_str,
    "ok": is_bool,
    "observed": nullable(is_number),
    "detail": is_str,
})

#: The whole-matrix report: every cell plus every gate verdict.
MATRIX_SCHEMA: Mapping[str, Checker] = {
    "schema": _tag(MATRIX_SCHEMA_TAG),
    "config": is_str,
    "config_digest": is_str,
    "scale": is_number,
    "reference": is_str,
    "ok": is_bool,
    "identity_ok": is_bool,
    "cells": seq_of(mapping(CELL_SCHEMA)),
    "gates": seq_of(_GATE_RESULT_SCHEMA),
}

_CHECK_POLICY_SCHEMA: Checker = mapping({
    "policy": is_str,
    "max_regression": is_number,
})

_TRAJECTORY_CELL_SCHEMA: Checker = mapping({
    "cell_id": is_str,
    "kind": is_str,
    "axes": map_of(is_scalar),
    "metrics": map_of(is_number),
})

#: The committed trajectory record (``BENCH_<pr>.json``).
TRAJECTORY_SCHEMA: Mapping[str, Checker] = {
    "schema": _tag(TRAJECTORY_SCHEMA_TAG),
    "pr": is_str,
    "config": is_str,
    "config_digest": is_str,
    "scale": is_number,
    "fingerprint": mapping({
        "python": is_str,
        "implementation": is_str,
        "platform": is_str,
        "machine": is_str,
        "numpy": is_str,
    }),
    "checks": map_of(_CHECK_POLICY_SCHEMA),
    "cells": seq_of(_TRAJECTORY_CELL_SCHEMA),
}
