"""Serving-path benchmark: cold vs warm latency across the matrix.

The acceptance measurement of the compile → prepare → serve pipeline
(:mod:`repro.engine.plan`): for each algorithm × backend, the same
preference workloads answered three ways —

``cold``
    A fresh ``MatchingEngine.match()`` per request: config validation,
    staging (R-tree bulk load), and the matching, all paid every time.
    This is what a naive deployment of the one-shot API costs.
``warm miss``
    ``prepared.run()`` against a :class:`~repro.engine.plan.PreparedMatching`
    with a *new* workload each request: the matcher runs, but staging is
    amortized away (and, sharded, the worker pool and shard trees are
    reused).
``warm hit``
    ``prepared.run()`` with a repeated workload: answered from the keyed
    LRU result cache.

Every point re-verifies that warm answers equal the cold answers, so
the speedup table can never report a wrong matching as a win. Matchers
run tree-preserving (``deletion_mode="filter"``) — the serving
configuration; a delete-mode matcher would consume the warm tree and
re-pay staging every run.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..data import generate_independent
from ..engine import MatchingConfig, MatchingEngine, MatchingPlan
from ..errors import MatchingError
from ..prefs import generate_preferences
from .runner import bench_scale

#: Unscaled workload cardinalities. |O| is deliberately large relative
#: to |F|: staging cost grows with the object set, matching cost with
#: the function set, so this is the regime a serving deployment lives
#: in (a big, slowly-changing catalog; small per-request workloads).
SERVING_NUM_OBJECTS = 40_000
SERVING_NUM_FUNCTIONS = 400

#: Distinct workloads measured per point (misses) before the repeats
#: (hits).
DEFAULT_NUM_QUERIES = 3


@dataclass
class ServingPoint:
    """One algorithm × backend cell of the serving matrix."""

    algorithm: str
    backend: str
    n_objects: int
    n_functions: int
    cold_seconds: float
    warm_miss_seconds: float
    warm_hit_seconds: float

    @property
    def miss_speedup(self) -> float:
        """Cold / warm-miss: what amortizing staging alone buys."""
        return self.cold_seconds / max(1e-9, self.warm_miss_seconds)

    @property
    def hit_speedup(self) -> float:
        """Cold / warm-hit: what the result cache buys on repeats."""
        return self.cold_seconds / max(1e-9, self.warm_hit_seconds)

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "n_objects": self.n_objects,
            "n_functions": self.n_functions,
            "cold_seconds": self.cold_seconds,
            "warm_miss_seconds": self.warm_miss_seconds,
            "warm_hit_seconds": self.warm_hit_seconds,
            "miss_speedup": self.miss_speedup,
            "hit_speedup": self.hit_speedup,
        }


@dataclass
class ServingSweep:
    """The full matrix plus workload provenance."""

    variant: str
    dims: int
    seed: int
    num_queries: int
    shards: int
    points: List[ServingPoint] = field(default_factory=list)

    name = "serving"

    def as_dict(self) -> dict:
        return {
            "schema": "serving-1",
            "name": self.name,
            "variant": self.variant,
            "dims": self.dims,
            "seed": self.seed,
            "num_queries": self.num_queries,
            "shards": self.shards,
            "points": [point.as_dict() for point in self.points],
        }


def _serving_config(base_config: MatchingConfig,
                    backend: str) -> MatchingConfig:
    """The serving variant of a bench panel config."""
    return base_config.replace(backend=backend, deletion_mode="filter")


def run_serving_point(objects, workloads: Sequence,
                      base_config: MatchingConfig,
                      backend: str = "memory",
                      label: Optional[str] = None,
                      ) -> Tuple[ServingPoint, List]:
    """Measure one algorithm × backend cell.

    ``workloads`` is a sequence of preference-function lists; each is
    served cold (fresh engine), warm-miss (first prepared run), and
    warm-hit (repeated prepared run), keeping the fastest cold and the
    per-request mean of the warm timings. Returns the point plus the
    warm results (already verified equal to the cold ones).
    """
    if not workloads:
        raise MatchingError("run_serving_point needs at least one workload")
    config = _serving_config(base_config, backend)

    cold_best = float("inf")
    cold_results = []
    for functions in workloads:
        engine = MatchingEngine(config)  # fresh: staging is paid
        start = time.perf_counter()
        cold_results.append(engine.match(objects, functions))
        cold_best = min(cold_best, time.perf_counter() - start)

    plan = MatchingPlan(config)
    prepared = plan.prepare(objects)
    try:
        warm_results = []
        miss_seconds = 0.0
        for functions in workloads:
            start = time.perf_counter()
            warm_results.append(prepared.run(functions))
            miss_seconds += time.perf_counter() - start
        hit_seconds = 0.0
        for functions in workloads:
            start = time.perf_counter()
            prepared.run(functions)
            hit_seconds += time.perf_counter() - start
        for cold, warm in zip(cold_results, warm_results):
            if cold.as_set() != warm.as_set():
                raise MatchingError(
                    f"warm serving diverged from cold match() for "
                    f"{label or base_config.algorithm!r} on {backend!r}"
                )
    finally:
        prepared.close()

    point = ServingPoint(
        algorithm=label or base_config.algorithm,
        backend=backend,
        n_objects=len(objects),
        n_functions=len(workloads[0]),
        cold_seconds=cold_best,
        warm_miss_seconds=miss_seconds / len(workloads),
        warm_hit_seconds=hit_seconds / len(workloads),
    )
    return point, warm_results


def serving_sweep(scale: Optional[float] = None, seed: int = 42,
                  algorithms: Optional[Sequence[str]] = None,
                  backends: Sequence[str] = ("disk", "memory"),
                  dims: int = 4, shards: int = 1,
                  num_queries: int = DEFAULT_NUM_QUERIES,
                  ) -> ServingSweep:
    """The full serving matrix: algorithms × backends, cold vs warm."""
    from .runner import BENCH_CONFIGS

    scale = bench_scale() if scale is None else scale
    if algorithms is None:
        algorithms = ["SB"]
    n_objects = max(800, int(SERVING_NUM_OBJECTS * scale))
    n_functions = max(40, int(SERVING_NUM_FUNCTIONS * scale))
    objects = generate_independent(n_objects, dims, seed=seed)
    workloads = [
        generate_preferences(n_functions, dims, seed=seed + 1 + query)
        for query in range(max(1, num_queries))
    ]

    sweep = ServingSweep(
        variant="independent", dims=dims, seed=seed,
        num_queries=len(workloads), shards=shards,
    )
    for panel in algorithms:
        base = BENCH_CONFIGS[panel]
        if shards > 1:
            base = base.replace(shards=shards)
        for backend in backends:
            point, _ = run_serving_point(
                objects, workloads, base, backend=backend, label=panel,
            )
            sweep.points.append(point)
    return sweep


def format_serving_table(sweep: ServingSweep) -> str:
    """Render the sweep as a GitHub-flavored Markdown table."""
    fan_out = f", shards={sweep.shards}" if sweep.shards > 1 else ""
    lines = [
        f"Serving path: cold match() vs prepared.run() "
        f"({sweep.variant}, D={sweep.dims}, "
        f"|O|={sweep.points[0].n_objects if sweep.points else 0}, "
        f"|F|={sweep.points[0].n_functions if sweep.points else 0} "
        f"per request, {sweep.num_queries} workloads{fan_out})",
        "| algorithm | backend | cold ms | warm-miss ms | speedup "
        "| warm-hit ms | speedup |",
        "|---|---|---|---|---|---|---|",
    ]
    for point in sweep.points:
        lines.append(
            f"| {point.algorithm} | {point.backend} "
            f"| {point.cold_seconds * 1e3:.1f} "
            f"| {point.warm_miss_seconds * 1e3:.1f} "
            f"| {point.miss_speedup:.2f}x "
            f"| {point.warm_hit_seconds * 1e3:.2f} "
            f"| {point.hit_speedup:.0f}x |"
        )
    return "\n".join(lines)


def save_serving_json(sweep: ServingSweep, path) -> None:
    """Write the sweep to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(sweep.as_dict(), indent=2) + "\n")
