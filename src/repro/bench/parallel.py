"""Sharded-matching benchmark: wall-clock speedup across shard counts.

The acceptance measurement of the parallel subsystem: the same workload
matched end-to-end (staging included) through ``repro.match()`` at
increasing shard counts, on the process executor, against the
single-process ``shards=1`` baseline. Anti-correlated data keeps
skylines large — the regime where per-shard matching wins most.

Every point re-verifies that the sharded assignments equal the baseline
assignments, so the speedup table can never silently report a wrong
matching as a win.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from ..data import generate_anticorrelated, generate_independent
from ..engine import MatchingConfig, MatchingEngine
from ..errors import MatchingError
from ..prefs import generate_preferences
from .runner import bench_scale

#: Unscaled workload cardinalities (|O| deliberately large relative to
#: |F|: every shard matches all functions, so the win comes from each
#: shard's smaller tree and skyline).
PARALLEL_NUM_OBJECTS = 40_000
PARALLEL_NUM_FUNCTIONS = 1_000

#: Shard counts reported by default (4 is the headline point).
DEFAULT_SHARD_COUNTS = (1, 2, 4)

_GENERATORS = {
    "anticorrelated": generate_anticorrelated,
    "independent": generate_independent,
}


@dataclass
class ParallelPoint:
    """One shard count's end-to-end measurement."""

    shards: int
    n_objects: int
    n_functions: int
    wall_seconds: float
    io_accesses: int
    shards_used: int = 0
    merge_displaced: int = 0
    repair_steals: int = 0
    #: Wall seconds of the shards=1 baseline (set by the sweep).
    baseline_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Wall-clock speedup over the single-process baseline."""
        return self.baseline_seconds / max(1e-9, self.wall_seconds)

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "n_objects": self.n_objects,
            "n_functions": self.n_functions,
            "wall_seconds": self.wall_seconds,
            "io_accesses": self.io_accesses,
            "shards_used": self.shards_used,
            "merge_displaced": self.merge_displaced,
            "repair_steals": self.repair_steals,
            "speedup": self.speedup,
        }


@dataclass
class ParallelSweep:
    """The shard-count sweep plus its workload provenance."""

    variant: str
    algorithm: str
    backend: str
    executor: str
    dims: int
    seed: int
    points: List[ParallelPoint] = field(default_factory=list)

    name = "parallel"

    def as_dict(self) -> dict:
        return {
            "schema": "parallel-1",
            "name": self.name,
            "variant": self.variant,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "executor": self.executor,
            "dims": self.dims,
            "seed": self.seed,
            "points": [point.as_dict() for point in self.points],
        }


def run_parallel_point(objects, functions, shards: int,
                       executor: str = "process",
                       base_config: Optional[MatchingConfig] = None,
                       repeats: int = 1):
    """Measure one end-to-end ``match()`` at the given shard count.

    Returns ``(ParallelPoint, MatchResult)``; a fresh engine per repeat
    so staging is always paid (the honest serving-cold cost), keeping
    the best of ``repeats`` runs.
    """
    if base_config is None:
        base_config = MatchingConfig()
    config = base_config.replace(shards=shards, executor=executor)
    best_seconds = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        engine = MatchingEngine(config)
        start = time.perf_counter()
        candidate = engine.match(objects, functions)
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
            result = candidate
    point = ParallelPoint(
        shards=shards,
        n_objects=len(objects),
        n_functions=len(functions),
        wall_seconds=best_seconds,
        io_accesses=result.io_accesses,
        shards_used=int(result.stats.get("shards_used", 1)),
        merge_displaced=int(result.stats.get("merge_displaced", 0)),
        repair_steals=int(result.stats.get("repair_steals", 0)),
    )
    return point, result


def parallel_sweep(scale: Optional[float] = None, seed: int = 42,
                   shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
                   variant: str = "anticorrelated", dims: int = 4,
                   executor: str = "process",
                   base_config: Optional[MatchingConfig] = None,
                   repeats: int = 1) -> ParallelSweep:
    """The shard-count sweep, with per-point equality re-verification."""
    scale = bench_scale() if scale is None else scale
    generator = _GENERATORS[variant]
    if base_config is None:
        base_config = MatchingConfig()
    n_objects = max(800, int(PARALLEL_NUM_OBJECTS * scale))
    n_functions = max(40, int(PARALLEL_NUM_FUNCTIONS * scale))
    objects = generator(n_objects, dims, seed=seed)
    functions = generate_preferences(n_functions, dims, seed=seed + 1)

    sweep = ParallelSweep(
        variant=variant, algorithm=base_config.algorithm,
        backend=base_config.backend, executor=executor,
        dims=dims, seed=seed,
    )
    reference = None
    baseline_seconds = None
    for shards in shard_counts:
        point, result = run_parallel_point(
            objects, functions, shards, executor=executor,
            base_config=base_config, repeats=repeats,
        )
        assignments = sorted(
            (pair.function_id, pair.object_id, pair.score)
            for pair in result.pairs
        )
        if reference is None:
            reference = assignments
        elif assignments != reference:
            raise MatchingError(
                f"sharded matching at shards={shards} diverged from the "
                f"shards={shard_counts[0]} baseline"
            )
        if baseline_seconds is None:
            baseline_seconds = point.wall_seconds
        point.baseline_seconds = baseline_seconds
        sweep.points.append(point)
    return sweep


def format_parallel_table(sweep: ParallelSweep) -> str:
    """Render the sweep as a GitHub-flavored Markdown table."""
    lines = [
        f"Sharded matching ({sweep.variant}, D={sweep.dims}, "
        f"|O|={sweep.points[0].n_objects if sweep.points else 0}, "
        f"|F|={sweep.points[0].n_functions if sweep.points else 0}, "
        f"algorithm={sweep.algorithm}, backend={sweep.backend}, "
        f"executor={sweep.executor})",
        "| shards | wall s | speedup | I/O accesses | displaced "
        "| repair steals |",
        "|---|---|---|---|---|---|",
    ]
    for point in sweep.points:
        lines.append(
            f"| {point.shards} | {point.wall_seconds:.3f} "
            f"| {point.speedup:.2f}x | {point.io_accesses} "
            f"| {point.merge_displaced} | {point.repair_steals} |"
        )
    return "\n".join(lines)


def save_parallel_json(sweep: ParallelSweep, path) -> None:
    """Write the sweep to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(sweep.as_dict(), indent=2) + "\n")
