"""Persisting experiment results.

Sweeps serialize to JSON (one file per figure) and render to Markdown,
so benchmark runs can be archived, diffed across commits, and pasted
into reports. The JSON schema is stable and round-trips through
:func:`load_sweep_json`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..errors import MatchingError
from .instruments import RunMeasurement
from .runner import Sweep, SweepPoint

PathLike = Union[str, Path]

#: Schema version written into every file.
SCHEMA_VERSION = 1


def sweep_to_dict(sweep: Sweep) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "name": sweep.name,
        "x_label": sweep.x_label,
        "algorithms": list(sweep.algorithms),
        "points": [
            {
                "x": point.x,
                "label": point.label,
                "params": dict(point.params),
                "results": {
                    algorithm: measurement.as_dict()
                    for algorithm, measurement in point.results.items()
                },
            }
            for point in sweep.points
        ],
    }


def save_sweep_json(sweep: Sweep, path: PathLike) -> None:
    """Write one sweep to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(sweep_to_dict(sweep), indent=2) + "\n")


def load_sweep_json(path: PathLike) -> Sweep:
    """Reconstruct a sweep written by :func:`save_sweep_json`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SCHEMA_VERSION:
        raise MatchingError(
            f"{path}: unsupported sweep schema {payload.get('schema')!r}"
        )
    sweep = Sweep(
        name=payload["name"],
        x_label=payload["x_label"],
        algorithms=tuple(payload["algorithms"]),
    )
    for raw_point in payload["points"]:
        point = SweepPoint(
            x=raw_point["x"], label=raw_point["label"],
            params=dict(raw_point["params"]),
        )
        for algorithm, raw in raw_point["results"].items():
            fields = {
                key: raw[key]
                for key in (
                    "algorithm", "io_accesses", "page_reads", "page_writes",
                    "buffer_hits", "cpu_seconds", "pairs", "rounds",
                    "top1_searches", "reverse_top1_queries",
                )
            }
            point.results[algorithm] = RunMeasurement(**fields)
        sweep.points.append(point)
    return sweep


def sweep_to_markdown(sweep: Sweep, metric: str = "io_accesses") -> str:
    """Render one metric of a sweep as a GitHub-flavored Markdown table."""
    algorithms = list(sweep.algorithms)
    lines: List[str] = []
    lines.append(f"| {sweep.x_label} | " + " | ".join(algorithms) + " |")
    lines.append("|" + "---|" * (len(algorithms) + 1))
    for point in sweep.points:
        cells = []
        for algorithm in algorithms:
            value = point.metric(algorithm, metric)
            if metric == "cpu_seconds":
                cells.append(f"{value:.3f}")
            else:
                cells.append(f"{int(value)}")
        lines.append(f"| {point.label} | " + " | ".join(cells) + " |")
    return "\n".join(lines)
