"""Programmatic ablation runs (the CLI's ``--figure ablations``).

One anti-correlated workload, every SB design switch toggled one at a
time, plus the baseline-adaptation toggles. Returns structured results
(for tests and JSON) and a formatted table (for the CLI).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import BruteForceMatcher, ChainMatcher, MatchingProblem, SkylineMatcher
from ..errors import MatchingError
from ..data import generate_anticorrelated
from ..prefs import generate_preferences
from ..storage import SearchStats
from .runner import bench_scale

#: (row label, SkylineMatcher kwargs) for the SB ablation grid.
SB_VARIANTS: List[Tuple[str, dict]] = [
    ("SB as published", {}),
    ("single pair per loop", {"multi_pair": False}),
    ("re-traversal maintenance", {"maintenance": "retraversal"}),
    ("naive TA threshold", {"threshold": "naive"}),
    ("no fbest caching", {"cache_best": False}),
]


def run_sb_ablations(scale: Optional[float] = None, dims: int = 4,
                     seed: int = 99) -> Dict[str, Dict[str, float]]:
    """Run every SB variant on one workload; returns per-variant metrics."""
    if scale is None:
        scale = bench_scale()
    num_objects = max(200, int(100_000 * scale))
    num_functions = max(20, int(5_000 * scale))
    objects = generate_anticorrelated(num_objects, dims, seed=seed)
    functions = generate_preferences(num_functions, dims, seed=seed + 1)

    results: Dict[str, Dict[str, float]] = {}
    reference = None
    for label, kwargs in SB_VARIANTS:
        problem = MatchingProblem.build(objects, functions)
        problem.reset_io()
        stats = SearchStats()
        matcher = SkylineMatcher(problem, search_stats=stats, **kwargs)
        matching = matcher.run()
        if reference is None:
            reference = matching.as_set()
        elif matching.as_set() != reference:
            raise MatchingError(
                f"ablation variant {label!r} changed the matching"
            )
        results[label] = {
            "io": problem.io_stats.io_accesses,
            "rounds": matcher.rounds,
            "reverse_top1": matcher.reverse_top1_queries,
            "score_evals": stats.score_evaluations,
        }

    for label, matcher_factory in [
        ("Chain (restart, paper)", lambda p: ChainMatcher(p, restart=True)),
        ("Chain (retained stack)", lambda p: ChainMatcher(p, restart=False)),
        ("Brute Force", BruteForceMatcher),
    ]:
        problem = MatchingProblem.build(objects, functions)
        problem.reset_io()
        matcher = matcher_factory(problem)
        matching = matcher.run()
        if matching.as_set() != reference:
            raise MatchingError(f"{label!r} changed the matching")
        results[label] = {
            "io": problem.io_stats.io_accesses,
            "rounds": matching.num_rounds,
            "top1_searches": getattr(matcher, "top1_searches", 0),
        }
    return results


def format_ablation_table(results: Dict[str, Dict[str, float]]) -> str:
    """Render :func:`run_sb_ablations` output as an aligned text table."""
    columns = ["io", "rounds", "reverse_top1", "score_evals", "top1_searches"]
    header = f"{'variant':>26} " + " ".join(f"{c:>13}" for c in columns)
    lines = [header, "-" * len(header)]
    for label, metrics in results.items():
        cells = []
        for column in columns:
            value = metrics.get(column)
            cells.append(f"{int(value):>13d}" if value is not None
                         else f"{'-':>13}")
        lines.append(f"{label:>26} " + " ".join(cells))
    return "\n".join(lines)
