"""Workload definitions for every figure in the paper's evaluation.

The paper's evaluation (Section V) consists of:

* **Figure 2** — synthetic data, |O| = 100K objects, |F| = 5K functions,
  dimensionality swept over 3..6; four panels: I/O and CPU for
  independent and anti-correlated object sets;
* **Figure 3** — the Zillow real-estate dataset (substituted here by the
  synthetic generator of :mod:`repro.data.zillow`), D = 5, |F| = 5K,
  object cardinality swept over 10K..400K; two panels: I/O and CPU.

Cardinalities scale with ``scale`` (default from ``REPRO_BENCH_SCALE``)
so the pure-Python harness stays fast; the qualitative shape — who wins,
by how many orders of magnitude, and the growth trend — is preserved at
any scale, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..data import generate_anticorrelated, generate_independent, generate_zillow
from ..errors import ReproError
from ..prefs import generate_preferences
from .runner import DEFAULT_ALGORITHM_ORDER, Sweep, SweepPoint, bench_scale, run_point

#: Paper cardinalities (before scaling).
PAPER_NUM_OBJECTS = 100_000
PAPER_NUM_FUNCTIONS = 5_000
PAPER_DIMENSIONS = (3, 4, 5, 6)
PAPER_ZILLOW_SIZES = (10_000, 50_000, 100_000, 200_000, 400_000)

_SYNTHETIC_GENERATORS = {
    "independent": generate_independent,
    "anticorrelated": generate_anticorrelated,
}


def figure2_sweep(variant: str, scale: Optional[float] = None,
                  dims: Sequence[int] = PAPER_DIMENSIONS,
                  algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
                  backend: str = "disk",
                  seed: int = 42) -> Sweep:
    """Figure 2 workload: vary D on synthetic data.

    ``variant`` is ``"independent"`` (panels a, c) or ``"anticorrelated"``
    (panels b, d). The returned sweep carries both metrics; panels differ
    only in which metric they plot.
    """
    try:
        generator = _SYNTHETIC_GENERATORS[variant]
    except KeyError:
        raise ReproError(
            f"variant must be one of {sorted(_SYNTHETIC_GENERATORS)}, "
            f"got {variant!r}"
        ) from None
    if scale is None:
        scale = bench_scale()
    num_objects = max(200, int(PAPER_NUM_OBJECTS * scale))
    num_functions = max(20, int(PAPER_NUM_FUNCTIONS * scale))

    sweep = Sweep(
        name=f"figure2-{variant}", x_label="D", algorithms=list(algorithms)
    )
    for d in dims:
        objects = generator(num_objects, d, seed=seed + d)
        functions = generate_preferences(num_functions, d, seed=seed + 100 + d)
        point = SweepPoint(
            x=d, label=f"D={d}",
            params={
                "num_objects": num_objects,
                "num_functions": num_functions,
                "dims": d,
            },
        )
        point.results = run_point(objects, functions, algorithms=algorithms,
                                  backend=backend)
        sweep.points.append(point)
    return sweep


def figure3_sweep(scale: Optional[float] = None,
                  sizes: Sequence[int] = PAPER_ZILLOW_SIZES,
                  algorithms: Sequence[str] = DEFAULT_ALGORITHM_ORDER,
                  backend: str = "disk",
                  seed: int = 42) -> Sweep:
    """Figure 3 workload: vary |O| on the (synthetic) Zillow dataset.

    As in the paper, each cardinality is a random subset of one big
    Zillow universe, matched against |F| = 5K (scaled) functions.
    """
    if scale is None:
        scale = bench_scale()
    num_functions = max(20, int(PAPER_NUM_FUNCTIONS * scale))
    universe = generate_zillow(max(400, int(max(sizes) * scale)), seed=seed)
    dims = universe.dims

    sweep = Sweep(name="figure3-zillow", x_label="|O|",
                  algorithms=list(algorithms))
    for size in sizes:
        scaled = max(200, int(size * scale))
        objects = (
            universe if scaled >= len(universe)
            else universe.sample(scaled, seed=seed + size)
        )
        functions = generate_preferences(num_functions, dims,
                                         seed=seed + 7 + size)
        point = SweepPoint(
            x=size, label=f"|O|={size // 1000}K(x{scale:g})",
            params={
                "num_objects": len(objects),
                "num_functions": num_functions,
                "dims": dims,
            },
        )
        point.results = run_point(objects, functions, algorithms=algorithms,
                                  backend=backend)
        sweep.points.append(point)
    return sweep
