"""Replay benchmark: the scenario harness as a serving-stack gate.

One row per shipped scenario (``diurnal``, ``flash-crowd``,
``adversarial``): the trace is generated at the bench scale, replayed
against the full serving stack with per-burst ground-truth verification
on, and then rewound to the midpoint boundary to time and verify exact
state restoration. Three numbers carry the acceptance bar
(``benchmarks/bench_replay.py`` and the ``replay-smoke`` CI job):

* ``stale_hits == 0`` — no scenario ever served a cached result that a
  cold recompute at the same clock would contradict;
* ``freshness_mismatches == 0`` — every served result matched the
  structural oracle;
* ``rewind_verified`` — rewinding to the midpoint restored matching
  pairs and cache keys bit-identically.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from ..replay import ReplayDriver, available_scenarios, scenario_trace
from ..replay.report import ScenarioReport
from .runner import bench_scale


@dataclass
class ReplayPoint:
    """One scenario's replay outcome plus the rewind check."""

    scenario: str
    transport: str
    backend: str
    requests: int
    churn_events: int
    freshness_checks: int
    freshness_mismatches: int
    stale_hits: int
    replay_seconds: float
    rewind_seconds: float
    rewind_verified: bool

    @property
    def ok(self) -> bool:
        return (self.stale_hits == 0 and self.freshness_mismatches == 0
                and self.rewind_verified)

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "transport": self.transport,
            "backend": self.backend,
            "requests": self.requests,
            "churn_events": self.churn_events,
            "freshness_checks": self.freshness_checks,
            "freshness_mismatches": self.freshness_mismatches,
            "stale_hits": self.stale_hits,
            "replay_seconds": self.replay_seconds,
            "rewind_seconds": self.rewind_seconds,
            "rewind_verified": self.rewind_verified,
            "ok": self.ok,
        }


@dataclass
class ReplaySweep:
    """All scenario rows plus workload provenance."""

    seed: int
    scale: float
    backend: str
    transport: str
    points: List[ReplayPoint] = field(default_factory=list)
    reports: List[ScenarioReport] = field(default_factory=list)

    name = "replay"

    @property
    def ok(self) -> bool:
        return all(point.ok for point in self.points)

    def as_dict(self) -> dict:
        return {
            "schema": "replay-1",
            "name": self.name,
            "seed": self.seed,
            "scale": self.scale,
            "backend": self.backend,
            "transport": self.transport,
            "ok": self.ok,
            "points": [point.as_dict() for point in self.points],
            "reports": [report.as_dict() for report in self.reports],
        }


def _driver_state(driver: ReplayDriver):
    pairs = tuple(
        (pair.function_id, pair.object_id, pair.score)
        for pair in driver.matching().pairs
    )
    return pairs, driver.cache_keys()


def run_replay_point(scenario: str, scale: float, seed: int = 42,
                     backend: str = "memory",
                     transport: str = "local",
                     ):
    """Replay one scenario with verification on, then rewind-check it.

    Returns ``(ReplayPoint, ScenarioReport)`` — the summary row and the
    full per-phase report behind it.

    The rewind check targets the first phase boundary: after the full
    replay, ``rewind`` must restore the matching pairs and cache keys
    captured when the clock first passed that boundary. The check runs
    only on the ``local`` transport — micro-batch timing on the async
    and socket paths makes cache contents run-dependent there.
    """
    trace = scenario_trace(scenario, seed=seed, scale=scale)
    spans = trace.phase_spans()
    first_end = next(iter(spans.values()))[1]
    with ReplayDriver(trace, backend=backend, transport=transport,
                      verify=True) as driver:
        start = time.perf_counter()
        driver.advance(first_end)
        midpoint = _driver_state(driver) if transport == "local" else None
        report = driver.run()
        replay_seconds = time.perf_counter() - start

        rewind_verified = True
        rewind_seconds = 0.0
        if midpoint is not None:
            start = time.perf_counter()
            driver.rewind(first_end)
            rewind_seconds = time.perf_counter() - start
            rewind_verified = _driver_state(driver) == midpoint
    point = ReplayPoint(
        scenario=scenario,
        transport=transport,
        backend=backend,
        requests=report.requests,
        churn_events=report.churn_events,
        freshness_checks=report.freshness_checks,
        freshness_mismatches=report.freshness_mismatches,
        stale_hits=report.stale_hits,
        replay_seconds=replay_seconds,
        rewind_seconds=rewind_seconds,
        rewind_verified=rewind_verified,
    )
    return point, report


def replay_sweep(scale: Optional[float] = None, seed: int = 42,
                 scenarios: Optional[Sequence[str]] = None,
                 backend: str = "memory",
                 transport: str = "local") -> ReplaySweep:
    """Replay every shipped scenario (or ``scenarios``) at bench scale."""
    scale = bench_scale() if scale is None else scale
    # Replay traces are request-dominated; the bench default of 0.05
    # would hollow the populations out entirely, so floor at 0.5.
    trace_scale = max(0.5, scale * 10)
    names = tuple(scenarios) if scenarios else tuple(
        sorted(available_scenarios())
    )
    sweep = ReplaySweep(seed=seed, scale=trace_scale, backend=backend,
                        transport=transport)
    for scenario in names:
        point, report = run_replay_point(
            scenario, scale=trace_scale, seed=seed,
            backend=backend, transport=transport,
        )
        sweep.points.append(point)
        sweep.reports.append(report)
    return sweep


def format_replay_table(sweep: ReplaySweep) -> str:
    """Render the sweep as a GitHub-flavored Markdown table."""
    lines = [
        f"Replay scenarios: full-stack freshness + exact rewind "
        f"(scale={sweep.scale:g}, backend={sweep.backend}, "
        f"transport={sweep.transport})",
        "| scenario | reqs | churn | checks | stale | mismatch "
        "| replay s | rewind ms | rewound |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for point in sweep.points:
        lines.append(
            f"| {point.scenario} "
            f"| {point.requests} "
            f"| {point.churn_events} "
            f"| {point.freshness_checks} "
            f"| {point.stale_hits} "
            f"| {point.freshness_mismatches} "
            f"| {point.replay_seconds:.2f} "
            f"| {point.rewind_seconds * 1e3:.1f} "
            f"| {'yes' if point.rewind_verified else 'NO'} |"
        )
    verdict = "fresh, rewind exact" if sweep.ok else "FAILED"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def save_replay_json(sweep: ReplaySweep, path) -> None:
    """Write the sweep (including full per-phase reports) as JSON."""
    Path(path).write_text(json.dumps(sweep.as_dict(), indent=2,
                                     sort_keys=True) + "\n")
