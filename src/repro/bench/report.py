"""Text reports: the paper's figures as aligned tables.

Each figure becomes one table with the sweep variable as rows and one
column per algorithm, in the same units the paper plots (I/O accesses on
a log axis, CPU seconds linear). A ratio column states SB's advantage
over the runner-up, which is the headline claim ("2 to 3 orders of
magnitude fewer I/Os").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .runner import Sweep

#: metric name -> (column header, formatter)
_METRICS = {
    "io_accesses": ("I/O", lambda v: f"{int(v):>10d}"),
    "cpu_seconds": ("CPU(s)", lambda v: f"{v:>10.3f}"),
    "page_reads": ("reads", lambda v: f"{int(v):>10d}"),
    "page_writes": ("writes", lambda v: f"{int(v):>10d}"),
    "top1_searches": ("top-1s", lambda v: f"{int(v):>10d}"),
    "rounds": ("rounds", lambda v: f"{int(v):>10d}"),
}


def format_sweep_table(sweep: Sweep, metric: str = "io_accesses",
                       title: Optional[str] = None,
                       ratio_to: str = "SB") -> str:
    """Render one metric of a sweep as an aligned text table."""
    try:
        header_name, fmt = _METRICS[metric]
    except KeyError:
        header_name, fmt = metric, lambda v: f"{v:>10g}"
    algorithms = list(sweep.algorithms)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"[{sweep.name}] metric: {header_name}")
    header = f"{sweep.x_label:>14} " + " ".join(
        f"{name:>10}" for name in algorithms
    )
    show_ratio = ratio_to in algorithms and len(algorithms) > 1
    if show_ratio:
        header += f" {'best/' + ratio_to:>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for point in sweep.points:
        row = f"{point.label:>14} "
        row += " ".join(fmt(point.metric(name, metric)) for name in algorithms)
        if show_ratio:
            base = point.metric(ratio_to, metric)
            others = [
                point.metric(name, metric)
                for name in algorithms
                if name != ratio_to
            ]
            runner_up = min(others)
            if base > 0:
                row += f" {runner_up / base:>9.1f}x"
            else:
                row += f" {'inf':>10}"
        lines.append(row)
    return "\n".join(lines)


def format_figure(sweep: Sweep, metrics: Sequence[str] = ("io_accesses",
                                                          "cpu_seconds"),
                  title: Optional[str] = None) -> str:
    """Render a figure (possibly multiple panels/metrics) as text."""
    parts: List[str] = []
    if title:
        parts.append("=" * 64)
        parts.append(title)
        parts.append("=" * 64)
    for metric in metrics:
        parts.append(format_sweep_table(sweep, metric))
        parts.append("")
    return "\n".join(parts)


def orders_of_magnitude(a: float, b: float) -> float:
    """``log10(a / b)`` with guards; how many orders ``a`` exceeds ``b``."""
    if a <= 0 or b <= 0:
        return float("inf") if a > b else 0.0
    return math.log10(a / b)
