"""Measurement instruments for benchmark runs.

A :class:`RunMeasurement` captures everything the paper reports for one
algorithm execution: I/O accesses (buffer-missed page reads + writes),
CPU time, plus auxiliary counters (pairs, rounds, top-1 / reverse-top-1
query counts) that explain *why* the costs differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core import Matcher, Matching, MatchingProblem
from ..storage import IOSnapshot


@dataclass
class RunMeasurement:
    """One (algorithm, workload) execution's costs and outputs."""

    algorithm: str
    io_accesses: int
    page_reads: int
    page_writes: int
    buffer_hits: int
    cpu_seconds: float
    pairs: int
    rounds: int
    top1_searches: int = 0
    reverse_top1_queries: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        result = {
            "algorithm": self.algorithm,
            "io_accesses": self.io_accesses,
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "buffer_hits": self.buffer_hits,
            "cpu_seconds": self.cpu_seconds,
            "pairs": self.pairs,
            "rounds": self.rounds,
            "top1_searches": self.top1_searches,
            "reverse_top1_queries": self.reverse_top1_queries,
        }
        result.update(self.extra)
        return result


def measure_matcher(matcher: Matcher) -> RunMeasurement:
    """Run ``matcher`` to completion on a cold cache, measuring costs.

    The problem's I/O counters are reset (and the buffer emptied) before
    the run, so the measurement covers exactly one matching execution —
    the same protocol as the paper, whose numbers exclude index building.
    """
    measurement, _ = measure_run(matcher)
    return measurement


def measure_run(matcher: Matcher) -> Tuple[RunMeasurement, Matching]:
    """:func:`measure_matcher`, but also return the matching itself.

    The matrix runner needs the produced matching to assert every cell
    pair-identical to the canonical matcher; the measurement protocol
    (cold buffer, counters reset, index building excluded) is identical.
    """
    problem = matcher.problem
    problem.reset_io()
    start = time.perf_counter()
    matching = matcher.run()
    cpu_seconds = time.perf_counter() - start
    stats = problem.io_stats
    measurement = RunMeasurement(
        algorithm=matcher.name,
        io_accesses=stats.io_accesses,
        page_reads=stats.page_reads,
        page_writes=stats.page_writes,
        buffer_hits=stats.buffer_hits,
        cpu_seconds=cpu_seconds,
        pairs=len(matching),
        rounds=matching.num_rounds,
        top1_searches=getattr(matcher, "top1_searches", 0),
        reverse_top1_queries=getattr(matcher, "reverse_top1_queries", 0),
    )
    return measurement, matching
