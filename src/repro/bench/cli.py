"""Command-line entry point: ``python -m repro.bench``.

Regenerates the paper's figures as text tables. Examples::

    python -m repro.bench --figure 2a            # I/O, independent data
    python -m repro.bench --figure 2 --scale 0.1 # all four Fig. 2 panels
    python -m repro.bench --figure all           # everything (default)
    python -m repro.bench --figure 2a --algorithms SB        # one matcher
    python -m repro.bench --figure 2a --backend memory       # fast path
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..engine import available_backends
from ..engine.config import EXECUTORS
from .figures import figure2_sweep, figure3_sweep
from .report import format_sweep_table
from .runner import BENCH_CONFIGS, bench_scale, resolve_algorithms

#: figure id -> (builder kwargs, metric, title)
_PANELS = {
    "2a": ("independent", "io_accesses", "Fig 2(a) I/O accesses (independent)"),
    "2b": ("anticorrelated", "io_accesses",
           "Fig 2(b) I/O accesses (anti-correlated)"),
    "2c": ("independent", "cpu_seconds", "Fig 2(c) CPU time (independent)"),
    "2d": ("anticorrelated", "cpu_seconds",
           "Fig 2(d) CPU time (anti-correlated)"),
    "3a": ("zillow", "io_accesses", "Fig 3(a) I/O accesses (Zillow)"),
    "3b": ("zillow", "cpu_seconds", "Fig 3(b) CPU time (Zillow)"),
}


def _expand(figure: str) -> List[str]:
    if figure in ("ablations", "dynamic", "parallel", "serving",
                  "throughput", "net", "replay"):
        return [figure]
    if figure == "all":
        return list(_PANELS)
    if figure in ("2", "3"):
        return [panel for panel in _PANELS if panel.startswith(figure)]
    if figure in _PANELS:
        return [figure]
    raise SystemExit(
        f"unknown figure {figure!r}; choose from "
        f"{['all', '2', '3', 'ablations', 'dynamic', 'parallel', 'serving', 'throughput', 'net', 'replay'] + list(_PANELS)}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the figures of 'Efficient Evaluation of "
                    "Multiple Preference Queries' (ICDE 2009).",
    )
    parser.add_argument("--figure", default="all",
                        help="all, 2, 3, a panel id like 2a, 'ablations', "
                             "'dynamic' (incremental repair vs full "
                             "recompute under streaming updates), "
                             "'parallel' (sharded matching speedup over "
                             "shard counts), 'serving' (cold match() "
                             "vs prepared.run() across algorithms x "
                             "backends), 'throughput' (batched "
                             "submit_many vs looped submit across "
                             "batch sizes), 'net' (loopback "
                             "server/worker subprocesses vs in-process "
                             "serving), or 'replay' (time-stamped "
                             "scenario traces against the full serving "
                             "stack with ground-truth freshness checks "
                             "and an exact-rewind gate) (default: all)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale vs the paper's cardinalities "
                             "(default: REPRO_BENCH_SCALE or 0.05)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--algorithms", default=None, metavar="NAMES",
                        help="comma-separated subset of the bench panel "
                             f"({', '.join(sorted(BENCH_CONFIGS))}); "
                             "default: SB,BruteForce,Chain")
    parser.add_argument("--backend", default=None,
                        choices=sorted(available_backends()),
                        help="storage backend for every run "
                             "(default: disk, the paper's cost model; "
                             "--figure serving sweeps disk and memory "
                             "unless one is forced here)")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also save each sweep as JSON into DIR")
    parser.add_argument("--batch-sizes", default="1,8,32", metavar="SIZES",
                        help="comma-separated batch sizes for "
                             "--figure throughput (default: 1,8,32)")
    parser.add_argument("--shards", default="1,2,4", metavar="COUNTS",
                        help="comma-separated shard counts for "
                             "--figure parallel (default: 1,2,4)")
    parser.add_argument("--executor", default="process",
                        choices=list(EXECUTORS),
                        help="shard executor for --figure parallel "
                             "(default: process)")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else bench_scale()
    requested = None
    if args.algorithms is not None:
        requested = [name.strip() for name in args.algorithms.split(",")
                     if name.strip()]
        if not requested:
            raise SystemExit("--algorithms requires at least one name")
    try:
        algorithms = resolve_algorithms(requested)
    except Exception as error:
        raise SystemExit(str(error))
    panels = _expand(args.figure)
    backend = args.backend if args.backend is not None else "disk"
    print(f"# workload scale: {scale:g} of the paper's cardinalities")
    if backend != "disk":
        print(f"# storage backend: {backend}")

    cache = {}
    dynamic_results = []
    parallel_results = []
    serving_result = None
    throughput_result = None
    net_result = None
    replay_result = None
    for panel in panels:
        if panel == "replay":
            from .replay import format_replay_table, replay_sweep

            replay_result = replay_sweep(
                scale=scale, seed=args.seed,
                backend=args.backend if args.backend is not None
                else "memory",
            )
            print()
            print(format_replay_table(replay_result))
            continue
        if panel == "net":
            from .net import format_net_table, net_sweep

            try:
                batch_sizes = [
                    int(token) for token in args.batch_sizes.split(",")
                    if token
                ]
            except ValueError:
                raise SystemExit(
                    f"--batch-sizes must be comma-separated integers, "
                    f"got {args.batch_sizes!r}"
                )
            if not batch_sizes or min(batch_sizes) < 1:
                raise SystemExit(
                    f"--batch-sizes requires counts >= 1, "
                    f"got {args.batch_sizes!r}"
                )
            net_result = net_sweep(
                scale=scale, seed=args.seed,
                batch_sizes=batch_sizes,
            )
            print()
            print(format_net_table(net_result))
            continue
        if panel == "throughput":
            from .throughput import (
                format_throughput_table,
                throughput_sweep,
            )

            try:
                batch_sizes = [
                    int(token) for token in args.batch_sizes.split(",")
                    if token
                ]
            except ValueError:
                raise SystemExit(
                    f"--batch-sizes must be comma-separated integers, "
                    f"got {args.batch_sizes!r}"
                )
            if not batch_sizes or min(batch_sizes) < 1:
                raise SystemExit(
                    f"--batch-sizes requires counts >= 1, "
                    f"got {args.batch_sizes!r}"
                )
            throughput_result = throughput_sweep(
                scale=scale, seed=args.seed,
                batch_sizes=batch_sizes,
                algorithms=requested or ["SB"],
                backends=(
                    (args.backend,) if args.backend is not None
                    else ("memory",)
                ),
            )
            print()
            print(format_throughput_table(throughput_result))
            continue
        if panel == "serving":
            from .serving import format_serving_table, serving_sweep

            serving_result = serving_sweep(
                scale=scale, seed=args.seed,
                algorithms=requested or ["SB"],
                backends=(
                    (args.backend,) if args.backend is not None
                    else ("disk", "memory")
                ),
            )
            print()
            print(format_serving_table(serving_result))
            continue
        if panel == "parallel":
            from ..engine import algorithm_supports_repair
            from .parallel import format_parallel_table, parallel_sweep

            try:
                shard_counts = [
                    int(token) for token in args.shards.split(",") if token
                ]
            except ValueError:
                raise SystemExit(
                    f"--shards must be comma-separated integers, "
                    f"got {args.shards!r}"
                )
            if not shard_counts:
                raise SystemExit("--shards requires at least one count")
            if min(shard_counts) < 1:
                raise SystemExit(
                    f"--shards counts must be >= 1, got {args.shards!r}"
                )
            for panel_name in requested or ["SB"]:
                panel_config = BENCH_CONFIGS[panel_name]
                if not algorithm_supports_repair(panel_config.algorithm):
                    raise SystemExit(
                        f"--figure parallel requires a canonical "
                        f"linear-preference algorithm (one that supports "
                        f"repair); {panel_name!r} (algorithm "
                        f"{panel_config.algorithm!r}) does not"
                    )
                sweep = parallel_sweep(
                    scale=scale, seed=args.seed,
                    shard_counts=shard_counts, executor=args.executor,
                    base_config=panel_config.replace(backend=backend),
                )
                parallel_results.append((panel_name, sweep))
                print()
                print(format_parallel_table(sweep))
            continue
        if panel == "dynamic":
            from ..engine import algorithm_supports_repair
            from .dynamic import dynamic_sweep, format_dynamic_table

            dynamic_results = []
            for panel_name in requested or ["SB"]:
                panel_config = BENCH_CONFIGS[panel_name]
                if not algorithm_supports_repair(panel_config.algorithm):
                    raise SystemExit(
                        f"--figure dynamic requires an algorithm that "
                        f"supports incremental repair; {panel_name!r} "
                        f"(algorithm {panel_config.algorithm!r}) does not"
                    )
                sweep = dynamic_sweep(
                    scale=scale, seed=args.seed,
                    base_config=panel_config.replace(backend=backend),
                )
                dynamic_results.append((panel_name, sweep))
                print()
                print(format_dynamic_table(sweep))
            continue
        if panel == "ablations":
            from .ablations import format_ablation_table, run_sb_ablations

            print()
            print("Ablations (anti-correlated, D=4)")
            print(format_ablation_table(run_sb_ablations(scale=scale,
                                                         seed=args.seed)))
            continue
        variant, metric, title = _PANELS[panel]
        if variant not in cache:
            if variant == "zillow":
                cache[variant] = figure3_sweep(scale=scale, seed=args.seed,
                                               algorithms=algorithms,
                                               backend=backend)
            else:
                cache[variant] = figure2_sweep(variant, scale=scale,
                                               seed=args.seed,
                                               algorithms=algorithms,
                                               backend=backend)
        print()
        print(format_sweep_table(cache[variant], metric, title=title))

    if args.json is not None:
        from pathlib import Path

        from .record import save_sweep_json

        directory = Path(args.json)
        directory.mkdir(parents=True, exist_ok=True)
        for variant, sweep in cache.items():
            target = directory / f"{sweep.name}.json"
            save_sweep_json(sweep, target)
            print(f"# wrote {target}")
        if dynamic_results:
            from .dynamic import save_dynamic_json

            for panel_name, sweep in dynamic_results:
                suffix = "" if panel_name == "SB" else f"-{panel_name}"
                target = directory / f"dynamic{suffix}.json"
                save_dynamic_json(sweep, target)
                print(f"# wrote {target}")
        if parallel_results:
            from .parallel import save_parallel_json

            for panel_name, sweep in parallel_results:
                suffix = "" if panel_name == "SB" else f"-{panel_name}"
                target = directory / f"parallel{suffix}.json"
                save_parallel_json(sweep, target)
                print(f"# wrote {target}")
        if serving_result is not None:
            from .serving import save_serving_json

            target = directory / "serving.json"
            save_serving_json(serving_result, target)
            print(f"# wrote {target}")
        if throughput_result is not None:
            from .throughput import save_throughput_json

            target = directory / "throughput.json"
            save_throughput_json(throughput_result, target)
            print(f"# wrote {target}")
        if net_result is not None:
            from .net import save_net_json

            target = directory / "net.json"
            save_net_json(net_result, target)
            print(f"# wrote {target}")
        if replay_result is not None:
            from .replay import save_replay_json

            target = directory / "replay.json"
            save_replay_json(replay_result, target)
            print(f"# wrote {target}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
