"""Benchmark harness reproducing the paper's evaluation section."""

from .figures import (
    PAPER_DIMENSIONS,
    PAPER_NUM_FUNCTIONS,
    PAPER_NUM_OBJECTS,
    PAPER_ZILLOW_SIZES,
    figure2_sweep,
    figure3_sweep,
)
from .ablations import SB_VARIANTS, format_ablation_table, run_sb_ablations
from .instruments import RunMeasurement, measure_matcher
from .record import (
    load_sweep_json,
    save_sweep_json,
    sweep_to_dict,
    sweep_to_markdown,
)
from .report import format_figure, format_sweep_table, orders_of_magnitude
from .runner import (
    ALGORITHMS,
    BENCH_CONFIGS,
    DEFAULT_ALGORITHM_ORDER,
    Sweep,
    SweepPoint,
    bench_scale,
    resolve_algorithms,
    run_point,
)

__all__ = [
    "SB_VARIANTS",
    "format_ablation_table",
    "run_sb_ablations",
    "PAPER_DIMENSIONS",
    "PAPER_NUM_FUNCTIONS",
    "PAPER_NUM_OBJECTS",
    "PAPER_ZILLOW_SIZES",
    "figure2_sweep",
    "figure3_sweep",
    "RunMeasurement",
    "measure_matcher",
    "load_sweep_json",
    "save_sweep_json",
    "sweep_to_dict",
    "sweep_to_markdown",
    "format_figure",
    "format_sweep_table",
    "orders_of_magnitude",
    "ALGORITHMS",
    "BENCH_CONFIGS",
    "DEFAULT_ALGORITHM_ORDER",
    "Sweep",
    "SweepPoint",
    "bench_scale",
    "resolve_algorithms",
    "run_point",
]
