"""Dynamic-workload benchmark: incremental repair vs full recompute.

The measurement the dynamic subsystem ships with (in the spirit of the
measurement-driven optimisation discipline the ROADMAP adopts): replay
the same event stream into

* a :class:`~repro.dynamic.DynamicMatcher` forced onto its incremental
  path (``repair_threshold`` set high enough that the full-recompute
  fallback never fires), and
* a :class:`~repro.dynamic.RecomputeSession`, which restages the
  surviving data and re-runs the configured matcher on every flush —
  the honest cost of serving the stream with the static pipeline,

and compare node I/O and wall-clock time of the event-serving phase
across update ratios (events as a fraction of the initial ``|O|``).
Anti-correlated data keeps skylines large — the hard case for repair.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..data import generate_anticorrelated, generate_independent
from ..dynamic import (
    MIXED_CHURN,
    RecomputeSession,
    UpdateMix,
    events_for_ratio,
    generate_events,
)
from ..engine import MatchingConfig, MatchingEngine
from ..prefs import generate_preferences
from .runner import bench_scale

#: Unscaled workload cardinalities. Smaller than the figure sweeps: the
#: recompute baseline pays a full rebuild + match *per event*.
DYNAMIC_NUM_OBJECTS = 20_000
DYNAMIC_NUM_FUNCTIONS = 1_000

#: The update ratios reported by default (5% is the headline point).
DEFAULT_RATIOS = (0.01, 0.05, 0.10)

_GENERATORS = {
    "anticorrelated": generate_anticorrelated,
    "independent": generate_independent,
}


@dataclass
class DynamicPoint:
    """One update ratio's comparison."""

    update_ratio: float
    n_events: int
    n_objects: int
    n_functions: int
    incremental_io: int
    incremental_seconds: float
    recompute_io: int
    recompute_seconds: float
    session_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def io_speedup(self) -> float:
        """Node-I/O ratio; ``inf`` when neither side did any I/O (the
        in-memory backend), so a zero never reads as "repair was worse"."""
        if self.recompute_io == 0 and self.incremental_io == 0:
            return float("inf")
        return self.recompute_io / max(1, self.incremental_io)

    @property
    def time_speedup(self) -> float:
        return self.recompute_seconds / max(1e-9, self.incremental_seconds)

    def as_dict(self) -> dict:
        io_speedup = self.io_speedup
        return {
            "update_ratio": self.update_ratio,
            "n_events": self.n_events,
            "n_objects": self.n_objects,
            "n_functions": self.n_functions,
            "incremental": {
                "io_accesses": self.incremental_io,
                "cpu_seconds": self.incremental_seconds,
            },
            "recompute": {
                "io_accesses": self.recompute_io,
                "cpu_seconds": self.recompute_seconds,
            },
            "io_speedup": None if io_speedup == float("inf") else io_speedup,
            "time_speedup": self.time_speedup,
            "session_stats": dict(self.session_stats),
        }


@dataclass
class DynamicSweep:
    """The full ratio sweep plus its workload provenance."""

    variant: str
    algorithm: str
    backend: str
    dims: int
    mix: Tuple[float, float, float, float]
    seed: int
    points: List[DynamicPoint] = field(default_factory=list)

    name = "dynamic"

    def as_dict(self) -> dict:
        return {
            "schema": "dynamic-1",
            "name": self.name,
            "variant": self.variant,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "dims": self.dims,
            "mix": list(self.mix),
            "seed": self.seed,
            "points": [point.as_dict() for point in self.points],
        }


def run_dynamic_point(objects, functions, n_events: int,
                      mix: UpdateMix = MIXED_CHURN, seed: int = 42,
                      algorithm: str = "sb", backend: str = "disk",
                      batch_size: int = 1, insert_pool=None,
                      base_config: Optional[MatchingConfig] = None,
                      ) -> DynamicPoint:
    """Measure one event stream on both session types.

    ``base_config`` carries the full switch set (e.g. an SB ablation
    variant) and overrides the ``algorithm``/``backend`` shorthands;
    both sessions run the identical configuration, the incremental one
    merely with the recompute fallback disabled.
    """
    events = generate_events(
        objects, functions, n_events, mix=mix, seed=seed,
        insert_pool=insert_pool,
    )
    if base_config is None:
        base_config = MatchingConfig(algorithm=algorithm, backend=backend)
    config = base_config.replace(batch_size=batch_size)

    # Force the incremental path: never fall back to recompute.
    engine = MatchingEngine(config.replace(repair_threshold=1e9))
    session = engine.open_session(objects, functions)
    io_before = session.io_snapshot().io_accesses
    start = time.perf_counter()
    for event in events:
        session.submit(event)
    session.flush()
    incremental_seconds = time.perf_counter() - start
    incremental_io = session.io_snapshot().io_accesses - io_before

    baseline = RecomputeSession(objects, functions, config)
    io_before = baseline.io_accesses
    start = time.perf_counter()
    for event in events:
        baseline.submit(event)
    baseline.flush()
    recompute_seconds = time.perf_counter() - start
    recompute_io = baseline.io_accesses - io_before

    return DynamicPoint(
        update_ratio=n_events / max(1, len(objects)),
        n_events=len(events),
        n_objects=len(objects),
        n_functions=len(functions),
        incremental_io=incremental_io,
        incremental_seconds=incremental_seconds,
        recompute_io=recompute_io,
        recompute_seconds=recompute_seconds,
        session_stats=session.stats,
    )


def dynamic_sweep(scale: Optional[float] = None, seed: int = 42,
                  ratios: Sequence[float] = DEFAULT_RATIOS,
                  variant: str = "anticorrelated", dims: int = 4,
                  algorithm: str = "sb", backend: str = "disk",
                  mix: UpdateMix = MIXED_CHURN, batch_size: int = 1,
                  base_config: Optional[MatchingConfig] = None,
                  ) -> DynamicSweep:
    """The incremental-vs-recompute comparison across update ratios."""
    scale = bench_scale() if scale is None else scale
    generator = _GENERATORS[variant]
    if base_config is not None:
        algorithm = base_config.algorithm
        backend = base_config.backend
    n_objects = max(300, int(DYNAMIC_NUM_OBJECTS * scale))
    n_functions = max(20, int(DYNAMIC_NUM_FUNCTIONS * scale))
    objects = generator(n_objects, dims, seed=seed)
    functions = generate_preferences(n_functions, dims, seed=seed + 1)
    # Streaming arrivals drawn from the same distribution as the data.
    insert_pool = generator(max(64, n_objects // 4), dims, seed=seed + 2)

    sweep = DynamicSweep(
        variant=variant, algorithm=algorithm, backend=backend,
        dims=dims, mix=mix.weights(), seed=seed,
    )
    for ratio in ratios:
        sweep.points.append(run_dynamic_point(
            objects, functions, events_for_ratio(objects, ratio),
            mix=mix, seed=seed + 3, algorithm=algorithm, backend=backend,
            batch_size=batch_size, insert_pool=insert_pool,
            base_config=base_config,
        ))
    return sweep


def format_dynamic_table(sweep: DynamicSweep) -> str:
    """Render the sweep as a GitHub-flavored Markdown table."""
    lines = [
        f"Dynamic maintenance ({sweep.variant}, D={sweep.dims}, "
        f"|O|={sweep.points[0].n_objects if sweep.points else 0}, "
        f"|F|={sweep.points[0].n_functions if sweep.points else 0}, "
        f"algorithm={sweep.algorithm}, backend={sweep.backend})",
        "| update ratio | events | repair I/O | recompute I/O | I/O speedup"
        " | repair s | recompute s | time speedup |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for point in sweep.points:
        io_speedup = (
            "n/a" if point.io_speedup == float("inf")
            else f"{point.io_speedup:.1f}x"
        )
        lines.append(
            f"| {point.update_ratio:.0%} | {point.n_events} "
            f"| {point.incremental_io} | {point.recompute_io} "
            f"| {io_speedup} "
            f"| {point.incremental_seconds:.3f} "
            f"| {point.recompute_seconds:.3f} "
            f"| {point.time_speedup:.1f}x |"
        )
    return "\n".join(lines)


def save_dynamic_json(sweep: DynamicSweep, path) -> None:
    """Write the sweep to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(sweep.as_dict(), indent=2) + "\n")
