"""Network serving benchmark: the socket front-end against real subprocesses.

Two measurements, both against genuinely separate processes on the
loopback (never in-thread stubs — the point is to price the whole wire:
JSON codec, framing, asyncio dispatch, and a second Python process):

``matching protocol``
    A ``python -m repro.net.server`` subprocess serves the same
    workload stream that an in-process ``MatchingService.submit_many``
    answers locally (the subprocess regenerates the identical dataset
    from the generator seed — the generators are deterministic). The
    networked requests/second are reported as a fraction of the
    in-process rate, and every served answer is verified pair-identical
    to the local one *before* any rate is reported.
``remote shard workers``
    A ``python -m repro.net.worker`` subprocess executes a sharded
    matching via ``executor="remote"``; the result is verified
    pair-identical to ``executor="serial"`` on the same instance.

The CI acceptance bar (``benchmarks/bench_net.py``) is networked
throughput ≥ 0.5x in-process at batch 32 — the wire may at most double
the cost of a served batch on the loopback.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..data import generate_independent
from ..engine import MatchingService
from ..errors import MatchingError, NetworkError
from ..prefs import generate_preferences
from .runner import bench_scale

#: Unscaled catalog size (the serving regime: big catalog, small
#: per-request workloads).
NET_NUM_OBJECTS = 20_000

#: Functions per request.
NET_FUNCTIONS_PER_REQUEST = 16

#: Distinct requests measured per point (all cache misses).
NET_NUM_REQUESTS = 64

#: The CI acceptance batch size.
NET_BATCH_SIZE = 32

#: Seconds to wait for a subprocess to announce LISTENING.
_SPAWN_TIMEOUT = 60.0


@dataclass
class NetPoint:
    """One batch size cell: in-process vs networked ``submit_many``."""

    batch_size: int
    n_objects: int
    n_functions: int
    n_requests: int
    inproc_rps: float
    net_rps: float

    @property
    def ratio(self) -> float:
        """Networked / in-process requests-per-second."""
        return self.net_rps / max(1e-9, self.inproc_rps)

    def as_dict(self) -> dict:
        return {
            "batch_size": self.batch_size,
            "n_objects": self.n_objects,
            "n_functions": self.n_functions,
            "n_requests": self.n_requests,
            "inproc_rps": self.inproc_rps,
            "net_rps": self.net_rps,
            "ratio": self.ratio,
        }


@dataclass
class RemoteSmoke:
    """The remote-worker smoke: one sharded matching over the wire."""

    shards: int
    n_objects: int
    n_functions: int
    serial_seconds: float
    remote_seconds: float
    verified: bool

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "n_objects": self.n_objects,
            "n_functions": self.n_functions,
            "serial_seconds": self.serial_seconds,
            "remote_seconds": self.remote_seconds,
            "verified": self.verified,
        }


@dataclass
class NetSweep:
    """The full network benchmark plus workload provenance."""

    dims: int
    seed: int
    points: List[NetPoint] = field(default_factory=list)
    remote: Optional[RemoteSmoke] = None

    name = "net"

    def as_dict(self) -> dict:
        return {
            "schema": "net-1",
            "name": self.name,
            "dims": self.dims,
            "seed": self.seed,
            "points": [point.as_dict() for point in self.points],
            "remote": None if self.remote is None else self.remote.as_dict(),
        }


# ----------------------------------------------------------------------
# Subprocess plumbing
# ----------------------------------------------------------------------
def _subprocess_env() -> dict:
    """The child's environment, with this library importable."""
    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + (os.pathsep + existing if existing else "")
    )
    return env


def spawn_listening(argv: Sequence[str],
                    ) -> Tuple[subprocess.Popen, str, int]:
    """Start a server subprocess and parse its ``LISTENING`` line."""
    process = subprocess.Popen(
        list(argv), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=_subprocess_env(), text=True,
    )
    deadline = time.monotonic() + _SPAWN_TIMEOUT
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if line.startswith("LISTENING "):
            _, host, port = line.split()
            return process, host, int(port)
        if not line or process.poll() is not None:
            stderr = ""
            if process.stderr is not None:
                stderr = process.stderr.read()
            process.kill()
            raise NetworkError(
                f"subprocess {argv[-1]!r} exited before LISTENING: "
                f"{stderr.strip()[-500:]}"
            )
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            process.kill()
            raise NetworkError(
                f"subprocess {argv[-1]!r} did not announce LISTENING "
                f"within {_SPAWN_TIMEOUT}s"
            )


def _stop(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
        process.kill()
        process.wait(timeout=10)


# ----------------------------------------------------------------------
# The matching-protocol point
# ----------------------------------------------------------------------
def run_net_point(n_objects: int, batch_size: int = NET_BATCH_SIZE,
                  num_requests: int = NET_NUM_REQUESTS,
                  dims: int = 4, seed: int = 42) -> NetPoint:
    """Measure one cell: in-process vs networked ``submit_many``.

    The server subprocess regenerates the identical dataset from
    ``(n_objects, dims, seed)``; both sides answer the same distinct
    workload stream in ``batch_size`` chunks from a cold cache, and the
    served answers are verified pair-identical to the in-process ones
    before any rate is computed.
    """
    from ..net import MatchingClient

    if batch_size < 1:
        raise MatchingError(f"batch_size must be >= 1, got {batch_size}")
    objects = generate_independent(n_objects, dims, seed=seed)
    workloads = [
        generate_preferences(NET_FUNCTIONS_PER_REQUEST, dims,
                             seed=seed + 1 + request)
        for request in range(num_requests)
    ]

    with MatchingService(objects, algorithm="sb", backend="memory",
                         deletion_mode="filter") as service:
        start = time.perf_counter()
        local: List = []
        for offset in range(0, len(workloads), batch_size):
            local.extend(
                service.submit_many(workloads[offset:offset + batch_size])
            )
        inproc_seconds = time.perf_counter() - start

    process, host, port = spawn_listening([
        sys.executable, "-m", "repro.net.server",
        "--objects", str(n_objects), "--dims", str(dims),
        "--seed", str(seed), "--algorithm", "sb",
        "--backend", "memory",
    ])
    try:
        with MatchingClient(host, port, timeout=120.0) as client:
            start = time.perf_counter()
            served: List = []
            for offset in range(0, len(workloads), batch_size):
                served.extend(client.submit_many(
                    workloads[offset:offset + batch_size]
                ))
            net_seconds = time.perf_counter() - start
    finally:
        _stop(process)

    for one, other in zip(local, served):
        if one.as_set() != other.as_set():
            raise MatchingError(
                f"networked serving diverged from in-process "
                f"submit_many at batch size {batch_size}"
            )

    return NetPoint(
        batch_size=batch_size,
        n_objects=n_objects,
        n_functions=NET_FUNCTIONS_PER_REQUEST,
        n_requests=len(workloads),
        inproc_rps=len(workloads) / max(1e-9, inproc_seconds),
        net_rps=len(workloads) / max(1e-9, net_seconds),
    )


# ----------------------------------------------------------------------
# The remote-worker smoke
# ----------------------------------------------------------------------
def run_remote_smoke(n_objects: int, shards: int = 3, dims: int = 4,
                     seed: int = 42) -> RemoteSmoke:
    """One sharded matching through a real worker subprocess."""
    import repro

    objects = generate_independent(n_objects, dims, seed=seed)
    prefs = generate_preferences(NET_FUNCTIONS_PER_REQUEST, dims,
                                 seed=seed + 1)

    start = time.perf_counter()
    serial = repro.match(objects, prefs, backend="memory", shards=shards,
                         executor="serial")
    serial_seconds = time.perf_counter() - start

    process, host, port = spawn_listening([
        sys.executable, "-m", "repro.net.worker",
    ])
    try:
        start = time.perf_counter()
        remote = repro.match(objects, prefs, backend="memory",
                             shards=shards, executor="remote",
                             remote_workers=(f"{host}:{port}",))
        remote_seconds = time.perf_counter() - start
    finally:
        _stop(process)

    if remote.as_set() != serial.as_set():
        raise MatchingError(
            f"executor='remote' diverged from executor='serial' at "
            f"{shards} shards"
        )
    return RemoteSmoke(
        shards=shards,
        n_objects=n_objects,
        n_functions=len(prefs),
        serial_seconds=serial_seconds,
        remote_seconds=remote_seconds,
        verified=True,
    )


def net_sweep(scale: Optional[float] = None, seed: int = 42,
              batch_sizes: Sequence[int] = (NET_BATCH_SIZE,),
              dims: int = 4,
              num_requests: Optional[int] = None) -> NetSweep:
    """The full network benchmark: protocol points + remote smoke."""
    scale = bench_scale() if scale is None else scale
    n_objects = max(800, int(NET_NUM_OBJECTS * scale))
    if num_requests is None:
        num_requests = max(2 * max(batch_sizes), NET_NUM_REQUESTS)
    sweep = NetSweep(dims=dims, seed=seed)
    for batch_size in batch_sizes:
        sweep.points.append(
            run_net_point(n_objects, batch_size=batch_size,
                          num_requests=num_requests, dims=dims, seed=seed)
        )
    sweep.remote = run_remote_smoke(n_objects, dims=dims, seed=seed)
    return sweep


def format_net_table(sweep: NetSweep) -> str:
    """Render the sweep as a GitHub-flavored Markdown table."""
    head = sweep.points[0] if sweep.points else None
    lines = [
        f"Network serving: loopback subprocess vs in-process "
        f"(D={sweep.dims}, |O|={head.n_objects if head else 0}, "
        f"|F|={head.n_functions if head else 0} per request, "
        f"{head.n_requests if head else 0} distinct requests)",
        "| batch | in-process req/s | networked req/s | ratio |",
        "|---|---|---|---|",
    ]
    for point in sweep.points:
        lines.append(
            f"| {point.batch_size} "
            f"| {point.inproc_rps:.1f} "
            f"| {point.net_rps:.1f} "
            f"| {point.ratio:.2f}x |"
        )
    if sweep.remote is not None:
        smoke = sweep.remote
        lines.append(
            f"remote workers: {smoke.shards} shards over one worker "
            f"subprocess in {smoke.remote_seconds * 1e3:.1f} ms "
            f"(serial: {smoke.serial_seconds * 1e3:.1f} ms), "
            f"pair-identical: {smoke.verified}"
        )
    return "\n".join(lines)


def save_net_json(sweep: NetSweep, path) -> None:
    """Write the sweep to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(sweep.as_dict(), indent=2) + "\n")
