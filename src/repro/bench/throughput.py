"""Batched-serving throughput benchmark: ``submit_many`` vs looped ``submit``.

The acceptance measurement of the batched request path
(:meth:`~repro.engine.service.MatchingService.submit_many`): for each
batch size × algorithm × backend cell, a stream of *distinct* preference
workloads (all cache misses — the regime where batching must earn its
keep) is answered two ways —

``looped``
    One ``service.submit()`` call per workload: the per-request tree
    path, staging amortized but every workload paying its own matcher
    run. This is what a deployment without batching achieves.
``batched``
    The same workloads in ``submit_many`` batches of the given size:
    linear misses are stacked and scored in one vectorized numpy pass
    per chunk (:mod:`repro.engine.batch`).

Every cell re-verifies that the batched answers are pair-identical to
the looped answers before any rate is reported, so the speedup table
can never report a wrong matching as a win. Matchers run
tree-preserving (``deletion_mode="filter"``), the serving configuration.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from ..data import generate_independent
from ..engine import MatchingConfig, MatchingService
from ..errors import MatchingError
from ..prefs import generate_preferences
from .runner import bench_scale

#: Unscaled workload cardinalities: a big catalog, small per-request
#: workloads — the serving regime (see bench.serving for the rationale).
THROUGHPUT_NUM_OBJECTS = 40_000

#: Functions per request (small: one user cohort per request).
THROUGHPUT_FUNCTIONS_PER_REQUEST = 16

#: Distinct requests measured per cell (scaled up to cover the largest
#: batch size at least twice).
THROUGHPUT_NUM_REQUESTS = 64

#: Batch sizes swept by default (1 = submit_many degenerating to the
#: per-request path; 32 = the CI acceptance point).
DEFAULT_BATCH_SIZES = (1, 8, 32)


@dataclass
class ThroughputPoint:
    """One batch size × algorithm × backend cell."""

    algorithm: str
    backend: str
    batch_size: int
    n_objects: int
    n_functions: int
    n_requests: int
    looped_rps: float
    batched_rps: float
    vectorized_requests: int

    @property
    def speedup(self) -> float:
        """Batched / looped requests-per-second."""
        return self.batched_rps / max(1e-9, self.looped_rps)

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "n_objects": self.n_objects,
            "n_functions": self.n_functions,
            "n_requests": self.n_requests,
            "looped_rps": self.looped_rps,
            "batched_rps": self.batched_rps,
            "vectorized_requests": self.vectorized_requests,
            "speedup": self.speedup,
        }


@dataclass
class ThroughputSweep:
    """The full matrix plus workload provenance."""

    variant: str
    dims: int
    seed: int
    points: List[ThroughputPoint] = field(default_factory=list)

    name = "throughput"

    def as_dict(self) -> dict:
        return {
            "schema": "throughput-1",
            "name": self.name,
            "variant": self.variant,
            "dims": self.dims,
            "seed": self.seed,
            "points": [point.as_dict() for point in self.points],
        }


def _service(objects, base_config: MatchingConfig,
             backend: str) -> MatchingService:
    return MatchingService(
        objects,
        base_config.replace(backend=backend, deletion_mode="filter"),
    )


def run_throughput_point(objects, workloads: Sequence,
                         base_config: MatchingConfig,
                         batch_size: int,
                         backend: str = "memory",
                         label: Optional[str] = None) -> ThroughputPoint:
    """Measure one cell: looped submit vs submit_many at ``batch_size``.

    Both modes run against a *fresh* service (so neither inherits the
    other's cache warmth) over the same distinct workloads; the batched
    results are verified pair-identical to the looped ones.
    """
    if not workloads:
        raise MatchingError("run_throughput_point needs workloads")
    if batch_size < 1:
        raise MatchingError(f"batch_size must be >= 1, got {batch_size}")

    with _service(objects, base_config, backend) as service:
        start = time.perf_counter()
        looped = [service.submit(functions) for functions in workloads]
        looped_seconds = time.perf_counter() - start

    with _service(objects, base_config, backend) as service:
        start = time.perf_counter()
        batched = []
        for offset in range(0, len(workloads), batch_size):
            batched.extend(
                service.submit_many(workloads[offset:offset + batch_size])
            )
        batched_seconds = time.perf_counter() - start
        vectorized = int(service.snapshot().vectorized_requests)

    for one, other in zip(looped, batched):
        if one.as_set() != other.as_set():
            raise MatchingError(
                f"batched serving diverged from looped submit for "
                f"{label or base_config.algorithm!r} on {backend!r} "
                f"at batch size {batch_size}"
            )

    return ThroughputPoint(
        algorithm=label or base_config.algorithm,
        backend=backend,
        batch_size=batch_size,
        n_objects=len(objects),
        n_functions=len(workloads[0]),
        n_requests=len(workloads),
        looped_rps=len(workloads) / max(1e-9, looped_seconds),
        batched_rps=len(workloads) / max(1e-9, batched_seconds),
        vectorized_requests=vectorized,
    )


def throughput_sweep(scale: Optional[float] = None, seed: int = 42,
                     batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
                     algorithms: Optional[Sequence[str]] = None,
                     backends: Sequence[str] = ("memory",),
                     dims: int = 4,
                     num_requests: Optional[int] = None,
                     ) -> ThroughputSweep:
    """The full matrix: batch size × algorithm × backend."""
    from .runner import BENCH_CONFIGS

    scale = bench_scale() if scale is None else scale
    if algorithms is None:
        algorithms = ["SB"]
    n_objects = max(800, int(THROUGHPUT_NUM_OBJECTS * scale))
    if num_requests is None:
        num_requests = max(2 * max(batch_sizes), THROUGHPUT_NUM_REQUESTS)
    objects = generate_independent(n_objects, dims, seed=seed)
    workloads = [
        generate_preferences(THROUGHPUT_FUNCTIONS_PER_REQUEST, dims,
                             seed=seed + 1 + request)
        for request in range(num_requests)
    ]

    sweep = ThroughputSweep(variant="independent", dims=dims, seed=seed)
    for panel in algorithms:
        base = BENCH_CONFIGS[panel]
        for backend in backends:
            for batch_size in batch_sizes:
                sweep.points.append(
                    run_throughput_point(
                        objects, workloads, base, batch_size,
                        backend=backend, label=panel,
                    )
                )
    return sweep


def format_throughput_table(sweep: ThroughputSweep) -> str:
    """Render the sweep as a GitHub-flavored Markdown table."""
    head = sweep.points[0] if sweep.points else None
    lines = [
        f"Batched serving throughput: submit_many vs looped submit "
        f"({sweep.variant}, D={sweep.dims}, "
        f"|O|={head.n_objects if head else 0}, "
        f"|F|={head.n_functions if head else 0} per request, "
        f"{head.n_requests if head else 0} distinct requests)",
        "| algorithm | backend | batch | looped req/s | batched req/s "
        "| speedup | vectorized |",
        "|---|---|---|---|---|---|---|",
    ]
    for point in sweep.points:
        lines.append(
            f"| {point.algorithm} | {point.backend} "
            f"| {point.batch_size} "
            f"| {point.looped_rps:.1f} "
            f"| {point.batched_rps:.1f} "
            f"| {point.speedup:.2f}x "
            f"| {point.vectorized_requests} |"
        )
    return "\n".join(lines)


def save_throughput_json(sweep: ThroughputSweep, path) -> None:
    """Write the sweep to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(sweep.as_dict(), indent=2) + "\n")
