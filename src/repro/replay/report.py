"""Scenario measurement: per-phase windows and the final report.

The replay driver accounts each scenario phase in its own window —
request counters are accumulated as *per-burst deltas* of
:meth:`~repro.engine.service.ServiceStats.delta` (never as absolute
snapshots, so a rewound-and-replayed window reproduces identical
numbers), plus churn totals per event kind, per-request latencies, and
the three correctness counters:

``freshness_checks`` / ``freshness_mismatches``
    Served results compared against a ground-truth recompute on the
    *same clock state* (the driver's structural oracle); a mismatch
    means the serving stack returned something a cold run would not.
``stale_hits``
    The subset of mismatches where the wrong result came out of the
    result cache — a cache-invalidation bug. The shipped scenarios all
    assert this is zero, in CI.

:class:`ScenarioReport` freezes the windows into
:class:`PhaseReport` rows with p50/p95 latency and serializes to JSON
(the artifact the ``replay-smoke`` CI job uploads).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..dynamic.events import EVENT_KINDS
from ..engine.service import ServiceStats, _percentile


class PhaseWindow:
    """One phase's mutable accumulator inside the driver.

    Copyable (for checkpoints) and order-insensitive to wall time: every
    field except ``latencies``/``wall_seconds`` is a deterministic
    function of the replayed records, which is what makes the rewind
    bit-identity claim testable on counter deltas.
    """

    __slots__ = (
        "name", "start_ts", "end_ts", "events", "counters", "latencies",
        "stale_hits", "freshness_checks", "freshness_mismatches",
        "wall_seconds",
    )

    def __init__(self, name: str, start_ts: float) -> None:
        self.name = name
        self.start_ts = start_ts
        self.end_ts = start_ts
        self.events: Dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        self.counters: Dict[str, int] = {
            key: 0 for key in ServiceStats.COUNTER_FIELDS
        }
        self.latencies: List[float] = []
        self.stale_hits = 0
        self.freshness_checks = 0
        self.freshness_mismatches = 0
        self.wall_seconds = 0.0

    def add_delta(self, delta: Dict[str, int]) -> None:
        for key, value in delta.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def copy(self) -> "PhaseWindow":
        clone = PhaseWindow(self.name, self.start_ts)
        clone.end_ts = self.end_ts
        clone.events = dict(self.events)
        clone.counters = dict(self.counters)
        clone.latencies = list(self.latencies)
        clone.stale_hits = self.stale_hits
        clone.freshness_checks = self.freshness_checks
        clone.freshness_mismatches = self.freshness_mismatches
        clone.wall_seconds = self.wall_seconds
        return clone

    def freeze(self) -> "PhaseReport":
        ordered = sorted(self.latencies)
        return PhaseReport(
            name=self.name,
            start_ts=self.start_ts,
            end_ts=self.end_ts,
            events=dict(self.events),
            counters=dict(self.counters),
            stale_hits=self.stale_hits,
            freshness_checks=self.freshness_checks,
            freshness_mismatches=self.freshness_mismatches,
            latency_p50_ms=_percentile(ordered, 0.50) * 1e3,
            latency_p95_ms=_percentile(ordered, 0.95) * 1e3,
            wall_seconds=self.wall_seconds,
        )


@dataclass(frozen=True)
class PhaseReport:
    """One phase's frozen measurements.

    ``counters`` holds the per-window :class:`ServiceStats` deltas
    (requests, cache_hits, duplicate_hits, misses, vectorized/fallback
    splits, rejected, stagings); ``events`` the churn totals per kind.
    Latency percentiles are wall-clock and therefore *not* part of the
    rewind bit-identity contract — the counters are.
    """

    name: str
    start_ts: float
    end_ts: float
    events: Dict[str, int]
    counters: Dict[str, int]
    stale_hits: int
    freshness_checks: int
    freshness_mismatches: int
    latency_p50_ms: float
    latency_p95_ms: float
    wall_seconds: float

    @property
    def requests(self) -> int:
        return self.counters.get("requests", 0)

    @property
    def churn_events(self) -> int:
        return sum(self.events.values())

    def as_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        return asdict(self)


@dataclass(frozen=True)
class ScenarioReport:
    """The full outcome of one replayed scenario.

    ``ok`` is the headline: zero freshness mismatches and zero stale
    hits across every phase. The totals aggregate the per-phase
    windows; :meth:`save_json` writes the CI artifact.
    """

    trace_name: str
    algorithm: str
    backend: str
    transport: str
    clock: float
    phases: Tuple[PhaseReport, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.stale_hits == 0 and self.freshness_mismatches == 0

    @property
    def requests(self) -> int:
        return sum(p.requests for p in self.phases)

    @property
    def churn_events(self) -> int:
        return sum(p.churn_events for p in self.phases)

    @property
    def stale_hits(self) -> int:
        return sum(p.stale_hits for p in self.phases)

    @property
    def freshness_checks(self) -> int:
        return sum(p.freshness_checks for p in self.phases)

    @property
    def freshness_mismatches(self) -> int:
        return sum(p.freshness_mismatches for p in self.phases)

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace": self.trace_name,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "transport": self.transport,
            "clock": self.clock,
            "ok": self.ok,
            "requests": self.requests,
            "churn_events": self.churn_events,
            "stale_hits": self.stale_hits,
            "freshness_checks": self.freshness_checks,
            "freshness_mismatches": self.freshness_mismatches,
            "phases": [phase.as_dict() for phase in self.phases],
        }

    def save_json(self, path: Union[str, Path]) -> None:
        """Write the report as pretty-printed JSON (the CI artifact)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "ok" if self.ok else (
            f"STALE={self.stale_hits} MISMATCH={self.freshness_mismatches}"
        )
        return (
            f"ScenarioReport({self.trace_name!r}, requests={self.requests}, "
            f"events={self.churn_events}, phases={len(self.phases)}, "
            f"{status})"
        )


def format_report_table(report: ScenarioReport) -> str:
    """A fixed-width per-phase table (the CLI's human rendering)."""
    header = (
        f"{'phase':<12} {'span':>13} {'reqs':>5} {'hits':>5} {'dups':>5} "
        f"{'miss':>5} {'churn':>5} {'stale':>5} {'p50ms':>8} {'p95ms':>8}"
    )
    lines = [
        f"scenario {report.trace_name} — {report.algorithm}@"
        f"{report.backend} via {report.transport}",
        header, "-" * len(header),
    ]
    for phase in report.phases:
        span = f"{phase.start_ts:.1f}-{phase.end_ts:.1f}"
        lines.append(
            f"{phase.name:<12} {span:>13} {phase.requests:>5} "
            f"{phase.counters.get('cache_hits', 0):>5} "
            f"{phase.counters.get('duplicate_hits', 0):>5} "
            f"{phase.counters.get('misses', 0):>5} "
            f"{phase.churn_events:>5} {phase.stale_hits:>5} "
            f"{phase.latency_p50_ms:>8.2f} {phase.latency_p95_ms:>8.2f}"
        )
    verdict = "fresh" if report.ok else "STALE RESULTS SERVED"
    lines.append(
        f"total: {report.requests} requests, {report.churn_events} events, "
        f"{report.freshness_checks} freshness checks — {verdict}"
    )
    return "\n".join(lines)
