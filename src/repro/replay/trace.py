"""The versioned trace format: time-stamped churn + request arrivals.

A *trace* is the replayable unit of the scenario harness: one initial
population (objects + session preference functions) followed by a
timestamp-ordered stream of records — churn events
(:class:`~repro.dynamic.events.Event` wrapped in :class:`TraceEvent`)
and request arrivals (:class:`TraceRequest`, carrying a preference
workload plus serving intents). Every scenario claim in this repository
is made against a trace, never against an ad-hoc loop, so any measured
behaviour can be replayed bit-for-bit.

On disk a trace is **versioned JSON lines**: a header declaring the
schema and version, one line per base object / base function / record,
and an ``end`` footer carrying the record count (so truncation is
detectable, not silent). Serialization is canonical — sorted keys,
compact separators, repr-exact floats — which makes ``load → save``
**byte-stable**: re-saving a loaded trace reproduces the identical
bytes. Unsupported versions raise
:class:`~repro.errors.TraceVersionError`; structural damage (bad JSON,
unknown kinds, missing or inconsistent footer, non-monotone timestamps)
raises :class:`~repro.errors.TraceFormatError`.

:class:`TraceRecorder` builds traces programmatically — from scratch or
*from a live session* via :meth:`TraceRecorder.observe`, which tees the
session's ``on_change`` stream into the recording.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from ..dynamic.session import DynamicMatcher

from ..data import Dataset
from ..dynamic.events import (
    AddFunction,
    DeleteObject,
    Event,
    InsertObject,
    RemoveFunction,
)
from ..errors import TraceFormatError, TraceVersionError
from ..prefs import LinearPreference

#: Schema identifier every trace header carries.
TRACE_SCHEMA = "repro-trace"
#: The (only) trace version this build reads and writes.
TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One churn event in a trace, with its phase label.

    The arrival timestamp lives on the wrapped event itself
    (``event.ts``); the wrapper adds the scenario phase the event
    belongs to.
    """

    event: Event
    phase: str = ""

    @property
    def ts(self) -> float:
        return self.event.ts


@dataclass(frozen=True)
class TraceRequest:
    """One request arrival: a preference workload plus serving intents.

    Requests sharing one timestamp (and phase) form a *burst*: the
    replay driver submits them as a single ``submit_many`` batch, so
    in-batch duplicate sharing and the vectorized path engage exactly
    as they would under real concurrent arrivals.
    """

    ts: float
    functions: Tuple[LinearPreference, ...]
    priority: int = 0
    timeout: Optional[float] = None
    phase: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "functions", tuple(self.functions))
        for function in self.functions:
            if type(function) is not LinearPreference:
                raise TraceFormatError(
                    "trace requests carry exact LinearPreference "
                    f"workloads only, got {type(function).__name__}"
                )


TraceRecord = Union[TraceEvent, TraceRequest]


@dataclass(frozen=True)
class Trace:
    """An immutable, validated, replayable scenario.

    ``records`` are ordered by non-decreasing ``ts``; each record's
    ``phase`` must appear as one contiguous run, in the order listed by
    ``phases`` (the replay driver closes a phase's accounting window
    when the next one starts). Validation happens at construction, so a
    ``Trace`` in hand is always structurally sound.
    """

    name: str
    seed: int
    objects: Dataset
    functions: Tuple[LinearPreference, ...]
    records: Tuple[TraceRecord, ...]
    phases: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "functions", tuple(self.functions))
        object.__setattr__(self, "records", tuple(self.records))
        object.__setattr__(self, "phases", tuple(self.phases))
        dims = self.objects.dims
        for function in self.functions:
            if type(function) is not LinearPreference:
                raise TraceFormatError(
                    "trace base functions must be exact LinearPreference "
                    f"instances, got {type(function).__name__}"
                )
            if function.dims != dims:
                raise TraceFormatError(
                    f"base function {function.fid} has {function.dims} "
                    f"weights against {dims}-dimensional objects"
                )
        last_ts = float("-inf")
        seen_phases: List[str] = []
        for index, record in enumerate(self.records):
            if not isinstance(record, (TraceEvent, TraceRequest)):
                raise TraceFormatError(
                    f"record {index} is not a TraceEvent/TraceRequest: "
                    f"{record!r}"
                )
            ts = float(record.ts)
            if ts < last_ts:
                raise TraceFormatError(
                    f"record {index} goes back in time: ts={ts} after "
                    f"ts={last_ts}"
                )
            last_ts = ts
            if not seen_phases or seen_phases[-1] != record.phase:
                if record.phase in seen_phases:
                    raise TraceFormatError(
                        f"phase {record.phase!r} is not contiguous "
                        f"(record {index} re-enters it)"
                    )
                seen_phases.append(record.phase)
        declared = list(self.phases) if self.phases else seen_phases
        if seen_phases != [p for p in declared if p in seen_phases]:
            raise TraceFormatError(
                f"records visit phases {seen_phases!r}, which is not a "
                f"subsequence of the declared order {declared!r}"
            )
        if not self.phases:
            object.__setattr__(self, "phases", tuple(seen_phases))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return self.objects.dims

    @property
    def end_ts(self) -> float:
        """The last record's timestamp (``0.0`` for an empty stream)."""
        return float(self.records[-1].ts) if self.records else 0.0

    def phase_spans(self) -> "Dict[str, Tuple[float, float]]":
        """Ordered ``{phase: (first_ts, last_ts)}`` over the records."""
        spans: Dict[str, Tuple[float, float]] = {}
        for record in self.records:
            ts = float(record.ts)
            first, _ = spans.get(record.phase, (ts, ts))
            spans[record.phase] = (first, ts)
        return spans

    def counts(self) -> Dict[str, int]:
        """Record totals: events, requests, served preference functions."""
        events = sum(1 for r in self.records if isinstance(r, TraceEvent))
        requests = len(self.records) - events
        return {
            "events": events,
            "requests": requests,
            "base_objects": len(self.objects),
            "base_functions": len(self.functions),
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_lines(self) -> List[str]:
        """The canonical JSON-lines rendering (no trailing newlines)."""
        lines = [_dumps({
            "kind": "header",
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "name": self.name,
            "seed": self.seed,
            "dims": self.dims,
            "phases": list(self.phases),
        })]
        body: List[str] = []
        for object_id, point in sorted(self.objects.items()):
            body.append(_dumps({
                "kind": "object", "id": int(object_id),
                "point": [float(v) for v in point],
            }))
        for function in self.functions:
            body.append(_dumps({
                "kind": "function", "fid": int(function.fid),
                "weights": [float(w) for w in function.weights],
            }))
        for record in self.records:
            body.append(_record_line(record))
        lines.extend(body)
        lines.append(_dumps({"kind": "end", "records": len(body)}))
        return lines

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path`` as canonical JSON lines."""
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            for line in self.to_lines():
                handle.write(line)
                handle.write("\n")

    @classmethod
    def from_lines(cls, lines: Sequence[str]) -> "Trace":
        """Parse a trace from JSON lines (the inverse of :meth:`to_lines`)."""
        rows = [line for line in lines if line.strip()]
        if not rows:
            raise TraceFormatError("empty trace: no header line")
        header = _loads(rows[0], 1)
        if header.get("kind") != "header":
            raise TraceFormatError(
                f"line 1 must be the trace header, got kind="
                f"{header.get('kind')!r}"
            )
        if header.get("schema") != TRACE_SCHEMA:
            raise TraceFormatError(
                f"not a {TRACE_SCHEMA} file (schema="
                f"{header.get('schema')!r})"
            )
        if header.get("version") != TRACE_VERSION:
            raise TraceVersionError(header.get("version"))
        dims = int(header["dims"])

        footer = _loads(rows[-1], len(rows))
        if footer.get("kind") != "end":
            raise TraceFormatError(
                "trace is truncated: missing the 'end' footer record"
            )
        body = rows[1:-1]
        if footer.get("records") != len(body):
            raise TraceFormatError(
                f"trace is truncated: footer declares "
                f"{footer.get('records')!r} records, found {len(body)}"
            )

        points: Dict[int, Tuple[float, ...]] = {}
        functions: List[LinearPreference] = []
        records: List[TraceRecord] = []
        for offset, row in enumerate(body, start=2):
            payload = _loads(row, offset)
            kind = payload.get("kind")
            if kind == "object":
                points[int(payload["id"])] = tuple(
                    float(v) for v in payload["point"]
                )
            elif kind == "function":
                functions.append(LinearPreference(
                    int(payload["fid"]),
                    tuple(float(w) for w in payload["weights"]),
                ))
            elif kind == "event":
                records.append(_parse_event(payload, offset))
            elif kind == "request":
                records.append(_parse_request(payload, offset))
            else:
                raise TraceFormatError(
                    f"line {offset}: unknown record kind {kind!r}"
                )
        objects = Dataset.from_mapping(points, dims, name=header["name"])
        return cls(
            name=header["name"], seed=int(header["seed"]),
            objects=objects, functions=tuple(functions),
            records=tuple(records), phases=tuple(header.get("phases", ())),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_lines(handle.read().splitlines())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        totals = self.counts()
        return (
            f"Trace({self.name!r}, |O|={totals['base_objects']}, "
            f"|F|={totals['base_functions']}, "
            f"events={totals['events']}, requests={totals['requests']}, "
            f"phases={list(self.phases)})"
        )


# ----------------------------------------------------------------------
# Canonical JSON helpers
# ----------------------------------------------------------------------
def _dumps(payload: dict) -> str:
    # sort_keys + compact separators + repr-exact floats: the canonical
    # rendering that makes load → save byte-stable.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def _loads(line: str, lineno: int) -> dict:
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise TraceFormatError(
            f"line {lineno}: not valid JSON ({exc})"
        ) from exc
    if not isinstance(payload, dict):
        raise TraceFormatError(
            f"line {lineno}: expected a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def _record_line(record: TraceRecord) -> str:
    if isinstance(record, TraceRequest):
        return _request_line(record)
    return _event_line(record)


def _request_line(record: TraceRequest  # lint: encodes=TraceRequest extra=kind,fid,weights
                  ) -> str:
    payload = {
        "kind": "request",
        "ts": float(record.ts),
        "phase": record.phase,
        "priority": int(record.priority),
        "functions": [
            {"fid": int(f.fid), "weights": [float(w) for w in f.weights]}
            for f in record.functions
        ],
    }
    if record.timeout is not None:
        payload["timeout"] = float(record.timeout)
    return _dumps(payload)


def _event_line(record: TraceEvent  # lint: encodes=TraceEvent,InsertObject,DeleteObject,AddFunction,RemoveFunction extra=kind
                ) -> str:
    event = record.event
    payload = {
        "kind": "event",
        "event": event.kind,
        "ts": float(event.ts),
        "phase": record.phase,
    }
    if isinstance(event, InsertObject):
        payload["id"] = int(event.object_id)
        payload["point"] = [float(v) for v in event.point]
    elif isinstance(event, DeleteObject):
        payload["id"] = int(event.object_id)
    elif isinstance(event, AddFunction):
        payload["fid"] = int(event.function.fid)
        payload["weights"] = [float(w) for w in event.function.weights]
    elif isinstance(event, RemoveFunction):
        payload["fid"] = int(event.function_id)
    else:  # pragma: no cover - Event union is closed
        raise TraceFormatError(f"unknown event type {event!r}")
    return _dumps(payload)


def _parse_event(payload: dict,  # lint: decodes=TraceEvent,InsertObject,DeleteObject,AddFunction,RemoveFunction
                 lineno: int) -> TraceEvent:
    ts = float(payload["ts"])
    name = payload.get("event")
    if name == "insert_object":
        event: Event = InsertObject(
            int(payload["id"]),
            tuple(float(v) for v in payload["point"]), ts=ts,
        )
    elif name == "delete_object":
        event = DeleteObject(int(payload["id"]), ts=ts)
    elif name == "add_function":
        event = AddFunction(LinearPreference(
            int(payload["fid"]),
            tuple(float(w) for w in payload["weights"]),
        ), ts=ts)
    elif name == "remove_function":
        event = RemoveFunction(int(payload["fid"]), ts=ts)
    else:
        raise TraceFormatError(
            f"line {lineno}: unknown event kind {name!r}"
        )
    return TraceEvent(event, phase=payload.get("phase", ""))


def _parse_request(payload: dict,  # lint: decodes=TraceRequest
                   lineno: int) -> TraceRequest:
    try:
        functions = tuple(
            LinearPreference(
                int(f["fid"]), tuple(float(w) for w in f["weights"])
            )
            for f in payload["functions"]
        )
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(
            f"line {lineno}: malformed request workload ({exc})"
        ) from exc
    timeout = payload.get("timeout")
    return TraceRequest(
        ts=float(payload["ts"]), functions=functions,
        priority=int(payload.get("priority", 0)),
        timeout=None if timeout is None else float(timeout),
        phase=payload.get("phase", ""),
    )


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
class TraceRecorder:
    """Accumulates records (from code or a live session) into a trace.

    The recorder pins the *initial* population at construction; every
    subsequently recorded event/request must arrive in non-decreasing
    timestamp order. :meth:`observe` hooks a live
    :class:`~repro.dynamic.DynamicMatcher`: its accepted events are
    teed into the recording (stamped by ``clock``) without disturbing
    any observer already bound to the session, which is how a serving
    deployment records the exact churn it actually absorbed.
    """

    def __init__(self, objects: Dataset,
                 functions: Sequence[LinearPreference], *,
                 name: str = "recorded", seed: int = 0) -> None:
        self._objects = objects
        self._functions = tuple(functions)
        self._name = name
        self._seed = seed
        self._records: List[TraceRecord] = []
        self._last_ts = float("-inf")
        self.phase = ""

    def _admit_ts(self, ts: float) -> float:
        ts = float(ts)
        if ts < self._last_ts:
            raise TraceFormatError(
                f"recorded timestamps must be non-decreasing: got {ts} "
                f"after {self._last_ts}"
            )
        self._last_ts = ts
        return ts

    def record_event(self, event: Event,
                     ts: Optional[float] = None) -> None:
        """Append one churn event (restamped to ``ts`` when given)."""
        stamp = self._admit_ts(event.ts if ts is None else ts)
        if stamp != event.ts:
            event = dataclasses.replace(event, ts=stamp)
        self._records.append(TraceEvent(event, phase=self.phase))

    def record_request(self, functions: Sequence[LinearPreference],
                       ts: float, *, priority: int = 0,
                       timeout: Optional[float] = None) -> None:
        """Append one request arrival at ``ts``."""
        self._records.append(TraceRequest(
            ts=self._admit_ts(ts), functions=tuple(functions),
            priority=priority, timeout=timeout, phase=self.phase,
        ))

    def observe(self, session: "DynamicMatcher",
                clock: Callable[[], float]) -> "DynamicMatcher":
        """Tee a live session's accepted events into this recording.

        Chains in front of any existing ``on_change`` observer (the
        serving cache invalidation hook keeps firing) and returns the
        session for convenience. ``clock`` supplies the stamp for each
        event — pass the replay clock, a monotonic counter, or
        ``time.monotonic`` for wall-clock recording.
        """
        previous = session.on_change

        def tee(event: Event) -> None:
            if previous is not None:
                previous(event)
            self.record_event(event, ts=clock())

        session.on_change = tee
        return session

    def trace(self) -> Trace:
        """Freeze the recording into a validated :class:`Trace`."""
        return Trace(
            name=self._name, seed=self._seed, objects=self._objects,
            functions=self._functions, records=tuple(self._records),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceRecorder({self._name!r}, records={len(self._records)}, "
            f"phase={self.phase!r})"
        )
