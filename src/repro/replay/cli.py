"""Command-line entry point: ``python -m repro.replay``.

Two subcommands::

    # Generate a seeded scenario and write it as a versioned trace file
    python -m repro.replay record trace.jsonl --scenario diurnal --seed 7

    # Replay a trace against the serving stack and print the report
    python -m repro.replay run trace.jsonl --backend memory
    python -m repro.replay run trace.jsonl --transport server \\
        --report report.json --rewind-check

``run`` exits non-zero when any served result disagreed with ground
truth (freshness mismatch or stale cache hit), so the command doubles
as a correctness gate in CI. ``--rewind-check`` additionally rewinds to
every phase boundary and verifies the matching and cache keys come
back bit-identical.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from .driver import TRANSPORTS, ReplayDriver
from .report import format_report_table
from .scenarios import available_scenarios, scenario_trace
from .trace import Trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay",
        description="Replay time-stamped churn + request traces against "
                    "the full serving stack.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="generate a seeded scenario into a trace file",
    )
    record.add_argument("path", help="output trace file (JSON lines)")
    record.add_argument("--scenario", default="diurnal",
                        choices=sorted(available_scenarios()))
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--scale", type=float, default=1.0,
                        help="population scale factor (default: 1.0)")
    record.add_argument("--dims", type=int, default=3)

    run = commands.add_parser(
        "run", help="replay a trace file and print the scenario report",
    )
    run.add_argument("path", help="trace file written by 'record'")
    run.add_argument("--algorithm", default="sb")
    run.add_argument("--backend", default="memory")
    run.add_argument("--transport", default="local",
                     choices=list(TRANSPORTS))
    run.add_argument("--no-verify", action="store_true",
                     help="skip ground-truth freshness checks (faster)")
    run.add_argument("--report", metavar="FILE", default=None,
                     help="also save the ScenarioReport as JSON")
    run.add_argument("--rewind-check", action="store_true",
                     help="rewind to each phase boundary and verify "
                          "bit-identical state restoration")
    return parser


def _cmd_record(args: argparse.Namespace) -> int:
    trace = scenario_trace(
        args.scenario, seed=args.seed, scale=args.scale, dims=args.dims,
    )
    trace.save(args.path)
    totals = trace.counts()
    print(
        f"wrote {args.path}: scenario {trace.name!r} seed {args.seed} — "
        f"{totals['base_objects']} objects, {totals['base_functions']} "
        f"functions, {totals['events']} events, {totals['requests']} "
        f"requests over phases {list(trace.phases)}"
    )
    return 0


def _state(driver: ReplayDriver) -> Tuple[Tuple[Tuple[int, int, float],
                                           ...], Tuple]:
    pairs = tuple(
        (p.function_id, p.object_id, p.score)
        for p in driver.matching().pairs
    )
    return pairs, driver.cache_keys()


def _cmd_run(args: argparse.Namespace) -> int:
    trace = Trace.load(args.path)
    with ReplayDriver(
        trace, algorithm=args.algorithm, backend=args.backend,
        transport=args.transport, verify=not args.no_verify,
    ) as driver:
        boundary_states = {}
        for name, (_, end) in trace.phase_spans().items():
            driver.advance(end)
            if args.rewind_check:
                boundary_states[end] = _state(driver)
        report = driver.report()
        print(format_report_table(report))

        if args.rewind_check:
            # Newest boundary first: rewind only ever travels backwards.
            for end, expected in reversed(boundary_states.items()):
                driver.rewind(end)
                if _state(driver) != expected:
                    print(f"rewind({end}) did NOT restore exact state",
                          file=sys.stderr)
                    return 2
            print(f"rewind check: {len(boundary_states)} boundaries "
                  f"restored bit-identically")

        if args.report:
            report.save_json(args.report)
            print(f"report saved to {args.report}")
    if not report.ok:
        print(
            f"FRESHNESS FAILURE: {report.freshness_mismatches} "
            f"mismatches, {report.stale_hits} stale cache hits",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "record":
        return _cmd_record(args)
    return _cmd_run(args)
