"""The deterministic replay driver: simulated clock, exact rewind.

:class:`ReplayDriver` replays a :class:`~repro.replay.trace.Trace`
against the *full* serving stack as one system: churn events feed the
bound :class:`~repro.dynamic.DynamicMatcher` session (which invalidates
the serving cache through the usual ``on_change`` hook), and request
bursts go through a transport — in-process
:meth:`~repro.engine.service.MatchingService.submit_many`, the asyncio
micro-batching front-end, or a loopback :mod:`repro.net` server —
strictly interleaved in timestamp order by :meth:`ReplayDriver.advance`.

**Exact rewind.** Every ``advance()`` boundary checkpoints the complete
logical state: the session
(:meth:`~repro.dynamic.DynamicMatcher.checkpoint`), the result cache
(:meth:`~repro.engine.cache.ResultCache.snapshot`), the cache-key
version counter, the structural oracle, and the per-phase accounting
windows. :meth:`ReplayDriver.rewind` restores the newest checkpoint at
or before the target timestamp and replays forward. Because the
canonical matching and every repair chain are functions of logical
state alone, and because the restored cache makes every replayed
request hit or miss exactly as it did the first time, the replay
reproduces **bit-identical matching pairs, cache keys, and per-window
``ServiceStats`` deltas** — on the synchronous transport, which serves
each burst as one deterministic batch. The async and server transports
may split a burst across micro-batches on a timing boundary, so they
guarantee pair-identical *results* but not identical hit/duplicate
accounting; rewind correctness tests therefore run on ``local``.

**Freshness.** With ``verify=True`` the driver maintains a structural
oracle (plain dicts advanced by
:func:`~repro.dynamic.events.replay_events`, fully independent of the
session) and, after each burst, recomputes ground truth for every
distinct workload served at that instant of the clock. A mismatch
increments ``freshness_mismatches``; a mismatch whose answer was served
from the result cache increments ``stale_hits`` — the counter the
shipped scenarios pin to zero in CI.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass
from types import TracebackType
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

if TYPE_CHECKING:
    from ..engine.plan import PreparedMatching
    from ..net.client import MatchingClient
    from ..net.server import ServerThread

from ..data import Dataset
from ..dynamic.events import replay_events
from ..dynamic.session import SessionCheckpoint
from ..engine.cache import prefs_digest
from ..engine.config import MatchingConfig
from ..engine.request import MatchingRequest
from ..engine.result import MatchResult
from ..engine.service import MatchingService
from ..errors import ReplayError, ServiceOverloadedError
from .report import PhaseWindow, ScenarioReport
from .trace import Trace, TraceEvent, TraceRequest

#: Transport names accepted by :class:`ReplayDriver`.
TRANSPORTS = ("local", "async", "server")


@dataclass(frozen=True)
class _Checkpoint:
    """One rewind target: the complete logical state at a boundary."""

    ts: float
    cursor: int
    session: SessionCheckpoint
    objects_version: int
    cache: tuple
    oracle_points: Tuple[Tuple[int, Tuple[float, ...]], ...]
    oracle_functions: tuple
    windows: Tuple[PhaseWindow, ...]


class _LocalTransport:
    """Direct in-process ``submit_many`` — the deterministic default."""

    name = "local"

    def __init__(self, service: MatchingService) -> None:
        self._service = service

    def submit_many(self,
                    requests: Sequence[MatchingRequest],
                    ) -> List[MatchResult]:
        return self._service.submit_many(requests)

    def close(self) -> None:
        pass


class _AsyncTransport:
    """Each burst awaited concurrently through ``AsyncMatchingService``.

    Exercises the coalescing collector under replayed load. Results are
    pair-identical to the local transport; micro-batch boundaries (and
    therefore the hit/duplicate accounting split) depend on event-loop
    timing, so this transport is not used for stats bit-identity tests.
    """

    name = "async"

    def __init__(self, service: MatchingService) -> None:
        self._service = service

    def submit_many(self,
                    requests: Sequence[MatchingRequest],
                    ) -> List[MatchResult]:
        import asyncio

        from ..engine.async_service import AsyncMatchingService

        async def burst() -> List[MatchResult]:
            front = AsyncMatchingService(self._service)
            try:
                return list(await asyncio.gather(
                    *(front.submit(request) for request in requests)
                ))
            finally:
                await front.aclose()

        return asyncio.run(burst())

    def close(self) -> None:
        pass


class _ServerTransport:
    """Bursts round-trip a loopback :mod:`repro.net` server.

    The server (started lazily on the first burst) wraps the driver's
    own service, so session churn and cache state are shared; requests
    and results cross the exact JSON codec, making this the end-to-end
    "full stack" configuration.
    """

    name = "server"

    def __init__(self, service: MatchingService) -> None:
        self._service = service
        self._thread: Optional["ServerThread"] = None
        self._client: Optional["MatchingClient"] = None

    def _ensure(self) -> "MatchingClient":
        if self._client is None:
            from ..net import MatchingClient, MatchingServer
            from ..net.server import ServerThread

            self._thread = ServerThread(MatchingServer(self._service))
            host, port = self._thread.start()
            self._client = MatchingClient(host, port)
        return self._client

    def submit_many(self,
                    requests: Sequence[MatchingRequest],
                    ) -> List[MatchResult]:
        return self._ensure().submit_many(requests)

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
        if self._thread is not None:
            self._thread.stop()
            self._thread = None


_TRANSPORT_TYPES = {
    "local": _LocalTransport,
    "async": _AsyncTransport,
    "server": _ServerTransport,
}


class ReplayDriver:
    """Replays one trace against the serving stack, with exact rewind.

    Parameters
    ----------
    trace:
        The scenario to replay.
    config / overrides:
        The serving configuration (as :func:`repro.plan` accepts it).
        Must be session-compatible: a repair-capable algorithm,
        ``shards=1``, no capacities.
    transport:
        ``"local"`` (deterministic in-process batches, the default),
        ``"async"`` (asyncio micro-batching front-end), or ``"server"``
        (loopback :mod:`repro.net` round-trip).
    verify:
        Maintain the structural oracle and check every served result
        against ground truth at the same clock (slower; the correctness
        mode). ``False`` replays at full speed and leaves the freshness
        counters at zero.
    max_checkpoints:
        Rewind targets retained (oldest evicted first; the genesis
        checkpoint at construction is always kept).
    """

    def __init__(self, trace: Trace,
                 config: Optional[MatchingConfig] = None, *,
                 transport: str = "local", verify: bool = True,
                 max_checkpoints: int = 64, **overrides: Any) -> None:
        if transport not in _TRANSPORT_TYPES:
            raise ReplayError(
                f"unknown transport {transport!r}; available: "
                f"{', '.join(TRANSPORTS)}"
            )
        if max_checkpoints < 1:
            raise ReplayError(
                f"max_checkpoints must be >= 1, got {max_checkpoints}"
            )
        if config is None:
            config = MatchingConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.trace = trace
        self.verify = verify
        #: The serving stack under test (one service, one bound session).
        self.service = MatchingService(trace.objects, config)
        self.session = self.service.open_session(list(trace.functions))
        self.transport = _TRANSPORT_TYPES[transport](self.service)
        self._max_checkpoints = max_checkpoints
        self._cursor = 0
        self._clock = float("-inf")
        self._closed = False
        self._rejected_bursts = 0
        # Structural oracle: ground truth object/function state, advanced
        # in lockstep with the session but through independent machinery.
        self._oracle_points: Dict[int, Tuple[float, ...]] = dict(
            trace.objects.items()
        )
        self._oracle_functions = {f.fid: f for f in trace.functions}
        self._windows: List[PhaseWindow] = []
        self._checkpoints: List[_Checkpoint] = []
        self.checkpoint()  # genesis: rewind(start) always possible

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """The simulated time every applied record is at or before."""
        return self._clock

    @property
    def prepared(self) -> "PreparedMatching":
        return self.service.prepared

    def matching(self) -> MatchResult:
        """The session's current matching (flushes pending events)."""
        return self.session.matching()

    def cache_keys(self) -> Tuple:
        """The live result-cache keys, LRU order (rewind-comparable)."""
        return self.prepared.cache.keys()

    def checkpoints(self) -> Tuple[float, ...]:
        """Timestamps of the retained rewind targets, oldest first."""
        return tuple(ckpt.ts for ckpt in self._checkpoints)

    # ------------------------------------------------------------------
    # The clock
    # ------------------------------------------------------------------
    def advance(self, to_ts: float) -> Dict[str, int]:
        """Apply every record with ``ts <= to_ts``, in timestamp order.

        Churn events feed the session one by one; contiguous requests
        sharing a timestamp are served as one burst. Returns the window
        totals ``{"events": ..., "requests": ...}``. The boundary is
        verified (when ``verify``) and checkpointed.
        """
        self._check_open()
        to_ts = float(to_ts)
        if to_ts < self._clock:
            raise ReplayError(
                f"advance({to_ts}) goes backwards from clock "
                f"{self._clock}; use rewind()"
            )
        records = self.trace.records
        total = len(records)
        applied = served = 0
        while self._cursor < total and records[self._cursor].ts <= to_ts:
            record = records[self._cursor]
            window = self._window_for(record.phase, float(record.ts))
            if isinstance(record, TraceEvent):
                started = time.perf_counter()
                self.session.submit(record.event)
                window.wall_seconds += time.perf_counter() - started
                window.events[record.event.kind] += 1
                replay_events(
                    self._oracle_points, self._oracle_functions,
                    [record.event],
                )
                window.end_ts = float(record.ts)
                self._cursor += 1
                applied += 1
            else:
                burst = [record]
                self._cursor += 1
                while (
                    self._cursor < total
                    and isinstance(records[self._cursor], TraceRequest)
                    and records[self._cursor].ts == record.ts
                    and records[self._cursor].phase == record.phase
                ):
                    burst.append(records[self._cursor])
                    self._cursor += 1
                served += self._serve_burst(window, burst)
                window.end_ts = float(record.ts)
        self._clock = to_ts
        self.checkpoint()
        return {"events": applied, "requests": served}

    def run(self) -> ScenarioReport:
        """Replay the rest of the trace, one :meth:`advance` per phase.

        Phase boundaries the clock has already passed (e.g. after an
        explicit :meth:`advance` or a :meth:`rewind` into a later phase)
        are skipped, so ``run()`` always means "finish the trace".
        """
        for _, (_, end) in self.trace.phase_spans().items():
            if end > self._clock:
                self.advance(end)
        if self._clock < self.trace.end_ts:  # pragma: no cover - safety
            self.advance(self.trace.end_ts)
        return self.report()

    # ------------------------------------------------------------------
    # Checkpoint / rewind
    # ------------------------------------------------------------------
    def checkpoint(self) -> float:
        """Record the current state as a rewind target; returns its ts.

        Called automatically at every :meth:`advance` boundary; callers
        may add extra targets between advances. Replacing an existing
        checkpoint at the same timestamp is a no-op (the state is
        necessarily identical).
        """
        self._check_open()
        ts = self._clock
        if self._checkpoints and self._checkpoints[-1].ts == ts:
            return ts
        ckpt = _Checkpoint(
            ts=ts,
            cursor=self._cursor,
            session=self.session.checkpoint(),
            objects_version=self.prepared.objects_version,
            cache=self.prepared.cache.snapshot(),
            oracle_points=tuple(sorted(self._oracle_points.items())),
            oracle_functions=tuple(sorted(self._oracle_functions.items())),
            windows=tuple(w.copy() for w in self._windows),
        )
        self._checkpoints.append(ckpt)
        while len(self._checkpoints) > self._max_checkpoints:
            # Keep genesis: rewind to the very start must stay possible.
            del self._checkpoints[1]
        return ts

    def rewind(self, to_ts: float) -> Dict[str, float]:
        """Return the whole system to its state at ``to_ts``, exactly.

        Restores the newest checkpoint at or before ``to_ts`` — session
        matching, result-cache contents and counters, cache-key version,
        structural oracle, and phase windows — then (if the checkpoint
        predates ``to_ts``) replays the gap forward with
        :meth:`advance`. After the rewind the matching pairs, cache
        keys, and per-window counter deltas are bit-identical to the
        first pass at the same clock (synchronous transport).
        """
        self._check_open()
        to_ts = float(to_ts)
        if to_ts > self._clock:
            raise ReplayError(
                f"rewind({to_ts}) is ahead of clock {self._clock}; "
                f"use advance()"
            )
        stamps = [ckpt.ts for ckpt in self._checkpoints]
        index = bisect.bisect_right(stamps, to_ts) - 1
        if index < 0:
            raise ReplayError(
                f"no checkpoint at or before ts={to_ts} (earliest is "
                f"{stamps[0] if stamps else None!r})"
            )
        ckpt = self._checkpoints[index]
        self.session.restore(ckpt.session)
        self.prepared.restore_version(ckpt.objects_version)
        self.prepared.cache.restore(ckpt.cache)
        self._oracle_points = dict(ckpt.oracle_points)
        self._oracle_functions = dict(ckpt.oracle_functions)
        self._windows = [w.copy() for w in ckpt.windows]
        self._cursor = ckpt.cursor
        self._clock = ckpt.ts
        del self._checkpoints[index + 1:]
        if ckpt.ts < to_ts:
            self.advance(to_ts)
        return {"restored_ts": ckpt.ts, "clock": self._clock}

    # ------------------------------------------------------------------
    # Serving + verification
    # ------------------------------------------------------------------
    def _serve_burst(self, window: PhaseWindow,
                     burst: List[TraceRequest]) -> int:
        requests = [
            MatchingRequest(
                record.functions, priority=record.priority,
                timeout=record.timeout,
            )
            for record in burst
        ]
        cached_before = {}
        if self.verify:
            for record in burst:
                key = self.prepared.request_key(list(record.functions))
                cached_before[key] = key in self.prepared.cache
        before = self.service.snapshot()
        started = time.perf_counter()
        try:
            results = self.transport.submit_many(requests)
        except ServiceOverloadedError:
            # All-or-nothing batch admission: the burst was shed. The
            # rejected counter lands in this window via the delta below.
            results = None
            self._rejected_bursts += 1
        elapsed = time.perf_counter() - started
        window.add_delta(self.service.snapshot().delta(before))
        window.latencies.extend([elapsed] * len(burst))
        window.wall_seconds += elapsed
        if results is not None and self.verify:
            self._verify_burst(window, burst, results, cached_before)
        return len(burst)

    def _verify_burst(self, window: PhaseWindow,
                      burst: List[TraceRequest],
                      results: List[MatchResult],
                      cached_before: Dict[object, bool]) -> None:
        """Served results vs ground truth at this instant of the clock."""
        checked = set()
        for record, result in zip(burst, results):
            digest = prefs_digest(record.functions)
            if digest in checked:
                continue
            checked.add(digest)
            window.freshness_checks += 1
            truth = self._ground_truth(record.functions)
            if result.as_set() != truth:
                window.freshness_mismatches += 1
                key = self.prepared.request_key(list(record.functions))
                if cached_before.get(key):
                    window.stale_hits += 1

    def _ground_truth(self, functions: Sequence) -> set:
        """A cold canonical matching on the oracle's current state."""
        from ..engine.facade import match

        objects = Dataset.from_mapping(
            self._oracle_points, self.trace.dims, name="oracle"
        )
        result = match(
            objects, list(functions), config=self.service.plan.config
        )
        return result.as_set()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _window_for(self, phase: str, ts: float) -> PhaseWindow:
        if not self._windows or self._windows[-1].name != phase:
            self._windows.append(PhaseWindow(phase, ts))
        return self._windows[-1]

    def report(self) -> ScenarioReport:
        """Freeze the accounting into a :class:`ScenarioReport`."""
        return ScenarioReport(
            trace_name=self.trace.name,
            algorithm=self.service.plan.algorithm,
            backend=self.service.plan.backend_name,
            transport=self.transport.name,
            clock=0.0 if self._clock == float("-inf") else self._clock,
            phases=tuple(window.freeze() for window in self._windows),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ReplayError("ReplayDriver is closed")

    def close(self) -> ScenarioReport:
        """Release the transport and serving stack; returns the report."""
        if self._closed:
            return self.report()
        report = self.report()
        self._closed = True
        self.transport.close()
        self.service.close()
        return report

    def __enter__(self) -> "ReplayDriver":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        clock = "-" if self._clock == float("-inf") else f"{self._clock:g}"
        return (
            f"ReplayDriver({self.trace.name!r}, clock={clock}, "
            f"cursor={self._cursor}/{len(self.trace.records)}, "
            f"transport={self.transport.name!r})"
        )
