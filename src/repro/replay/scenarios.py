"""Seeded scenario generators: diurnal, flash-crowd, adversarial.

Each generator produces a validated :class:`~repro.replay.trace.Trace`
deterministically from a seed — the same arguments always yield the
same bytes on disk — so a scenario named in a test or CI job is a
*reproducible* claim, not a description of a loop someone once ran.

The three shipped shapes cover the scenario-diversity axis the ROADMAP
names:

* :func:`diurnal_trace` — a day-shaped load curve: request rate ramps
  from a night-time trickle to a midday peak and back down, over steady
  background churn. Exercises cache warm-up and decay.
* :func:`flash_crowd_trace` — three phases (``calm`` / ``flash`` /
  ``recovery``): the flash phase lands dense same-timestamp request
  bursts (with in-burst duplicates) together with an object-churn
  spike. Exercises burst batching, duplicate sharing, and invalidation
  under pressure; the exact-rewind acceptance test runs on this trace.
* :func:`adversarial_trace` — churn aimed at the cache: every cycle
  serves a workload, then deletes a live object and inserts a
  near-dominant replacement at the *same* timestamp, then serves the
  identical workload again. Any stale cache entry served after the
  churn is a correctness bug the stale-hit counter catches.

Use :func:`scenario_trace` to build one by name (the registry the CLI
and benchmarks consume).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..data import Dataset, generate_independent
from ..dynamic.events import DeleteObject, InsertObject, replay_events
from ..dynamic.workload import (
    MIXED_CHURN,
    OBJECT_CHURN,
    UpdateMix,
    generate_events,
)
from ..errors import ReplayError
from ..prefs import LinearPreference, generate_preferences
from .trace import Trace, TraceEvent, TraceRecord, TraceRequest


def _population(seed: int, dims: int, n_objects: int, n_functions: int,
                ) -> Tuple[Dataset, Tuple[LinearPreference, ...]]:
    objects = generate_independent(n=n_objects, dims=dims, seed=seed)
    functions = tuple(
        generate_preferences(n=n_functions, dims=dims, seed=seed + 1)
    )
    return objects, functions


def _workload_pool(seed: int, dims: int, pool: int, size: int,
                   ) -> List[Tuple[LinearPreference, ...]]:
    """``pool`` distinct request workloads of ``size`` functions each.

    Served workloads are deliberately disjoint from the session's own
    function population (fids start at 10_000): the service answers
    arbitrary preference workloads against the current object state, so
    request traffic and session function churn are independent axes.
    """
    flat = generate_preferences(n=pool * size, dims=dims, seed=seed + 2)
    workloads = []
    for index in range(pool):
        chunk = flat[index * size:(index + 1) * size]
        workloads.append(tuple(
            LinearPreference(10_000 + index * size + j, f.weights)
            for j, f in enumerate(chunk)
        ))
    return workloads


def _stamped_churn(objects: Dataset, functions: Sequence[LinearPreference],
                   n_events: int, mix: UpdateMix, seed: int,
                   timestamps: List[float],
                   phase_of: Callable[[float], str]) -> List[TraceEvent]:
    """Generate a valid churn stream and restamp it onto ``timestamps``."""
    import dataclasses

    events = generate_events(
        objects, list(functions), n_events, mix=mix, seed=seed,
        insert_pool=objects,
    )
    out = []
    for event, ts in zip(events, timestamps):
        out.append(TraceEvent(
            dataclasses.replace(event, ts=ts), phase=phase_of(ts),
        ))
    return out


def diurnal_trace(seed: int = 0, *, dims: int = 3, scale: float = 1.0,
                  hours: int = 6, base_requests: int = 1,
                  peak_requests: int = 5, churn_per_hour: int = 4,
                  workloads: int = 4, workload_size: int = 3) -> Trace:
    """A day-shaped load curve over steady background churn.

    The simulated clock runs in hours ``[0, hours]``; per-hour request
    volume ramps linearly from ``base_requests`` up to ``peak_requests``
    at midday and back. Phases: ``morning`` (first third), ``midday``
    (middle), ``evening`` (last).
    """
    n_objects = max(40, int(80 * scale))
    n_functions = max(6, int(10 * scale))
    objects, functions = _population(seed, dims, n_objects, n_functions)
    pool = _workload_pool(seed, dims, workloads, workload_size)
    rng = np.random.default_rng(seed + 3)

    bounds = (hours / 3.0, 2.0 * hours / 3.0)

    def phase_of(ts: float) -> str:
        if ts < bounds[0]:
            return "morning"
        if ts < bounds[1]:
            return "midday"
        return "evening"

    total_churn = churn_per_hour * hours
    churn_ts = [
        hours * (i + 1) / (total_churn + 1) for i in range(total_churn)
    ]
    churn = _stamped_churn(
        objects, functions, total_churn, MIXED_CHURN, seed + 4,
        churn_ts, phase_of,
    )

    requests: List[TraceRecord] = []
    mid = (hours - 1) / 2.0
    for hour in range(hours):
        # Triangular ramp: base at the edges, peak at midday.
        closeness = 1.0 - abs(hour - mid) / max(mid, 1.0)
        volume = base_requests + int(
            round((peak_requests - base_requests) * closeness)
        )
        for j in range(volume):
            ts = hour + (j + 1) / (volume + 1)
            workload = pool[int(rng.integers(len(pool)))]
            requests.append(TraceRequest(
                ts=ts, functions=workload,
                priority=int(rng.integers(0, 3)), phase=phase_of(ts),
            ))

    records = sorted(requests + churn, key=lambda r: float(r.ts))
    return Trace(
        name="diurnal", seed=seed, objects=objects, functions=functions,
        records=tuple(records), phases=("morning", "midday", "evening"),
    )


def flash_crowd_trace(seed: int = 0, *, dims: int = 3, scale: float = 1.0,
                      bursts: int = 4, burst_width: int = 4,
                      workloads: int = 3, workload_size: int = 3) -> Trace:
    """Three phases — calm, flash, recovery — with same-ts burst loads.

    Calm serves a trickle over light churn; the flash phase lands
    ``bursts`` bursts of ``burst_width`` simultaneous requests (with
    in-burst duplicates) interleaved with an object-churn spike;
    recovery returns to the calm rate so cache re-warming is visible in
    the per-phase report.
    """
    n_objects = max(40, int(80 * scale))
    n_functions = max(6, int(10 * scale))
    objects, functions = _population(seed, dims, n_objects, n_functions)
    pool = _workload_pool(seed, dims, workloads, workload_size)
    rng = np.random.default_rng(seed + 3)

    def phase_of(ts: float) -> str:
        if ts < 10.0:
            return "calm"
        if ts < 20.0:
            return "flash"
        return "recovery"

    records: List[TraceRecord] = []

    # calm: [0, 10) — one request every ~3s, light churn.
    calm_churn_ts = [2.0, 5.0, 8.0]
    for i in range(3):
        ts = 1.0 + 3.0 * i
        records.append(TraceRequest(
            ts=ts, functions=pool[i % len(pool)], phase="calm",
        ))

    # flash: [10, 20) — dense bursts + churn spike.
    flash_churn_count = 2 * bursts
    flash_churn_ts = [
        10.0 + 10.0 * (i + 1) / (flash_churn_count + 1)
        for i in range(flash_churn_count)
    ]
    for b in range(bursts):
        ts = 10.5 + b * (9.0 / bursts)
        for j in range(burst_width):
            # Half the burst repeats one hot workload (duplicates are
            # shared in-batch), the rest draw from the pool.
            if j < burst_width // 2:
                workload = pool[0]
            else:
                workload = pool[int(rng.integers(len(pool)))]
            records.append(TraceRequest(
                ts=ts, functions=workload, priority=(1 if j == 0 else 0),
                phase="flash",
            ))

    # recovery: [20, 30] — calm rate again, light churn.
    recovery_churn_ts = [22.0, 26.0]
    for i in range(3):
        ts = 21.0 + 3.0 * i
        records.append(TraceRequest(
            ts=ts, functions=pool[i % len(pool)], phase="recovery",
        ))

    churn_ts = calm_churn_ts + flash_churn_ts + recovery_churn_ts
    churn = _stamped_churn(
        objects, functions, len(churn_ts), OBJECT_CHURN, seed + 4,
        sorted(churn_ts), phase_of,
    )

    records = sorted(records + churn, key=lambda r: float(r.ts))
    return Trace(
        name="flash-crowd", seed=seed, objects=objects,
        functions=functions, records=tuple(records),
        phases=("calm", "flash", "recovery"),
    )


def adversarial_trace(seed: int = 0, *, dims: int = 3, scale: float = 1.0,
                      cycles: int = 6, workloads: int = 2,
                      workload_size: int = 3) -> Trace:
    """Churn aimed squarely at the serving cache.

    Every cycle: serve a workload, then — at one shared timestamp —
    delete a live object and insert a near-dominant replacement (a
    point close to the unit corner, very likely to enter the matching),
    then serve the *identical* workload again. A cache that fails to
    invalidate on the churn serves the pre-churn result: the replay
    driver's stale-hit counter catches it. Equal timestamps on the
    delete/insert pair additionally pin the order-stability contract:
    ties are broken by stream order, deterministically.
    """
    n_objects = max(40, int(80 * scale))
    n_functions = max(6, int(10 * scale))
    objects, functions = _population(seed, dims, n_objects, n_functions)
    pool = _workload_pool(seed, dims, workloads, workload_size)
    rng = np.random.default_rng(seed + 3)

    # Track live object state so generated churn is always valid.
    points = dict(objects.items())
    prefs = {f.fid: f for f in functions}
    next_id = max(points) + 1

    records: List[TraceRecord] = []
    phases = ("probe", "thrash", "aftermath")

    def phase_of(cycle: int) -> str:
        if cycle == 0:
            return "probe"
        if cycle < cycles - 1:
            return "thrash"
        return "aftermath"

    nonce = 0
    for cycle in range(cycles):
        phase = phase_of(cycle)
        base_ts = 10.0 * cycle
        workload = pool[cycle % len(pool)]
        records.append(TraceRequest(
            ts=base_ts + 1.0, functions=workload, priority=1, phase=phase,
        ))
        # The attack: delete + near-dominant insert at one timestamp.
        victim = int(sorted(points)[int(rng.integers(len(points)))])
        strike_ts = base_ts + 2.0
        near_corner = tuple(
            min(1.0, 0.9 + 0.02 * float(rng.random()) + 0.001 * nonce)
            for _ in range(dims)
        )
        nonce += 1
        strike = [
            DeleteObject(victim, ts=strike_ts),
            InsertObject(next_id, near_corner, ts=strike_ts),
        ]
        next_id += 1
        replay_events(points, prefs, strike)
        records.extend(TraceEvent(e, phase=phase) for e in strike)
        # Re-serve the identical workload: must reflect the churn.
        records.append(TraceRequest(
            ts=base_ts + 3.0, functions=workload, phase=phase,
        ))
    return Trace(
        name="adversarial", seed=seed, objects=objects,
        functions=functions, records=tuple(records), phases=phases,
    )


#: Registry: scenario name -> generator (``seed`` plus keyword knobs).
SCENARIOS: Dict[str, Callable[..., Trace]] = {
    "diurnal": diurnal_trace,
    "flash-crowd": flash_crowd_trace,
    "adversarial": adversarial_trace,
}


def available_scenarios() -> Tuple[str, ...]:
    """The shipped scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def scenario_trace(name: str, seed: int = 0, **knobs: Any) -> Trace:
    """Build a shipped scenario by name (the CLI/benchmark entry point)."""
    try:
        generator = SCENARIOS[name.strip().lower()]
    except KeyError:
        raise ReplayError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        ) from None
    return generator(seed, **knobs)
