"""``python -m repro.replay`` dispatch."""

import sys

from .cli import main

sys.exit(main())
