"""Live-replay scenario harness: time-stamped churn against the stack.

The dynamic layer (:mod:`repro.dynamic`) and the serving layers
(:mod:`repro.engine`, :mod:`repro.net`) are each tested in isolation;
this package exercises them *together* under a realistic, time-stamped
event stream — the regime the paper's maintenance algorithms exist for.

* :class:`Trace` — a versioned, JSON-lines scenario: one base
  population plus a timestamp-ordered stream of churn events and
  request bursts. Seeded generators (:func:`scenario_trace`:
  ``diurnal`` / ``flash-crowd`` / ``adversarial``) and
  :class:`TraceRecorder` (record-from-live) both produce it.
* :class:`ReplayDriver` — advances a simulated clock over a trace,
  interleaving session churn and transport-served request bursts in
  timestamp order, verifying every served result against a structural
  oracle at the same instant, and checkpointing every boundary.
* **Exact rewind** — :meth:`ReplayDriver.rewind` restores a checkpoint
  and replays forward; matching pairs, cache keys, and per-window
  serving-counter deltas come back bit-identical.
* :class:`ScenarioReport` — per-phase freshness, stale-hit, and
  latency accounting (the CI artifact).

Examples
--------
>>> from repro.replay import ReplayDriver, scenario_trace
>>> trace = scenario_trace("flash-crowd", seed=3, scale=0.5)
>>> list(trace.phase_spans()) == list(trace.phases)
True
>>> driver = ReplayDriver(trace, backend="memory")
>>> calm_end = trace.phase_spans()["calm"][1]
>>> totals = driver.advance(calm_end)
>>> totals["requests"] > 0
True
>>> pairs = [(p.function_id, p.object_id, p.score)
...          for p in driver.matching().pairs]
>>> keys = driver.cache_keys()
>>> report = driver.run()                     # replay to the end...
>>> _ = driver.rewind(calm_end)               # ...and rewind, exactly
>>> [(p.function_id, p.object_id, p.score)
...  for p in driver.matching().pairs] == pairs
True
>>> driver.cache_keys() == keys
True
>>> (report.ok, report.stale_hits, driver.close().trace_name)
(True, 0, 'flash-crowd')

Command line: ``python -m repro.replay record trace.jsonl --scenario
diurnal`` writes a generated trace; ``python -m repro.replay run
trace.jsonl`` replays it and prints the per-phase report.
"""

from .driver import TRANSPORTS, ReplayDriver
from .report import PhaseReport, ScenarioReport, format_report_table
from .scenarios import (
    SCENARIOS,
    adversarial_trace,
    available_scenarios,
    diurnal_trace,
    flash_crowd_trace,
    scenario_trace,
)
from .trace import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    Trace,
    TraceEvent,
    TraceRecorder,
    TraceRequest,
)

__all__ = [
    "PhaseReport",
    "ReplayDriver",
    "SCENARIOS",
    "ScenarioReport",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "TRANSPORTS",
    "Trace",
    "TraceEvent",
    "TraceRecorder",
    "TraceRequest",
    "adversarial_trace",
    "available_scenarios",
    "diurnal_trace",
    "flash_crowd_trace",
    "format_report_table",
    "scenario_trace",
]
