"""The whole-program model behind project rules.

Per-file rules see one :class:`~repro.lint.source.SourceFile` at a
time, which is exactly the wrong granularity for the properties that
actually break production: a lock cycle spanning two modules, a
``time.time()`` call three imports away from the replay driver, a
dataclass field the wire codec silently drops. :class:`ProjectModel`
is built **once per lint run** from every parsed file and gives
:class:`~repro.lint.rules.base.ProjectRule` subclasses the
cross-module facts those checks need:

* the **module graph** — project-local imports (module-level and
  function-level), with relative imports resolved;
* a resolved, best-effort **call graph** — direct calls, ``self``
  method calls (following base classes declared in the model), and
  ``module.func`` calls through import aliases; anything the resolver
  cannot pin down is dropped, never guessed;
* per-function **lock summaries** — which locks a function acquires,
  which it acquires while already holding another (lexically or via a
  ``# lint: holds-lock=`` contract), and which calls it makes under a
  held lock;
* **class schemas** — dataclass/TypedDict fields in declaration order
  (or ``__init__`` parameters for plain classes), with their
  ``# wire:`` key aliases, plus the base-class lists that let rules
  walk the :class:`~repro.errors.ReproError` hierarchy;
* **wire markers** — which functions declared themselves encoders or
  decoders of which schema classes.

Everything here is derived from the AST plus the comment markers in
:mod:`repro.lint.suppress`; the model never imports the code it
analyzes.
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .source import SourceFile
from .suppress import (
    held_locks,
    marked_replay_root,
    wire_field_keys,
    wire_marker,
)

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Attribute/variable names treated as locks by naming convention,
#: even when their ``threading.Lock()`` assignment is out of view.
_LOCK_NAME_RE = re.compile(r"(?:^|_)(?:lock|cv|cond|condition|mutex|sem)$")

#: ``threading`` constructors whose assignment marks the target a lock.
_THREADING_LOCKS = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
}

#: Every builtin exception class name (``ValueError``, ``OSError``...).
BUILTIN_EXCEPTIONS = frozenset(
    name for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/net/codec.py`` → ``repro.net.codec``;
    ``src/repro/net/__init__.py`` → ``repro.net``; a bare fixture file
    ``wire_schema_cases.py`` → ``wire_schema_cases``.
    """
    parts = rel_path[:-3].split("/") if rel_path.endswith(".py") \
        else rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FieldInfo:
    """One schema field of a wire-relevant class."""

    name: str
    line: int
    #: Keys this field may travel under on the wire (defaults to the
    #: field name; overridden by a ``# wire: a,b`` comment).
    wire_keys: Tuple[str, ...]


@dataclass
class CallSite:
    """One call expression, as written (unresolved)."""

    #: Dotted callee text (``self.flush``, ``codec.encode_request``).
    callee: str
    line: int
    #: Lock names held (lexically or by contract) at the call.
    held: Tuple[str, ...]


@dataclass
class ResolvedCall:
    """One call edge resolved to a project function key."""

    callee: str
    line: int
    held: Tuple[str, ...]


@dataclass
class RaiseSite:
    """One ``raise Name(...)`` statement (dotted name as written)."""

    name: str
    line: int


@dataclass
class LockNest:
    """Lock ``acquired`` taken while ``held`` was already held."""

    held: str
    acquired: str
    line: int


@dataclass
class FunctionInfo:
    """Summary of one module-level function or method."""

    module: str
    #: Repo-relative path of the defining file.
    path: str
    #: Qualified name within the module (``Cls.meth`` or ``func``).
    name: str
    line: int
    node: _AnyFunc
    class_name: str = ""
    #: ``{lock: first acquisition line}``.
    acquires: Dict[str, int] = field(default_factory=dict)
    nests: List[LockNest] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Global identity: ``module:qualname``."""
        return f"{self.module}:{self.name}"


@dataclass
class ClassInfo:
    """Schema + hierarchy facts for one class definition."""

    module: str
    path: str
    name: str
    line: int
    #: Base classes as written (dotted names).
    bases: Tuple[str, ...]
    #: Declaration-ordered schema fields (dataclass/TypedDict
    #: annotations, or ``__init__`` parameters for plain classes).
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    #: Own methods (inherited ones live on the base's ClassInfo).
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    is_dataclass: bool = False

    @property
    def key(self) -> str:
        """Global identity: ``module:ClassName``."""
        return f"{self.module}:{self.name}"


@dataclass
class WireMarker:
    """One ``# lint: encodes=``/``decodes=`` declaration on a def."""

    function: FunctionInfo
    kind: str  # "encodes" | "decodes"
    types: Tuple[str, ...]
    extras: Tuple[str, ...]


@dataclass
class ModuleInfo:
    """One parsed module inside the project model."""

    name: str
    package: str
    source: SourceFile
    #: Local name → absolute dotted import target.
    imports: Dict[str, str] = field(default_factory=dict)
    #: Project modules this module imports (anywhere in the file).
    deps: Set[str] = field(default_factory=set)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Functions *and* methods, keyed by in-module qualname.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``__all__`` names → declaration line.
    exports: Dict[str, int] = field(default_factory=dict)
    #: Whether a ``# lint: replay-root`` marker is present.
    replay_root: bool = False
    #: Raw import records, resolved against the model during linking.
    raw_imports: List[Tuple[str, str]] = field(default_factory=list)


class _FunctionScanner(ast.NodeVisitor):
    """Fills one FunctionInfo: acquires, nests, calls, raises.

    Tracks the lexically-held lock stack (seeded with the def's
    ``holds-lock=`` contract); nested defs and lambdas are skipped —
    they execute later, in a context this function does not control.
    """

    def __init__(self, info: FunctionInfo, is_lock) -> None:
        self.info = info
        self.is_lock = is_lock
        self.held: List[str] = []

    def scan(self, node: _AnyFunc, entry_held: Iterable[str]) -> None:
        self.held = list(entry_held)
        for statement in node.body:
            self.visit(statement)

    @staticmethod
    def _lock_candidate(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        acquired: List[str] = []
        for item in node.items:
            name = self._lock_candidate(item.context_expr)
            if name is None or not self.is_lock(name):
                self.visit(item.context_expr)
                continue
            self.info.acquires.setdefault(name, node.lineno)
            for outer in self.held + acquired:
                if outer != name:
                    self.info.nests.append(
                        LockNest(outer, name, node.lineno)
                    )
            acquired.append(name)
        depth = len(self.held)
        self.held.extend(acquired)
        for statement in node.body:
            self.visit(statement)
        del self.held[depth:]

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted:
            self.info.calls.append(CallSite(
                dotted, node.lineno, tuple(sorted(set(self.held)))
            ))
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        if target is not None:
            dotted = _dotted(target)
            if dotted:
                self.info.raises.append(RaiseSite(dotted, node.lineno))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _dotted(node: ast.AST) -> str:
    """Render an ``a.b.c`` name/attribute chain ('' otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _decorator_names(node: Union[ast.ClassDef, _AnyFunc]) -> Set[str]:
    names: Set[str] = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        dotted = _dotted(target)
        if dotted:
            names.add(dotted.split(".")[-1])
    return names


def _exported_names(tree: ast.Module) -> Dict[str, int]:
    """``{name: line}`` from ``__all__`` list/tuple assignments."""
    exported: Dict[str, int] = {}
    for node in tree.body:
        values: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in node.targets):
                values = [node.value]
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) \
                    and node.target.id == "__all__":
                values = [node.value]
        for value in values:
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) \
                            and isinstance(element.value, str):
                        exported[element.value] = element.lineno
    return exported


class ProjectModel:
    """Cross-module facts for one lint run. Build with :meth:`build`."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Every function by global key.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Resolved call edges per function key.
        self.call_graph: Dict[str, List[ResolvedCall]] = {}
        #: Attribute names known to be locks (assignment-detected).
        self.lock_names: Set[str] = set()
        self.wire_markers: List[WireMarker] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, sources: Sequence[SourceFile]) -> "ProjectModel":
        """Parse every source into one linked model."""
        model = cls()
        parsed = [s for s in sources if s.tree is not None]
        for source in parsed:
            model._collect_lock_names(source)
        for source in parsed:
            model._add_module(source)
        model._link_imports()
        model._link_calls()
        return model

    def is_lock(self, name: str) -> bool:
        """Whether a with-target name counts as a lock."""
        return name in self.lock_names or bool(_LOCK_NAME_RE.search(name))

    def _collect_lock_names(self, source: SourceFile) -> None:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign) or \
                    not isinstance(node.value, ast.Call):
                continue
            ctor = _dotted(node.value.func).split(".")[-1]
            if ctor not in _THREADING_LOCKS:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    self.lock_names.add(target.attr)
                elif isinstance(target, ast.Name):
                    self.lock_names.add(target.id)

    def _add_module(self, source: SourceFile) -> None:
        assert source.tree is not None
        name = module_name_for(source.rel_path)
        is_package = source.rel_path.endswith("__init__.py")
        package = name if is_package else ".".join(name.split(".")[:-1])
        module = ModuleInfo(
            name=name, package=package, source=source,
            exports=_exported_names(source.tree),
            replay_root=any(
                marked_replay_root(c) for c in source.comments.values()
            ),
        )
        self._collect_imports(module, source.tree)
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, class_name="")
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)
        self.modules[name] = module

    def _collect_imports(self, module: ModuleInfo, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    module.imports.setdefault(bound, target)
                    module.raw_imports.append(("module", alias.name))
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        module.raw_imports.append(("module", base))
                        continue
                    bound = alias.asname or alias.name
                    module.imports.setdefault(
                        bound, f"{base}.{alias.name}"
                    )
                    module.raw_imports.append(
                        ("symbol", f"{base}.{alias.name}")
                    )

    @staticmethod
    def _resolve_from(module: ModuleInfo,
                      node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.package.split(".") if module.package else []
        drop = node.level - 1
        if drop > len(parts):
            return None
        base_parts = parts[:len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _add_function(self, module: ModuleInfo, node: _AnyFunc,
                      class_name: str) -> None:
        qual = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            module=module.name, path=module.source.rel_path,
            name=qual, line=node.lineno, node=node,
            class_name=class_name,
        )
        header = range(
            node.lineno,
            (node.body[0].lineno if node.body else node.lineno) + 1,
        )
        contract = held_locks(module.source.comments, header)
        _FunctionScanner(info, self.is_lock).scan(node, contract)
        module.functions[qual] = info
        self.functions[info.key] = info
        for line in header:
            marker = wire_marker(module.source.comment_on(line))
            if marker is not None:
                kind, types, extras = marker
                self.wire_markers.append(
                    WireMarker(info, kind, types, extras)
                )

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        bases = tuple(d for d in (_dotted(b) for b in node.bases) if d)
        decorators = _decorator_names(node)
        base_tails = {b.split(".")[-1] for b in bases}
        is_schema = "dataclass" in decorators or \
            bool(base_tails & {"TypedDict", "NamedTuple"})
        info = ClassInfo(
            module=module.name, path=module.source.rel_path,
            name=node.name, line=node.lineno, bases=bases,
            is_dataclass="dataclass" in decorators,
        )
        for statement in node.body:
            if isinstance(statement,
                          (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, statement,
                                   class_name=node.name)
                info.methods[statement.name] = \
                    module.functions[f"{node.name}.{statement.name}"]
            elif is_schema and isinstance(statement, ast.AnnAssign) \
                    and isinstance(statement.target, ast.Name):
                annotation = _dotted(
                    statement.annotation.value
                    if isinstance(statement.annotation, ast.Subscript)
                    else statement.annotation
                )
                if annotation.split(".")[-1] == "ClassVar":
                    continue
                self._add_field(module, info, statement.target.id,
                                statement.lineno)
        if not is_schema:
            init = info.methods.get("__init__")
            if init is not None:
                args = init.node.args
                for arg in list(args.posonlyargs) + list(args.args) \
                        + list(args.kwonlyargs):
                    if arg.arg in ("self", "cls"):
                        continue
                    self._add_field(module, info, arg.arg, arg.lineno)
        module.classes[node.name] = info

    @staticmethod
    def _add_field(module: ModuleInfo, info: ClassInfo,
                   name: str, line: int) -> None:
        keys = wire_field_keys(module.source.comment_on(line))
        info.fields[name] = FieldInfo(
            name=name, line=line,
            wire_keys=keys if keys is not None else (name,),
        )

    def _link_imports(self) -> None:
        for module in self.modules.values():
            for kind, dotted in module.raw_imports:
                dep = self._module_prefix(dotted)
                if dep and dep != module.name:
                    module.deps.add(dep)

    def _module_prefix(self, dotted: str) -> Optional[str]:
        """The longest model module that prefixes ``dotted``."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return candidate
        return None

    def _link_calls(self) -> None:
        for module in self.modules.values():
            for info in module.functions.values():
                resolved: List[ResolvedCall] = []
                for call in info.calls:
                    key = self._resolve_call(module, info, call.callee)
                    if key is not None and key != info.key:
                        resolved.append(
                            ResolvedCall(key, call.line, call.held)
                        )
                self.call_graph[info.key] = resolved

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _resolve_call(self, module: ModuleInfo, caller: FunctionInfo,
                      dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        if parts[0] == "self":
            if caller.class_name and len(parts) == 2:
                found = self.resolve_method(
                    module.name, caller.class_name, parts[1]
                )
                return found.key if found is not None else None
            return None
        resolved = self.resolve_symbol(module.name, dotted)
        if isinstance(resolved, FunctionInfo):
            return resolved.key
        if isinstance(resolved, ClassInfo):
            init = resolved.methods.get("__init__")
            return init.key if init is not None else None
        return None

    def resolve_symbol(
        self, module_name: str, dotted: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Union[FunctionInfo, ClassInfo, ModuleInfo]]:
        """Resolve a dotted name as seen from ``module_name``.

        Follows import aliases and re-export chains through the model;
        returns ``None`` for anything external or ambiguous.
        """
        if _seen is None:
            _seen = set()
        if (module_name, dotted) in _seen:
            return None
        _seen.add((module_name, dotted))
        module = self.modules.get(module_name)
        if module is None:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        # Defined right here?
        local: Optional[Union[FunctionInfo, ClassInfo]] = None
        if head in module.classes:
            local = module.classes[head]
        elif head in module.functions:
            local = module.functions[head]
        if local is not None:
            if not rest:
                return local
            if isinstance(local, ClassInfo) and len(rest) == 1:
                return local.methods.get(rest[0])
            return None
        # Through an import alias?
        target = module.imports.get(head)
        if target is not None:
            return self._resolve_absolute(
                ".".join([target] + rest), _seen
            )
        return None

    def _resolve_absolute(
        self, dotted: str, _seen: Set[Tuple[str, str]],
    ) -> Optional[Union[FunctionInfo, ClassInfo, ModuleInfo]]:
        if dotted in self.modules:
            return self.modules[dotted]
        prefix = self._module_prefix(dotted)
        if prefix is None:
            return None
        rest = dotted[len(prefix) + 1:]
        return self.resolve_symbol(prefix, rest, _seen)

    def resolve_method(self, module_name: str, class_name: str,
                       method: str) -> Optional[FunctionInfo]:
        """Find ``method`` on a class or its model-visible bases."""
        queue: List[Tuple[str, str]] = [(module_name, class_name)]
        seen: Set[str] = set()
        while queue:
            mod_name, cls_name = queue.pop(0)
            resolved = self.resolve_symbol(mod_name, cls_name)
            if not isinstance(resolved, ClassInfo) or \
                    resolved.key in seen:
                continue
            seen.add(resolved.key)
            if method in resolved.methods:
                return resolved.methods[method]
            for base in resolved.bases:
                queue.append((resolved.module, base))
        return None

    def is_typed_error(self, cls: ClassInfo,
                       _seen: Optional[Set[str]] = None) -> bool:
        """Whether ``cls`` derives (by name) from ``ReproError``."""
        if _seen is None:
            _seen = set()
        if cls.key in _seen:
            return False
        _seen.add(cls.key)
        if cls.name == "ReproError":
            return True
        for base in cls.bases:
            if base.split(".")[-1] == "ReproError":
                return True
            resolved = self.resolve_symbol(cls.module, base)
            if isinstance(resolved, ClassInfo) and \
                    self.is_typed_error(resolved, _seen):
                return True
        return False

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reachable_modules(self, roots: Iterable[str]) -> Set[str]:
        """Model modules reachable from ``roots`` via imports."""
        seen: Set[str] = set()
        queue = [r for r in roots if r in self.modules]
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            queue.extend(self.modules[name].deps - seen)
        return seen

    def transitive_acquires(self) -> Dict[str, Dict[str, Tuple[str, int]]]:
        """Per function: every lock it may acquire, directly or via
        calls, with the (path, line) of one acquisition site."""
        acquired: Dict[str, Dict[str, Tuple[str, int]]] = {
            key: {
                lock: (info.path, line)
                for lock, line in info.acquires.items()
            }
            for key, info in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, calls in self.call_graph.items():
                mine = acquired[key]
                for call in calls:
                    for lock, site in acquired.get(call.callee,
                                                   {}).items():
                        if lock not in mine:
                            mine[lock] = site
                            changed = True
        return acquired

    def lock_graph(
        self,
    ) -> Dict[Tuple[str, str], List[Tuple[str, int, str]]]:
        """The interprocedural lock-acquisition digraph.

        Edge ``(a, b)`` means some code path acquires ``b`` while
        holding ``a`` — either lexically nested ``with`` blocks, or a
        call made under ``a`` into a function that (transitively)
        acquires ``b``. Each edge carries its ``(path, line, note)``
        sites. Self-edges (re-entrant re-acquisition) are excluded.
        """
        edges: Dict[Tuple[str, str], List[Tuple[str, int, str]]] = {}

        def add(a: str, b: str, path: str, line: int, note: str) -> None:
            if a != b:
                edges.setdefault((a, b), []).append((path, line, note))

        transitive = self.transitive_acquires()
        for key, info in self.functions.items():
            for nest in info.nests:
                add(nest.held, nest.acquired, info.path, nest.line,
                    f"nested acquisition in {info.name}")
            for call in self.call_graph.get(key, []):
                if not call.held:
                    continue
                callee = self.functions[call.callee]
                for lock, (opath, oline) in sorted(
                    transitive.get(call.callee, {}).items()
                ):
                    for held in call.held:
                        add(held, lock, info.path, call.line,
                            f"{info.name} calls {callee.name} "
                            f"(acquires '{lock}' at {opath})")
        for sites in edges.values():
            sites.sort(key=lambda s: (s[0], s[1]))
        return edges


LockEdges = Dict[Tuple[str, str], List[Tuple[str, int, str]]]


def derive_lock_order(edges: LockEdges) -> Tuple[str, ...]:
    """A canonical acquisition order derived from the lock graph.

    Greedy linear-arrangement heuristic (Eades–Lin–Smyth): repeatedly
    peel sinks to the back and sources to the front; when only cyclic
    structure remains, move the node with the largest (out − in) site
    weight to the front. For an acyclic graph this is a topological
    order — every observed nesting agrees with it. When cycles exist,
    the minority direction (by acquisition-site count) ends up as
    "back edges" against the returned order; ties break toward the
    lexicographically smaller lock so the result is deterministic.
    """
    weight: Dict[Tuple[str, str], int] = {
        pair: len(sites) for pair, sites in edges.items()
        if pair[0] != pair[1]
    }
    remaining: Set[str] = {n for pair in weight for n in pair}
    front: List[str] = []
    back: List[str] = []

    def out_w(node: str) -> int:
        return sum(w for (a, b), w in weight.items()
                   if a == node and b in remaining)

    def in_w(node: str) -> int:
        return sum(w for (a, b), w in weight.items()
                   if b == node and a in remaining)

    while remaining:
        sink = next(
            (n for n in sorted(remaining) if out_w(n) == 0), None
        )
        if sink is not None:
            remaining.remove(sink)
            back.append(sink)
            continue
        source = next(
            (n for n in sorted(remaining) if in_w(n) == 0), None
        )
        if source is not None:
            remaining.remove(source)
            front.append(source)
            continue
        best = max(sorted(remaining), key=lambda n: out_w(n) - in_w(n))
        remaining.remove(best)
        front.append(best)
    return tuple(front + list(reversed(back)))


def lock_sccs(edges: LockEdges) -> List[List[str]]:
    """Non-trivial strongly connected components of the lock graph.

    Returns each SCC of size ≥ 2 (a set of locks that can be acquired
    in a cycle) as a sorted list, components ordered by their smallest
    member. Tarjan's algorithm with deterministic adjacency order.
    """
    graph: Dict[str, List[str]] = {}
    for (a, b), _ in sorted(edges.items()):
        if a != b:
            graph.setdefault(a, []).append(b)
            graph.setdefault(b, [])
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    result: List[List[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in graph[node]:
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                result.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    result.sort(key=lambda c: c[0])
    return result
