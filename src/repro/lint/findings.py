"""The lint toolkit's result type: one :class:`Finding` per violation.

A finding identifies *what* fired (the rule), *where* (repo-relative
path + line), and *on which symbol* (a dotted ``Class.attr`` or
``Class.method`` name when the rule can say). The ``key`` — rule, path,
symbol, message, deliberately **without** the line number — is the
identity the baseline file matches on, so unrelated edits that shift
code downward do not churn grandfathered entries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Name of the rule that fired (``lock-guard``, ``async-safety``...).
    rule: str
    #: Repo-relative posix path of the offending file.
    path: str
    #: 1-indexed line the violation anchors to.
    line: int
    #: Human-readable statement of the violation (no line numbers —
    #: the baseline keys on this text).
    message: str
    #: Dotted symbol the finding is about (``Class.attr``), when known.
    symbol: str = ""

    @property
    def key(self) -> Tuple[str, str, str, str]:
        """Baseline identity: everything but the (churn-prone) line."""
        return (self.rule, self.path, self.symbol, self.message)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (used by ``--json`` reports)."""
        return asdict(self)

    def render(self) -> str:
        """The one-line terminal rendering: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
