"""Project-specific static analysis for the repro serving stack.

The serving layers (PRs 3–5) each shipped with a hand-found bug of a
*mechanically detectable* class: an unpicklable exception killing the
shard worker pool, a thread-unsafe result cache, a blocking call
reachable from a coroutine. This package turns those invariants into
enforced tooling — an AST-based rule engine
(:class:`~repro.lint.engine.LintEngine`) with ten project-specific
checkers. Six are *file rules* (one :class:`~repro.lint.source.SourceFile`
at a time); four are *project rules* checking the whole-program
:class:`~repro.lint.project.ProjectModel` (module graph, resolved call
graph, lock summaries, class field schemas) built once per run:

========================  ==============================================
``lock-guard``            ``# guarded-by: <lock>`` attributes only
                          touched under ``with self.<lock>``
``lock-order``            nested lock acquisitions follow the canonical
                          order *derived* from the project-wide
                          acquisition graph
``async-safety``          no blocking calls directly inside
                          ``async def`` — route through an executor
``picklability``          exceptions/objects crossing the shard-pool
                          boundary reconstruct from positional args
``frozen-mutation``       no post-``__init__`` assignment on frozen
                          request/plan/result types
``api-surface``           ``__all__`` exports exist and are documented;
                          examples track the live registries
``lock-cycle``            the interprocedural lock-acquisition graph
                          has no cycle (any cycle = possible deadlock)
``determinism``           replay-reachable modules read no wall clocks,
                          unseeded randomness, or ordered set iteration
``exception-contract``    code reachable from ``__all__`` raises only
                          ``ReproError`` subclasses; docstring
                          ``Raises`` sections match reality
``wire-schema``           ``encodes=``/``decodes=`` codec functions
                          cover their schema classes field-for-field
========================  ==============================================

Run it as ``python -m repro.lint`` (CI's ``lint`` job does, failing on
any non-baselined finding) or via :func:`run_lint`; tier-1 enforces a
clean tree through ``tests/test_lint_self.py``. Findings are silenced
per line with ``# lint: disable=<rule>`` or grandfathered in
``lint-baseline.json``; suppressions that stop silencing anything are
reported as *stale* (:class:`~repro.lint.engine.StaleSuppression`).
Reports render as JSON (``--json``) or SARIF 2.1.0 (``--sarif``) — see
``docs/guides/static-analysis.md`` for the full workflow.
"""

from .baseline import Baseline
from .engine import (
    DEFAULT_TARGETS,
    LintEngine,
    LintReport,
    StaleSuppression,
    run_lint,
)
from .findings import Finding
from .project import ProjectModel
from .rules import (
    ProjectRule,
    Rule,
    available_rules,
    create_rules,
    register_rule,
    rule_descriptions,
)
from .sarif import report_to_sarif
from .source import SourceFile

__all__ = [
    "Baseline",
    "DEFAULT_TARGETS",
    "Finding",
    "LintEngine",
    "LintReport",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "StaleSuppression",
    "available_rules",
    "create_rules",
    "register_rule",
    "report_to_sarif",
    "rule_descriptions",
    "run_lint",
]
