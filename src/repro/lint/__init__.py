"""Project-specific static analysis for the repro serving stack.

The serving layers (PRs 3–5) each shipped with a hand-found bug of a
*mechanically detectable* class: an unpicklable exception killing the
shard worker pool, a thread-unsafe result cache, a blocking call
reachable from a coroutine. This package turns those invariants into
enforced tooling — an AST-based rule engine
(:class:`~repro.lint.engine.LintEngine`) with six project-specific
checkers:

========================  ==============================================
``lock-guard``            ``# guarded-by: <lock>`` attributes only
                          touched under ``with self.<lock>``
``lock-order``            nested lock acquisitions follow the canonical
                          ``_state_cv → _serve_lock → _lock`` order
``async-safety``          no blocking calls directly inside
                          ``async def`` — route through an executor
``picklability``          exceptions/objects crossing the shard-pool
                          boundary reconstruct from positional args
``frozen-mutation``       no post-``__init__`` assignment on frozen
                          request/plan/result types
``api-surface``           ``__all__`` exports exist and are documented;
                          examples track the live registries
========================  ==============================================

Run it as ``python -m repro.lint`` (CI's ``lint`` job does, failing on
any non-baselined finding) or via :func:`run_lint`; tier-1 enforces a
clean tree through ``tests/test_lint_self.py``. Findings are silenced
per line with ``# lint: disable=<rule>`` or grandfathered in
``lint-baseline.json`` — see ``docs/guides/static-analysis.md`` for the
full workflow.
"""

from .baseline import Baseline
from .engine import DEFAULT_TARGETS, LintEngine, LintReport, run_lint
from .findings import Finding
from .rules import (
    Rule,
    available_rules,
    create_rules,
    register_rule,
    rule_descriptions,
)
from .source import SourceFile

__all__ = [
    "Baseline",
    "DEFAULT_TARGETS",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "SourceFile",
    "available_rules",
    "create_rules",
    "register_rule",
    "rule_descriptions",
    "run_lint",
]
