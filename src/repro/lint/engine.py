"""The lint engine: files → rules → suppressions → baseline → report.

:class:`LintEngine` owns the run mechanics every rule shares: walking
the target trees, parsing each file once into a
:class:`~repro.lint.source.SourceFile`, fanning it through the active
rules, and then filtering what fired through the two escape hatches —
inline suppressions (``# lint: disable=<rule>``, function/class-scoped
when placed on the ``def``/``class`` line, or ``disable-file=``) and
the committed baseline. What survives is a *new* violation: the CLI
exits non-zero and CI fails.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .baseline import Baseline, BaselineKey
from .findings import Finding
from .rules import Rule, create_rules
from .source import SourceFile
from .suppress import disabled_rules, file_disabled_rules

#: Directory names never descended into.
SKIP_DIRS = {
    "__pycache__", ".git", ".mypy_cache", ".pytest_cache", "build",
    "dist", "site", ".eggs",
}

#: Default lint targets, relative to the repo root.
DEFAULT_TARGETS = ("src/repro", "examples", "benchmarks")


@dataclass
class LintReport:
    """The outcome of one lint run."""

    #: New violations (fail the run).
    findings: List[Finding] = field(default_factory=list)
    #: Violations excused by the committed baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Violations silenced by inline/file suppressions.
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (ready to delete).
    stale_baseline: List[BaselineKey] = field(default_factory=list)
    #: Files actually parsed and checked.
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no new findings)."""
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly report (the CI artifact payload)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.as_dict() for f in self.findings],
            "baselined": [f.as_dict() for f in self.baselined],
            "suppressed_count": len(self.suppressed),
            "stale_baseline": [list(key) for key in self.stale_baseline],
        }


def _suppression_spans(
    source: SourceFile,
) -> List[Tuple[int, int, Set[str]]]:
    """Body-wide suppressions from ``disable=`` on def/class lines."""
    spans: List[Tuple[int, int, Set[str]]] = []
    if source.tree is None:
        return spans
    for node in ast.walk(source.tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        header_end = node.body[0].lineno if node.body else node.lineno
        rules: Set[str] = set()
        for line in range(node.lineno, header_end + 1):
            rules |= disabled_rules(source.comment_on(line))
        if rules:
            end = getattr(node, "end_lineno", None) or header_end
            spans.append((node.lineno, end, rules))
    return spans


class LintEngine:
    """Run a set of rules over files, honoring suppressions + baseline."""

    def __init__(self, rules: Optional[Sequence[str]] = None,
                 baseline: Optional[Baseline] = None,
                 root: Optional[Path] = None) -> None:
        self.rules: List[Rule] = create_rules(rules)
        self.baseline = baseline if baseline is not None else Baseline()
        #: Paths in findings are reported relative to this root.
        self.root = (root or Path.cwd()).resolve()

    # ------------------------------------------------------------------
    # File discovery
    # ------------------------------------------------------------------
    def discover(self, targets: Iterable[Union[str, Path]]) -> List[Path]:
        """Every ``.py`` file under the targets, sorted, deduplicated."""
        files: Set[Path] = set()
        for target in targets:
            path = Path(target)
            if not path.is_absolute():
                path = self.root / path
            if path.is_file() and path.suffix == ".py":
                files.add(path.resolve())
            elif path.is_dir():
                for candidate in path.rglob("*.py"):
                    if not SKIP_DIRS.intersection(candidate.parts):
                        files.add(candidate.resolve())
        return sorted(files)

    def _rel_path(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check_source(self, source: SourceFile) -> List[Finding]:
        """Raw findings for one parsed file (suppressions not applied)."""
        if source.tree is None:
            error = source.error
            line = error.lineno if error and error.lineno else 1
            detail = error.msg if error else "unparseable file"
            return [Finding(
                rule="syntax", path=source.rel_path, line=line,
                message=f"file does not parse: {detail}",
            )]
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check(source))
        return findings

    def _apply_suppressions(
        self, source: SourceFile, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        file_disabled = file_disabled_rules(source.comments)
        spans = _suppression_spans(source)
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            rules_here = disabled_rules(source.comment_on(finding.line))
            silenced = (
                finding.rule in file_disabled
                or "ALL" in file_disabled
                or finding.rule in rules_here
                or "ALL" in rules_here
                or any(
                    start <= finding.line <= end
                    and (finding.rule in rules or "ALL" in rules)
                    for start, end, rules in spans
                )
            )
            (suppressed if silenced else kept).append(finding)
        return kept, suppressed

    def run(self, targets: Optional[Iterable[Union[str, Path]]] = None,
            ) -> LintReport:
        """Lint the targets (the repo defaults when none are given)."""
        if targets is None:
            targets = [
                target for target in DEFAULT_TARGETS
                if (self.root / target).exists()
            ]
        report = LintReport()
        for path in self.discover(targets):
            source = SourceFile.load(path, self._rel_path(path))
            report.files_checked += 1
            raw = self.check_source(source)
            kept, suppressed = self._apply_suppressions(source, raw)
            report.suppressed.extend(suppressed)
            for finding in sorted(kept, key=lambda f: (f.line, f.rule)):
                if self.baseline.consume(finding):
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
        report.stale_baseline = self.baseline.stale_keys()
        return report


def run_lint(targets: Optional[Iterable[Union[str, Path]]] = None, *,
             rules: Optional[Sequence[str]] = None,
             baseline_path: Optional[Union[str, Path]] = None,
             root: Optional[Union[str, Path]] = None) -> LintReport:
    """One-call lint run: the programmatic equivalent of the CLI.

    Examples
    --------
    >>> from repro.lint import run_lint
    >>> report = run_lint(["src/repro/lint"])   # doctest: +SKIP
    >>> report.ok                               # doctest: +SKIP
    True
    """
    root_path = Path(root).resolve() if root is not None else Path.cwd()
    baseline = (
        Baseline.load(baseline_path) if baseline_path is not None
        else Baseline()
    )
    engine = LintEngine(rules=rules, baseline=baseline, root=root_path)
    return engine.run(targets)
