"""The lint engine: files → rules → suppressions → baseline → report.

:class:`LintEngine` owns the run mechanics every rule shares: walking
the target trees, parsing each file once into a
:class:`~repro.lint.source.SourceFile`, fanning it through the active
per-file rules, building the run's single
:class:`~repro.lint.project.ProjectModel` and fanning *that* through
the project rules, and then filtering everything that fired through
the two escape hatches — inline suppressions (``# lint:
disable=<rule>``, function/class-scoped when placed on the
``def``/``class`` line, or ``disable-file=``) and the committed
baseline. What survives is a *new* violation: the CLI exits non-zero
and CI fails.

Suppressions are audited, not just honored: every ``disable=`` /
``disable-file=`` comment (and every ``holds-lock=`` contract) that
silenced nothing this run is reported as **stale**, mirroring the
stale-baseline report, so escape hatches rot visibly instead of
silently.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .baseline import Baseline, BaselineKey
from .findings import Finding
from .project import ProjectModel
from .rules import ProjectRule, Rule, available_rules, create_rules
from .source import SourceFile
from .suppress import disabled_rules, file_disabled_rules, holds_lock_lines

#: Directory names never descended into.
SKIP_DIRS = {
    "__pycache__", ".git", ".mypy_cache", ".pytest_cache", "build",
    "dist", "site", ".eggs",
}

#: Default lint targets, relative to the repo root.
DEFAULT_TARGETS = ("src/repro", "examples", "benchmarks")


@dataclass
class StaleSuppression:
    """One suppression comment that no longer silences anything."""

    #: Repo-relative path of the file carrying the comment.
    path: str
    #: Line the comment sits on.
    line: int
    #: The comment text itself.
    comment: str

    def render(self) -> str:
        """One-line terminal rendering."""
        return (
            f"{self.path}:{self.line}: stale suppression "
            f"({self.comment.strip()})"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering."""
        return {"path": self.path, "line": self.line,
                "comment": self.comment}


@dataclass
class LintReport:
    """The outcome of one lint run."""

    #: New violations (fail the run).
    findings: List[Finding] = field(default_factory=list)
    #: Violations excused by the committed baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Violations silenced by inline/file suppressions.
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (ready to delete).
    stale_baseline: List[BaselineKey] = field(default_factory=list)
    #: Suppression comments that silenced nothing (ready to delete).
    stale_suppressions: List[StaleSuppression] = field(
        default_factory=list
    )
    #: Files actually parsed and checked.
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no new findings)."""
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly report (the CI artifact payload)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.as_dict() for f in self.findings],
            "baselined": [f.as_dict() for f in self.baselined],
            "suppressed_count": len(self.suppressed),
            "stale_baseline": [list(key) for key in self.stale_baseline],
            "stale_suppressions": [
                s.as_dict() for s in self.stale_suppressions
            ],
        }


def _suppression_spans(
    source: SourceFile,
) -> List[Tuple[int, int, Set[str], Tuple[int, ...]]]:
    """Body-wide suppressions from ``disable=`` on def/class lines.

    Each span carries the comment lines that declared it, so the
    engine can credit those comments when the span silences a finding.
    """
    spans: List[Tuple[int, int, Set[str], Tuple[int, ...]]] = []
    if source.tree is None:
        return spans
    for node in ast.walk(source.tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        header_end = node.body[0].lineno if node.body else node.lineno
        rules: Set[str] = set()
        comment_lines: List[int] = []
        for line in range(node.lineno, header_end + 1):
            named = disabled_rules(source.comment_on(line))
            if named:
                rules |= named
                comment_lines.append(line)
        if rules:
            end = getattr(node, "end_lineno", None) or header_end
            spans.append((node.lineno, end, rules, tuple(comment_lines)))
    return spans


class LintEngine:
    """Run a set of rules over files, honoring suppressions + baseline."""

    def __init__(self, rules: Optional[Sequence[str]] = None,
                 baseline: Optional[Baseline] = None,
                 root: Optional[Path] = None) -> None:
        self.rules: List[Rule] = create_rules(rules)
        self.baseline = baseline if baseline is not None else Baseline()
        #: Paths in findings are reported relative to this root.
        self.root = (root or Path.cwd()).resolve()

    # ------------------------------------------------------------------
    # File discovery
    # ------------------------------------------------------------------
    def discover(self, targets: Iterable[Union[str, Path]]) -> List[Path]:
        """Every ``.py`` file under the targets, sorted, deduplicated."""
        files: Set[Path] = set()
        for target in targets:
            path = Path(target)
            if not path.is_absolute():
                path = self.root / path
            if path.is_file() and path.suffix == ".py":
                files.add(path.resolve())
            elif path.is_dir():
                for candidate in path.rglob("*.py"):
                    if not SKIP_DIRS.intersection(candidate.parts):
                        files.add(candidate.resolve())
        return sorted(files)

    def _rel_path(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    @property
    def file_rules(self) -> List[Rule]:
        """The active per-file rules."""
        return [r for r in self.rules if not isinstance(r, ProjectRule)]

    @property
    def project_rules(self) -> List[ProjectRule]:
        """The active whole-program rules."""
        return [r for r in self.rules if isinstance(r, ProjectRule)]

    def check_source(self, source: SourceFile,
                     rules: Optional[Sequence[Rule]] = None,
                     ) -> List[Finding]:
        """Raw findings for one parsed file (suppressions not applied)."""
        if source.tree is None:
            error = source.error
            line = error.lineno if error and error.lineno else 1
            detail = error.msg if error else "unparseable file"
            return [Finding(
                rule="syntax", path=source.rel_path, line=line,
                message=f"file does not parse: {detail}",
            )]
        findings: List[Finding] = []
        for rule in (self.file_rules if rules is None else rules):
            findings.extend(rule.check(source))
        return findings

    def _apply_suppressions(
        self, source: SourceFile, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding], Set[int]]:
        """Split findings into (kept, suppressed, used comment lines)."""
        file_disabled: Dict[str, List[int]] = {}
        for line, comment in source.comments.items():
            for rule_name in file_disabled_rules({line: comment}):
                file_disabled.setdefault(rule_name, []).append(line)
        spans = _suppression_spans(source)
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        used: Set[int] = set()
        for finding in findings:
            credited: Set[int] = set()
            for rule_name in (finding.rule, "ALL"):
                credited.update(file_disabled.get(rule_name, ()))
            rules_here = disabled_rules(source.comment_on(finding.line))
            if finding.rule in rules_here or "ALL" in rules_here:
                credited.add(finding.line)
            for start, end, rules, comment_lines in spans:
                if start <= finding.line <= end \
                        and (finding.rule in rules or "ALL" in rules):
                    credited.update(comment_lines)
            if credited:
                used |= credited
                suppressed.append(finding)
            else:
                kept.append(finding)
        return kept, suppressed, used

    def _stale_suppressions(
        self, source: SourceFile, used: Set[int]
    ) -> List[StaleSuppression]:
        """Suppression comments in ``source`` that silenced nothing.

        A comment is only reported stale when every rule it names was
        active this run (``ALL`` requires the full registry), so a
        partial ``--rules`` run never flags comments it could not have
        exercised.
        """
        active = {rule.name for rule in self.rules}
        all_active = set(available_rules()) <= active
        stale: List[StaleSuppression] = []
        for line, comment in sorted(source.comments.items()):
            if line in used:
                continue
            named = disabled_rules(comment) \
                | file_disabled_rules({line: comment})
            if not named:
                continue
            if "ALL" in named and not all_active:
                continue
            if not (named - {"ALL"}) <= active:
                continue
            stale.append(StaleSuppression(source.rel_path, line, comment))
        if "lock-guard" in active:
            for line, lock in sorted(
                holds_lock_lines(source.comments).items()
            ):
                if line not in source.marker_uses:
                    stale.append(
                        StaleSuppression(source.rel_path, line,
                                         source.comments[line])
                    )
        stale.sort(key=lambda s: s.line)
        return stale

    def run(self, targets: Optional[Iterable[Union[str, Path]]] = None,
            ) -> LintReport:
        """Lint the targets (the repo defaults when none are given)."""
        if targets is None:
            targets = [
                target for target in DEFAULT_TARGETS
                if (self.root / target).exists()
            ]
        report = LintReport()
        sources = [
            SourceFile.load(path, self._rel_path(path))
            for path in self.discover(targets)
        ]
        report.files_checked = len(sources)
        per_file: Dict[str, List[Finding]] = {}
        for source in sources:
            per_file[source.rel_path] = self.check_source(source)
        project_rules = self.project_rules
        if project_rules:
            model = ProjectModel.build(
                [s for s in sources if s.tree is not None]
            )
            for rule in project_rules:
                for finding in rule.check_project(model):
                    per_file.setdefault(finding.path, []).append(finding)
        for source in sources:
            raw = per_file.get(source.rel_path, [])
            kept, suppressed, used = self._apply_suppressions(source, raw)
            report.suppressed.extend(suppressed)
            report.stale_suppressions.extend(
                self._stale_suppressions(source, used)
            )
            for finding in sorted(kept, key=lambda f: (f.line, f.rule)):
                if self.baseline.consume(finding):
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
        report.stale_baseline = self.baseline.stale_keys()
        return report


def run_lint(targets: Optional[Iterable[Union[str, Path]]] = None, *,
             rules: Optional[Sequence[str]] = None,
             baseline_path: Optional[Union[str, Path]] = None,
             root: Optional[Union[str, Path]] = None) -> LintReport:
    """One-call lint run: the programmatic equivalent of the CLI.

    Examples
    --------
    >>> from repro.lint import run_lint
    >>> report = run_lint(["src/repro/lint"])   # doctest: +SKIP
    >>> report.ok                               # doctest: +SKIP
    True
    """
    root_path = Path(root).resolve() if root is not None else Path.cwd()
    baseline = (
        Baseline.load(baseline_path) if baseline_path is not None
        else Baseline()
    )
    engine = LintEngine(rules=rules, baseline=baseline, root=root_path)
    return engine.run(targets)
