"""SARIF 2.1.0 rendering of a lint report.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-scanning UIs ingest: one ``run`` per tool, a rule catalog
under ``tool.driver.rules``, and one ``result`` per finding pointing at
an artifact location. Emitting it lets the CI lint job upload the same
report both as the human-readable JSON artifact and as a scanner
annotation source, without a second lint pass.

Mapping choices:

* new findings are ``level: error`` (they fail the run);
* baselined findings are ``level: note`` and carry an ``external``
  suppression, so viewers show them greyed-out instead of hiding the
  debt entirely;
* stale baseline entries and stale suppression comments become tool
  execution notifications — they are about the *configuration*, not
  about any code region, so they must not appear as results.

Paths are emitted relative to the lint root via the ``SRCROOT``
uri-base, which is what keeps the file portable across checkouts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from .engine import LintReport
from .findings import Finding
from .rules import rule_descriptions

#: The SARIF spec version this module emits.
SARIF_VERSION = "2.1.0"
#: Canonical schema URI for :data:`SARIF_VERSION`.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_catalog() -> List[Dict[str, object]]:
    return [
        {
            "id": name,
            "shortDescription": {"text": description},
        }
        for name, description in rule_descriptions().items()
    ]


def _result(finding: Finding, level: str,
            baselined: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": level,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {"startLine": finding.line},
            },
        }],
    }
    if finding.symbol:
        result["partialFingerprints"] = {"symbol": finding.symbol}
    if baselined:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "grandfathered in lint-baseline.json",
        }]
    return result


def report_to_sarif(report: LintReport, root: Path) -> Dict[str, object]:
    """The full SARIF log object for one lint run (JSON-serializable)."""
    results = [_result(f, "error", baselined=False)
               for f in report.findings]
    results += [_result(f, "note", baselined=True)
                for f in report.baselined]
    notifications: List[Dict[str, object]] = []
    for key in report.stale_baseline:
        notifications.append({
            "level": "warning",
            "message": {
                "text": (
                    f"stale baseline entry (fix landed? delete it): "
                    f"rule={key[0]} path={key[1]} symbol={key[2]}"
                ),
            },
        })
    for stale in report.stale_suppressions:
        notifications.append({
            "level": "warning",
            "message": {"text": stale.render()},
        })
    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": "repro.lint",
                "informationUri":
                    "https://example.invalid/repro/docs/guides/"
                    "static-analysis",
                "rules": _rule_catalog(),
            },
        },
        "originalUriBaseIds": {
            "SRCROOT": {"uri": root.resolve().as_uri() + "/"},
        },
        "columnKind": "unicodeCodePoints",
        "results": results,
    }
    if notifications:
        run["invocations"] = [{
            "executionSuccessful": report.ok,
            "toolExecutionNotifications": notifications,
        }]
    else:
        run["invocations"] = [{"executionSuccessful": report.ok}]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
