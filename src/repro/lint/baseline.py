"""The committed baseline: grandfathered findings that do not fail CI.

A baseline lets a new rule land *enforcing* — the debt it discovered is
frozen into ``lint-baseline.json`` at adoption time and burned down
separately, while every **new** violation fails immediately. Entries
match on ``(rule, path, symbol, message)`` — no line numbers, so
unrelated edits do not churn the file — and matching is *consuming*:
one baseline entry excuses one finding, and entries that no longer
match anything are reported as stale so the file shrinks monotonically.

The project's own baseline is empty by policy for the concurrency
rules (lock-guard, async-safety, picklability, frozen-mutation):
real findings in those classes get fixed, not grandfathered
(``tests/test_lint_self.py`` enforces this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import MatchingError
from .findings import Finding

#: The baseline identity of one finding.
BaselineKey = Tuple[str, str, str, str]


@dataclass
class Baseline:
    """Grandfathered findings, keyed like :attr:`Finding.key`."""

    #: Remaining un-consumed entry counts by key.
    entries: Dict[BaselineKey, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise MatchingError(
                f"baseline file {path} is not valid JSON: {exc}"
            ) from exc
        entries: Dict[BaselineKey, int] = {}
        for item in payload.get("findings", []):
            key = (
                str(item.get("rule", "")),
                str(item.get("path", "")),
                str(item.get("symbol", "")),
                str(item.get("message", "")),
            )
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        """A baseline grandfathering exactly ``findings``."""
        entries: Dict[BaselineKey, int] = {}
        for finding in findings:
            entries[finding.key] = entries.get(finding.key, 0) + 1
        return cls(entries=entries)

    def consume(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered (uses up one entry)."""
        remaining = self.entries.get(finding.key, 0)
        if remaining <= 0:
            return False
        self.entries[finding.key] = remaining - 1
        return True

    def stale_keys(self) -> List[BaselineKey]:
        """Entries that matched nothing this run (candidates to delete)."""
        return sorted(
            key for key, count in self.entries.items() if count > 0
        )

    @staticmethod
    def save(path: Union[str, Path], findings: List[Finding]) -> None:
        """Write ``findings`` as the new baseline file (sorted, stable)."""
        items = sorted(
            (
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "symbol": finding.symbol,
                    "message": finding.message,
                }
                for finding in findings
            ),
            key=lambda item: (
                item["rule"], item["path"], item["symbol"], item["message"]
            ),
        )
        Path(path).write_text(
            json.dumps({"findings": items}, indent=2) + "\n",
            encoding="utf-8",
        )
