"""One parsed source file, shared by every rule.

A :class:`SourceFile` bundles what a rule needs — the AST, the raw
lines, and the comment map — so each file is read, tokenized, and
parsed exactly once per lint run regardless of how many rules inspect
it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from .suppress import extract_comments


@dataclass
class SourceFile:
    """A parsed module plus the side-channel data rules consume."""

    #: Absolute path on disk.
    path: Path
    #: Repo-relative posix path — what findings and baselines carry.
    rel_path: str
    #: Full source text.
    text: str
    #: Parsed module (``None`` when the file does not parse).
    tree: Optional[ast.Module]
    #: ``{line: comment}`` map (tokenize-accurate).
    comments: Dict[int, str] = field(default_factory=dict)
    #: The syntax error, when ``tree`` is ``None``.
    error: Optional[SyntaxError] = None
    #: Comment lines whose marker (``holds-lock=``) actually excused an
    #: access this run — rules record uses here so the engine can
    #: report markers that no longer earn their keep as stale.
    marker_uses: Set[int] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path, rel_path: str) -> "SourceFile":
        """Read, tokenize, and parse one file (never raises on bad code)."""
        text = path.read_text(encoding="utf-8")
        tree: Optional[ast.Module] = None
        error: Optional[SyntaxError] = None
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            error = exc
        return cls(
            path=path, rel_path=rel_path, text=text, tree=tree,
            comments=extract_comments(text), error=error,
        )

    def comment_on(self, line: int) -> str:
        """The comment on ``line`` ('' when there is none)."""
        return self.comments.get(line, "")

    def comments_in(self, first: int, last: int) -> List[str]:
        """Comments on lines ``first..last`` inclusive, in order."""
        return [
            self.comments[line]
            for line in range(first, last + 1)
            if line in self.comments
        ]

    @property
    def is_example(self) -> bool:
        """Whether this file lives under an ``examples/`` directory."""
        return "examples" in Path(self.rel_path).parts
