"""Comment parsing: suppressions and in-source lint markers.

The analyzer is driven by the AST, but three pieces of its contract
live in comments (which the AST does not carry):

* ``# lint: disable=rule-a,rule-b`` — suppress those rules' findings on
  this line; on a ``def``/``class`` line, for the whole body;
* ``# lint: disable-file=rule-a`` — suppress for the entire file;
* markers that *feed* rules — ``# guarded-by: <lock>`` (lock-guard),
  ``# lint: holds-lock=<lock>`` (lock-guard: callers hold the lock),
  ``# lint: frozen`` (frozen-mutation), ``# lint: pickled``
  (picklability).

This module extracts comments with :mod:`tokenize` (so strings that
merely *contain* a ``#`` never count) and exposes the small parsers the
engine and rules share.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Set

#: ``lint: disable=a,b`` (set ``ALL`` to silence every rule).
_DISABLE_RE = re.compile(r"lint:\s*disable\s*=\s*([\w\-,\s]+)")
#: ``lint: disable-file=a,b`` — file-scoped suppression.
_DISABLE_FILE_RE = re.compile(r"lint:\s*disable-file\s*=\s*([\w\-,\s]+)")
#: ``guarded-by: <lock>`` — attribute-to-lock annotation.
_GUARDED_RE = re.compile(r"guarded-by:\s*([A-Za-z_]\w*)")
#: ``lint: holds-lock=<lock>`` — the enclosing callable runs under it.
_HOLDS_RE = re.compile(r"lint:\s*holds-lock\s*=\s*([A-Za-z_]\w*)")
#: ``lint: frozen`` — the class is immutable after construction.
_FROZEN_RE = re.compile(r"lint:\s*frozen\b")
#: ``lint: pickled`` — instances cross a process boundary.
_PICKLED_RE = re.compile(r"lint:\s*pickled\b")


def extract_comments(text: str) -> Dict[int, str]:
    """``{line: comment text}`` for every comment in ``text``.

    Tolerates tokenization failures (the engine reports the syntax
    error separately) by returning what was collected so far.
    """
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass
    return comments


def _split_rules(blob: str) -> Set[str]:
    return {part.strip() for part in blob.split(",") if part.strip()}


def disabled_rules(comment: str) -> Set[str]:
    """Rule names suppressed by one line's comment (``ALL`` = every rule)."""
    match = _DISABLE_RE.search(comment)
    return _split_rules(match.group(1)) if match else set()


def file_disabled_rules(comments: Dict[int, str]) -> Set[str]:
    """Rule names suppressed for the whole file."""
    disabled: Set[str] = set()
    for comment in comments.values():
        match = _DISABLE_FILE_RE.search(comment)
        if match:
            disabled |= _split_rules(match.group(1))
    return disabled


def guarded_lock(comment: str) -> Optional[str]:
    """The lock name of a ``guarded-by:`` annotation, if present."""
    match = _GUARDED_RE.search(comment)
    return match.group(1) if match else None


def held_locks(comments: Dict[int, str], lines: Iterable[int]) -> List[str]:
    """Locks declared held (``holds-lock=``) on any of ``lines``."""
    held = []
    for line in lines:
        comment = comments.get(line)
        if comment:
            match = _HOLDS_RE.search(comment)
            if match:
                held.append(match.group(1))
    return held


def marked_frozen(comment: str) -> bool:
    """Whether a ``lint: frozen`` marker is present."""
    return bool(_FROZEN_RE.search(comment))


def marked_pickled(comment: str) -> bool:
    """Whether a ``lint: pickled`` marker is present."""
    return bool(_PICKLED_RE.search(comment))
