"""Comment parsing: suppressions and in-source lint markers.

The analyzer is driven by the AST, but three pieces of its contract
live in comments (which the AST does not carry):

* ``# lint: disable=rule-a,rule-b`` — suppress those rules' findings on
  this line; on a ``def``/``class`` line, for the whole body;
* ``# lint: disable-file=rule-a`` — suppress for the entire file;
* markers that *feed* rules — ``# guarded-by: <lock>`` (lock-guard),
  ``# lint: holds-lock=<lock>`` (lock-guard: callers hold the lock),
  ``# lint: frozen`` (frozen-mutation), ``# lint: pickled``
  (picklability), ``# lint: replay-root`` (determinism: treat this
  module as a replay entry point), ``# lint: encodes=Type[,...]`` /
  ``decodes=Type[,...]`` with an optional ``extra=key[,...]`` tail
  (wire-schema: this function serializes those schema classes), and
  ``# wire: key[,...]`` on a schema field line (wire-schema: the keys
  that field travels under).

This module extracts comments with :mod:`tokenize` (so strings that
merely *contain* a ``#`` never count) and exposes the small parsers the
engine and rules share.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: ``lint: disable=a,b`` (set ``ALL`` to silence every rule).
_DISABLE_RE = re.compile(r"lint:\s*disable\s*=\s*([\w\-,\s]+)")
#: ``lint: disable-file=a,b`` — file-scoped suppression.
_DISABLE_FILE_RE = re.compile(r"lint:\s*disable-file\s*=\s*([\w\-,\s]+)")
#: ``guarded-by: <lock>`` — attribute-to-lock annotation.
_GUARDED_RE = re.compile(r"guarded-by:\s*([A-Za-z_]\w*)")
#: ``lint: holds-lock=<lock>`` — the enclosing callable runs under it.
_HOLDS_RE = re.compile(r"lint:\s*holds-lock\s*=\s*([A-Za-z_]\w*)")
#: ``lint: frozen`` — the class is immutable after construction.
_FROZEN_RE = re.compile(r"lint:\s*frozen\b")
#: ``lint: pickled`` — instances cross a process boundary.
_PICKLED_RE = re.compile(r"lint:\s*pickled\b")
#: ``lint: replay-root`` — determinism treats this module as a root.
_REPLAY_ROOT_RE = re.compile(r"lint:\s*replay-root\b")
#: ``lint: encodes=TypeA,TypeB extra=k1,k2`` — a wire encoder.
_ENCODES_RE = re.compile(
    r"lint:\s*encodes\s*=\s*([\w.,]+)(?:\s+extra\s*=\s*([\w.,]+))?"
)
#: ``lint: decodes=TypeA,TypeB extra=k1,k2`` — a wire decoder.
_DECODES_RE = re.compile(
    r"lint:\s*decodes\s*=\s*([\w.,]+)(?:\s+extra\s*=\s*([\w.,]+))?"
)
#: ``wire: key1,key2`` — the wire keys a schema field travels under.
_WIRE_RE = re.compile(r"wire:\s*([\w,]+)")


def extract_comments(text: str) -> Dict[int, str]:
    """``{line: comment text}`` for every comment in ``text``.

    Tolerates tokenization failures (the engine reports the syntax
    error separately) by returning what was collected so far.
    """
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass
    return comments


def _split_rules(blob: str) -> Set[str]:
    return {part.strip() for part in blob.split(",") if part.strip()}


def disabled_rules(comment: str) -> Set[str]:
    """Rule names suppressed by one line's comment (``ALL`` = every rule)."""
    match = _DISABLE_RE.search(comment)
    return _split_rules(match.group(1)) if match else set()


def file_disabled_rules(comments: Dict[int, str]) -> Set[str]:
    """Rule names suppressed for the whole file."""
    disabled: Set[str] = set()
    for comment in comments.values():
        match = _DISABLE_FILE_RE.search(comment)
        if match:
            disabled |= _split_rules(match.group(1))
    return disabled


def guarded_lock(comment: str) -> Optional[str]:
    """The lock name of a ``guarded-by:`` annotation, if present."""
    match = _GUARDED_RE.search(comment)
    return match.group(1) if match else None


def held_locks(comments: Dict[int, str], lines: Iterable[int]) -> List[str]:
    """Locks declared held (``holds-lock=``) on any of ``lines``."""
    held = []
    for line in lines:
        comment = comments.get(line)
        if comment:
            match = _HOLDS_RE.search(comment)
            if match:
                held.append(match.group(1))
    return held


def held_locks_with_lines(
    comments: Dict[int, str], lines: Iterable[int]
) -> Dict[str, int]:
    """``{lock: comment line}`` for ``holds-lock=`` markers on ``lines``.

    The line-aware variant of :func:`held_locks`, used by the engine's
    stale-suppression pass: lock-guard credits the specific comment
    line whose marker actually excused an access.
    """
    held: Dict[str, int] = {}
    for line in lines:
        comment = comments.get(line)
        if comment:
            match = _HOLDS_RE.search(comment)
            if match and match.group(1) not in held:
                held[match.group(1)] = line
    return held


def holds_lock_lines(comments: Dict[int, str]) -> Dict[int, str]:
    """``{line: lock}`` for every ``holds-lock=`` comment in the file."""
    found: Dict[int, str] = {}
    for line, comment in comments.items():
        match = _HOLDS_RE.search(comment)
        if match:
            found[line] = match.group(1)
    return found


def marked_frozen(comment: str) -> bool:
    """Whether a ``lint: frozen`` marker is present."""
    return bool(_FROZEN_RE.search(comment))


def marked_pickled(comment: str) -> bool:
    """Whether a ``lint: pickled`` marker is present."""
    return bool(_PICKLED_RE.search(comment))


def marked_replay_root(comment: str) -> bool:
    """Whether a ``lint: replay-root`` marker is present."""
    return bool(_REPLAY_ROOT_RE.search(comment))


def _split_names(blob: str) -> Tuple[str, ...]:
    return tuple(part.strip() for part in blob.split(",") if part.strip())


def wire_marker(
    comment: str,
) -> Optional[Tuple[str, Tuple[str, ...], Tuple[str, ...]]]:
    """Parse a wire-schema codec marker from one comment.

    Returns ``(kind, types, extras)`` where ``kind`` is ``"encodes"``
    or ``"decodes"``, or ``None`` when the comment carries no marker.
    """
    for kind, regex in (("encodes", _ENCODES_RE), ("decodes", _DECODES_RE)):
        match = regex.search(comment)
        if match:
            extras = _split_names(match.group(2)) if match.group(2) else ()
            return kind, _split_names(match.group(1)), extras
    return None


def wire_field_keys(comment: str) -> Optional[Tuple[str, ...]]:
    """The ``# wire: a,b`` key aliases on a schema field line, if any."""
    match = _WIRE_RE.search(comment)
    return _split_names(match.group(1)) if match else None
