"""api-surface: the public surface is real, documented, and unrotted.

Three families of drift this rule catches mechanically:

* **exports** — every name in a module's ``__all__`` must actually be
  bound in that module, and every class/function *defined* there and
  exported must carry a docstring (purely from the AST, so fixture
  snippets work offline);
* **live surface** — for the installed :mod:`repro` package itself,
  each ``__all__`` entry must resolve and, when it is a class,
  function, or module, must have a non-empty ``__doc__`` (checked by
  import, because most exports are re-exports the AST cannot follow);
* **examples drift** — files under ``examples/`` are the README's
  executable face: every ``from repro import X`` / ``repro.X`` use must
  resolve against the live package, and string literals passed as
  ``algorithm=`` / ``backend=`` / ``executor=`` keywords must name
  registered algorithms (aliases included), backends, and executors —
  the exact checks that catch a renamed registry entry before a user
  does.

The import-based checks degrade silently when :mod:`repro` is not
importable (linting a checkout without installing it): the AST checks
still run.
"""

from __future__ import annotations

import ast
from types import ModuleType
from typing import Dict, Iterator, List, Optional, Set

from ..findings import Finding
from ..source import SourceFile
from .base import Rule

#: Call keywords validated against a live registry: keyword -> checker.
_REGISTRY_KEYWORDS = ("algorithm", "backend", "executor")


def _module_bindings(tree: ast.Module) -> Optional[Set[str]]:
    """Names bound at module level (``None`` when a star-import hides them)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    return None
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports/defs: collect from every branch.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Import):
                    for alias in sub.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
    return bound


def _exported_names(tree: ast.Module) -> Dict[str, int]:
    """``{exported name: line}`` from a module-level ``__all__`` list."""
    exports: Dict[str, int] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    exports[element.value] = element.lineno
    return exports


def _local_definitions(tree: ast.Module) -> Dict[str, ast.AST]:
    """Module-level class/def nodes by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef))
    }


def _import_repro() -> Optional[ModuleType]:  # pragma: no cover - shim
    try:
        import repro

        return repro
    except Exception:
        return None


class ApiSurfaceRule(Rule):
    """Exports resolve and are documented; examples track the registry."""

    name = "api-surface"
    description = (
        "__all__ exports must exist and carry docstrings; examples "
        "must use live repro names and registered algorithm/backend/"
        "executor strings"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.tree is None:
            return
        yield from self._check_exports(source)
        if source.rel_path.replace("\\", "/").endswith(
            "src/repro/__init__.py"
        ):
            yield from self._check_live_surface(source)
        if source.is_example:
            yield from self._check_example(source)

    # ------------------------------------------------------------------
    # __all__ (pure AST)
    # ------------------------------------------------------------------
    def _check_exports(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        exports = _exported_names(source.tree)
        if not exports:
            return
        bindings = _module_bindings(source.tree)
        definitions = _local_definitions(source.tree)
        for name, line in exports.items():
            if bindings is not None and name not in bindings:
                yield self.finding(
                    source, line,
                    f"__all__ exports {name!r} but the module never "
                    f"binds it",
                    symbol=name,
                )
                continue
            node = definitions.get(name)
            if node is not None and not ast.get_docstring(node):
                kind = (
                    "class" if isinstance(node, ast.ClassDef) else
                    "function"
                )
                yield self.finding(
                    source, node,
                    f"exported {kind} {name!r} has no docstring; every "
                    f"__all__ member is public API and must be "
                    f"documented",
                    symbol=name,
                )

    # ------------------------------------------------------------------
    # The live package surface (import-based)
    # ------------------------------------------------------------------
    def _check_live_surface(self, source: SourceFile) -> Iterator[Finding]:
        repro = _import_repro()
        if repro is None:
            return
        assert source.tree is not None
        exports = _exported_names(source.tree)
        for name, line in exports.items():
            if not hasattr(repro, name):
                yield self.finding(
                    source, line,
                    f"repro.__all__ exports {name!r} but "
                    f"'import repro; repro.{name}' fails",
                    symbol=name,
                )
                continue
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj) or isinstance(
                obj, type(ast)
            ):
                if not (getattr(obj, "__doc__", None) or "").strip():
                    yield self.finding(
                        source, line,
                        f"public export repro.{name} has an empty "
                        f"docstring",
                        symbol=name,
                    )

    # ------------------------------------------------------------------
    # Examples drift (import-based)
    # ------------------------------------------------------------------
    def _check_example(self, source: SourceFile) -> Iterator[Finding]:
        repro = _import_repro()
        if repro is None:
            return
        assert source.tree is not None
        yield from self._check_example_names(source, repro)
        yield from self._check_registry_strings(source, repro)

    def _check_example_names(self, source: SourceFile,
                             repro: ModuleType) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module == "repro" or node.module.startswith("repro.")
            ):
                target = self._resolve_module(node.module)
                if target is None:
                    yield self.finding(
                        source, node,
                        f"example imports missing module "
                        f"{node.module!r}",
                        symbol=node.module,
                    )
                    continue
                for alias in node.names:
                    if alias.name != "*" and not hasattr(
                        target, alias.name
                    ):
                        yield self.finding(
                            source, node,
                            f"example imports {alias.name!r} from "
                            f"{node.module!r}, which does not define it",
                            symbol=f"{node.module}.{alias.name}",
                        )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ) and node.value.id == "repro":
                if not hasattr(repro, node.attr):
                    yield self.finding(
                        source, node,
                        f"example references 'repro.{node.attr}', "
                        f"which the package does not export",
                        symbol=node.attr,
                    )

    @staticmethod
    def _resolve_module(dotted: str) -> Optional[ModuleType]:
        import importlib

        try:
            return importlib.import_module(dotted)
        except Exception:
            return None

    def _check_registry_strings(self, source: SourceFile,
                                repro: ModuleType) -> Iterator[Finding]:
        assert source.tree is not None
        try:
            from repro.engine.config import EXECUTORS
            from repro.engine.registry import algorithm_aliases

            algorithms = set(algorithm_aliases())
            backends = {
                name.lower() for name in repro.available_backends()
            }
            executors = set(EXECUTORS)
        except Exception:  # pragma: no cover - partial installs
            return
        known = {
            "algorithm": algorithms,
            "backend": backends,
            "executor": executors,
        }
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg not in _REGISTRY_KEYWORDS:
                    continue
                value = keyword.value
                if not (isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    continue
                if value.value.strip().lower() not in known[keyword.arg]:
                    registered = ", ".join(sorted(known[keyword.arg]))
                    yield self.finding(
                        source, value,
                        f"example passes {keyword.arg}="
                        f"{value.value!r}, which is not registered "
                        f"(known: {registered})",
                        symbol=f"{keyword.arg}={value.value}",
                    )
