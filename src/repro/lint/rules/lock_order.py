"""lock-order: nested lock acquisitions follow one canonical order.

Deadlock needs two threads acquiring the same two locks in opposite
orders. Earlier versions of this rule hardcoded the serving stack's
hierarchy (``_state_cv → _serve_lock → _lock``); now the canonical
order is **derived** from the project-wide acquisition graph built by
the :class:`~repro.lint.project.ProjectModel` — the linearization
that agrees with as many observed acquisition sites as possible
(:func:`~repro.lint.project.derive_lock_order`). Every acquisition
site running *against* that order is a finding: the minority direction
of any contradiction is what gets flagged, and a graph with no
contradictions produces no findings no matter how many locks exist.

The companion ``lock-cycle`` rule reports each cycle once, as a
whole; this rule pinpoints every individual site on the wrong side of
the derived order, so the fix location is always named.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..project import ProjectModel, derive_lock_order
from .base import ProjectRule


class LockOrderRule(ProjectRule):
    """Flag acquisition sites contradicting the derived lock order."""

    name = "lock-order"
    description = (
        "nested lock acquisitions must follow the canonical order "
        "derived from the project-wide acquisition graph"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        edges = model.lock_graph()
        order = derive_lock_order(edges)
        position = {name: i for i, name in enumerate(order)}
        for (held, acquired), sites in sorted(edges.items()):
            if position[held] <= position[acquired]:
                continue
            for path, line, note in sites:
                yield self.project_finding(
                    path, line,
                    f"acquires '{acquired}' while holding '{held}', "
                    f"against the derived acquisition order "
                    f"({note})",
                    symbol=f"{held}>{acquired}",
                )
