"""lock-order: nested lock acquisitions follow one canonical order.

Deadlock needs two threads acquiring the same two locks in opposite
orders. The serving stack's locks have a canonical hierarchy — the
service-level condition first, then the prepared matching's serve
lock, then leaf locks (result cache, thread pools)::

    _state_cv  →  _serve_lock  →  _lock

This rule flags any ``with`` that *lexically* acquires a later-ranked
lock while an earlier-ranked one is already held in the same function
(re-acquiring the same name is allowed — those are RLocks). It cannot
see acquisitions hidden behind calls, which is exactly why the layering
convention is "leaf locks never call back up the stack"; the lexical
check keeps the visible nesting honest.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Union

from ..findings import Finding
from ..source import SourceFile
from .base import Rule

#: Canonical acquisition order, outermost first. Names not listed are
#: ignored (they are not part of the serving stack's hierarchy).
CANONICAL_ORDER: Tuple[str, ...] = ("_state_cv", "_serve_lock", "_lock")

_AnyWith = Union[ast.With, ast.AsyncWith]
_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _lock_name(expr: ast.expr) -> Optional[str]:
    """The known-lock name acquired by one with-item ('' = not a lock)."""
    name: Optional[str] = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name in CANONICAL_ORDER:
        return name
    return None


class _OrderChecker(ast.NodeVisitor):
    """Tracks the lexically-held lock stack through one module."""

    def __init__(self, rule: "LockOrderRule", source: SourceFile) -> None:
        self.rule = rule
        self.source = source
        self.held: List[str] = []
        self.findings: List[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: _AnyWith) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = _lock_name(item.context_expr)
            if lock is None:
                self.visit(item.context_expr)
                continue
            rank = CANONICAL_ORDER.index(lock)
            for outer in self.held + acquired:
                if outer != lock and CANONICAL_ORDER.index(outer) > rank:
                    self.findings.append(self.rule.finding(
                        self.source, node,
                        f"acquires '{lock}' while holding '{outer}'; "
                        f"the canonical order is "
                        f"{' -> '.join(CANONICAL_ORDER)}",
                        symbol=f"{outer}>{lock}",
                    ))
            acquired.append(lock)
        depth = len(self.held)
        self.held.extend(acquired)
        for statement in node.body:
            self.visit(statement)
        del self.held[depth:]

    def _visit_scope(self, node: _AnyFunc) -> None:
        # A nested callable executes later: its body starts lock-free.
        saved, self.held = self.held, []
        body = node.body if isinstance(node.body, list) else [node.body]
        for statement in body:
            self.visit(statement)
        self.held = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)


class LockOrderRule(Rule):
    """Enforce the canonical nested-acquisition order."""

    name = "lock-order"
    description = (
        "nested 'with <lock>' acquisitions must follow the canonical "
        "order " + " -> ".join(CANONICAL_ORDER)
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.tree is None:
            return
        checker = _OrderChecker(self, source)
        checker.visit(source.tree)
        for finding in checker.findings:
            yield finding
