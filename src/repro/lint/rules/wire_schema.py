"""wire-schema: codec functions cover their schema classes exactly.

The wire formats (``repro/net/codec.py`` frames,
``repro/replay/trace.py`` records) mirror in-memory schema classes —
``MatchingRequest``, ``MatchResult``, the trace dataclasses. Nothing
ties them together at runtime: add a field to the dataclass and the
codec silently drops it, which surfaces as a prod bug three layers
away. This rule makes the mirroring a static contract:

* an encoder/decoder declares its schema classes on its ``def`` line
  with ``# lint: encodes=TypeA,TypeB`` / ``decodes=...``, plus
  ``extra=key,...`` for envelope keys (``kind`` discriminators,
  nested-payload keys) that are not schema fields;
* a schema field whose wire key differs from its name carries
  ``# wire: key[,...]`` on its declaration line;
* then **every field** of every declared class must appear among the
  string keys the function actually reads or writes, and every key
  the function touches must be some declared field's wire key or a
  declared extra — drift fails in both directions;
* a class with an encoder but no decoder anywhere in the project (or
  vice versa) is itself a finding: one-way wire types cannot
  round-trip.

Key extraction is syntactic: dict-literal keys and ``x["key"] = ...``
assignments on the encode side; ``payload["key"]``,
``payload.get("key")``, and helper calls like
``_require(payload, "key", ...)`` on the decode side.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..findings import Finding
from ..project import ClassInfo, ProjectModel, WireMarker
from .base import ProjectRule


def _encoder_keys(node: ast.AST) -> Set[str]:
    """String keys an encoder writes (dict literals + subscripts)."""
    keys: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.slice, ast.Constant) \
                        and isinstance(target.slice.value, str):
                    keys.add(target.slice.value)
    return keys


def _first_param(node: ast.AST) -> Optional[str]:
    args = getattr(node, "args", None)
    if args is None:
        return None
    for arg in list(args.posonlyargs) + list(args.args):
        if arg.arg not in ("self", "cls"):
            return arg.arg
    return None


def _decoder_keys(node: ast.AST, param: str) -> Set[str]:
    """String keys a decoder reads from its payload parameter."""
    keys: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Subscript) \
                and isinstance(child.value, ast.Name) \
                and child.value.id == param \
                and isinstance(child.slice, ast.Constant) \
                and isinstance(child.slice.value, str):
            keys.add(child.slice.value)
        elif isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute) \
                    and func.attr == "get" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == param:
                if child.args and isinstance(child.args[0], ast.Constant) \
                        and isinstance(child.args[0].value, str):
                    keys.add(child.args[0].value)
            elif any(isinstance(a, ast.Name) and a.id == param
                     for a in child.args):
                # Helper call like _require(payload, "key", "context"):
                # the first string literal is the key by convention.
                for arg in child.args:
                    if isinstance(arg, ast.Constant) \
                            and isinstance(arg.value, str):
                        keys.add(arg.value)
                        break
    return keys


class WireSchemaRule(ProjectRule):
    """Schema classes and their wire codecs must match field-for-field."""

    name = "wire-schema"
    description = (
        "wire encoders/decoders (lint: encodes=/decodes= markers) "
        "must cover every field of their schema classes, touch no "
        "undeclared keys, and come in encode/decode pairs"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        by_kind: Dict[str, Dict[str, List[WireMarker]]] = {
            "encodes": {}, "decodes": {},
        }
        for marker in model.wire_markers:
            for type_name in marker.types:
                by_kind[marker.kind].setdefault(
                    type_name, []
                ).append(marker)
        ordered = sorted(
            model.wire_markers,
            key=lambda m: (m.function.path, m.function.line),
        )
        for marker in ordered:
            for finding in self._check_marker(model, marker):
                yield finding
        for kind, other, what in (
            ("encodes", "decodes", "decoder"),
            ("decodes", "encodes", "encoder"),
        ):
            for type_name, markers in sorted(by_kind[kind].items()):
                if type_name in by_kind[other]:
                    continue
                info = markers[0].function
                yield self.project_finding(
                    info.path, info.line,
                    f"'{type_name}' has no {what} anywhere in the "
                    f"project; one-way wire types cannot round-trip",
                    symbol=type_name,
                )

    def _check_marker(self, model: ProjectModel,
                      marker: WireMarker) -> Iterator[Finding]:
        info = marker.function
        verb = "write" if marker.kind == "encodes" else "read"
        if marker.kind == "encodes":
            keys = _encoder_keys(info.node)
        else:
            param = _first_param(info.node)
            if param is None:
                yield self.project_finding(
                    info.path, info.line,
                    f"{info.name} is marked decodes= but takes no "
                    f"payload parameter",
                    symbol=info.name,
                )
                return
            keys = _decoder_keys(info.node, param)
        declared: Set[str] = set(marker.extras)
        for type_name in marker.types:
            resolved = model.resolve_symbol(info.module, type_name)
            if not isinstance(resolved, ClassInfo):
                yield self.project_finding(
                    info.path, info.line,
                    f"{info.name} declares wire type '{type_name}', "
                    f"which is not a class the analyzer can resolve",
                    symbol=info.name,
                )
                continue
            for field_info in resolved.fields.values():
                declared |= set(field_info.wire_keys)
                if not set(field_info.wire_keys) & keys:
                    yield self.project_finding(
                        info.path, info.line,
                        f"{info.name} does not {verb} field "
                        f"'{resolved.name}.{field_info.name}' (wire "
                        f"key{'s' if len(field_info.wire_keys) > 1 else ''} "
                        f"{', '.join(field_info.wire_keys)}): "
                        f"added-field drift",
                        symbol=f"{resolved.name}.{field_info.name}",
                    )
        for key in sorted(keys - declared):
            yield self.project_finding(
                info.path, info.line,
                f"{info.name} {verb}s key '{key}', which is not a "
                f"field of {', '.join(marker.types)} nor a declared "
                f"extra",
                symbol=info.name,
            )
