"""exception-contract: the public surface raises typed errors only.

The library's contract is that everything it raises derives from
:class:`~repro.errors.ReproError`, so callers can catch one base
class. This rule enforces that statically over the whole program:
starting from every name exported via ``__all__`` (following
re-export chains), it walks the resolved call graph and flags any
``raise`` of a builtin exception or of a project class that does not
derive from ``ReproError``. ``NotImplementedError`` is allowed — it
is the idiom for abstract methods, not an error callers handle.

Docstring drift is checked both ways on the exported functions and
public methods themselves: when a docstring carries a ``Raises``
section (numpy or Google style), every documented exception must be
directly raised in that function, and every directly raised, resolved
exception must be documented. Functions without a ``Raises`` section
are not penalized — the section is opt-in, drift is not.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Union

from ..findings import Finding
from ..project import (
    BUILTIN_EXCEPTIONS,
    ClassInfo,
    FunctionInfo,
    ProjectModel,
)
from .base import ProjectRule

#: Builtin raises that are part of Python's own idiom, not the API
#: error contract.
_ALLOWED_BUILTINS = {"NotImplementedError", "StopIteration",
                     "StopAsyncIteration", "KeyboardInterrupt",
                     "SystemExit", "GeneratorExit"}

#: Section headers that terminate a numpy-style Raises block.
_NUMPY_SECTIONS = {
    "Parameters", "Returns", "Yields", "Receives", "Raises", "Warns",
    "Warnings", "See Also", "Notes", "References", "Examples",
    "Attributes", "Methods",
}

_GOOGLE_SECTION_RE = re.compile(
    r"^(Args|Arguments|Returns|Yields|Raises|Attributes|Example|"
    r"Examples|Note|Notes|Warns|Warning)\s*:\s*$"
)

_NAME_RE = re.compile(r"^([A-Za-z_][\w.]*)$")
_GOOGLE_ENTRY_RE = re.compile(r"^\s+([A-Za-z_][\w.]*)\s*:")


def documented_raises(doc: Optional[str]) -> Optional[Set[str]]:
    """Exception names a docstring's ``Raises`` section documents.

    Understands numpy style (``Raises`` underlined with dashes, each
    exception name on its own line) and Google style (``Raises:``
    followed by indented ``Name: description`` entries). Returns
    ``None`` when no ``Raises`` section exists — absence of the
    section is not drift.
    """
    if not doc:
        return None
    lines = doc.splitlines()
    names: Set[str] = set()
    found = False
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == "Raises" and i + 1 < len(lines) \
                and set(lines[i + 1].strip()) == {"-"}:
            found = True
            i += 2
            while i < len(lines):
                line = lines[i]
                text = line.strip()
                if not text:
                    i += 1
                    continue
                if text in _NUMPY_SECTIONS and i + 1 < len(lines) \
                        and set(lines[i + 1].strip()) == {"-"}:
                    break
                match = _NAME_RE.match(text)
                if match and not line[:1].isspace():
                    names.add(match.group(1).split(".")[-1])
                i += 1
            continue
        if _GOOGLE_SECTION_RE.match(stripped) \
                and stripped.startswith("Raises"):
            found = True
            i += 1
            while i < len(lines):
                line = lines[i]
                if line.strip() and not line[:1].isspace():
                    break
                match = _GOOGLE_ENTRY_RE.match(line)
                if match:
                    names.add(match.group(1).split(".")[-1])
                i += 1
            continue
        i += 1
    return names if found else None


class ExceptionContractRule(ProjectRule):
    """Typed errors only on the exported surface; no docstring drift."""

    name = "exception-contract"
    description = (
        "code reachable from any __all__ export may only raise "
        "ReproError subclasses; docstring Raises sections must match "
        "what is actually raised"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        entries = self._entry_functions(model)
        reachable = self._reachable(model, entries)
        reported: Set[tuple] = set()
        for key in sorted(reachable):
            info = model.functions[key]
            for site in info.raises:
                problem = self._classify(model, info, site.name)
                if problem is None:
                    continue
                anchor = (info.path, site.line, site.name)
                if anchor in reported:
                    continue
                reported.add(anchor)
                yield self.project_finding(
                    info.path, site.line, problem,
                    symbol=info.name,
                )
        for info in sorted(entries.values(),
                           key=lambda f: (f.path, f.line)):
            for finding in self._check_docstring(model, info):
                yield finding

    # ------------------------------------------------------------------
    @staticmethod
    def _entry_functions(
        model: ProjectModel,
    ) -> Dict[str, FunctionInfo]:
        entries: Dict[str, FunctionInfo] = {}
        for module in model.modules.values():
            for name in module.exports:
                resolved = model.resolve_symbol(module.name, name)
                if isinstance(resolved, FunctionInfo):
                    entries[resolved.key] = resolved
                elif isinstance(resolved, ClassInfo):
                    for method in resolved.methods.values():
                        entries[method.key] = method
        return entries

    @staticmethod
    def _reachable(model: ProjectModel,
                   entries: Dict[str, FunctionInfo]) -> Set[str]:
        seen: Set[str] = set()
        queue = list(entries)
        while queue:
            key = queue.pop()
            if key in seen:
                continue
            seen.add(key)
            queue.extend(
                call.callee for call in model.call_graph.get(key, [])
                if call.callee not in seen
            )
        return seen

    def _classify(self, model: ProjectModel, info: FunctionInfo,
                  name: str) -> Optional[str]:
        """The violation message for one raised name (None = fine)."""
        resolved = model.resolve_symbol(info.module, name)
        if isinstance(resolved, ClassInfo):
            if model.is_typed_error(resolved):
                return None
            return (
                f"raises {resolved.name}, which does not derive from "
                f"ReproError; the public surface only raises typed "
                f"errors"
            )
        if resolved is None and "." not in name \
                and name in BUILTIN_EXCEPTIONS \
                and name not in _ALLOWED_BUILTINS:
            return (
                f"raises builtin {name} on a path reachable from the "
                f"public __all__ surface; raise a ReproError subclass "
                f"instead"
            )
        return None

    @staticmethod
    def _raised_names(model: ProjectModel,
                      info: FunctionInfo) -> Set[str]:
        """Resolved class names this one function directly raises."""
        raised: Set[str] = set()
        for site in info.raises:
            resolved = model.resolve_symbol(info.module, site.name)
            if isinstance(resolved, ClassInfo):
                raised.add(resolved.name)
            elif resolved is None and "." not in site.name \
                    and site.name in BUILTIN_EXCEPTIONS:
                raised.add(site.name)
        return raised

    def _check_docstring(self, model: ProjectModel,
                         info: FunctionInfo) -> Iterator[Finding]:
        if info.name.split(".")[-1].startswith("_"):
            return
        documented = documented_raises(ast.get_docstring(info.node))
        if documented is None:
            return
        raised = self._raised_names(model, info)
        # A documented exception may be raised anywhere in the call
        # closure (entries usually name what helpers throw); a
        # *direct* raise must be documented. A Raises entry also
        # covers subclasses — it names the contract, not every
        # refinement — so each raised name expands to its ancestors.
        closure_raised: Set[str] = set()
        for key in sorted(self._reachable(model, {info.key: info})):
            closure_raised |= self._raised_names(
                model, model.functions[key]
            )
        covered = set(closure_raised)
        for name in closure_raised:
            covered |= self._ancestor_names(model, info, name)
        for name in sorted(documented - covered):
            yield self.project_finding(
                info.path, info.line,
                f"docstring documents raising {name}, but nothing "
                f"this function calls raises it (stale Raises "
                f"section)",
                symbol=info.name,
            )
        for name in sorted(raised):
            if name in documented or \
                    self._ancestor_names(model, info, name) \
                    & documented:
                continue
            yield self.project_finding(
                info.path, info.line,
                f"raises {name} but the docstring's Raises section "
                f"does not document it",
                symbol=info.name,
            )

    def _ancestor_names(self, model: ProjectModel, info: FunctionInfo,
                        name: str) -> Set[str]:
        """Base-class names of ``name`` as resolvable from ``info``."""
        ancestors: Set[str] = set()
        resolved = model.resolve_symbol(info.module, name)
        queue = [resolved] if isinstance(resolved, ClassInfo) else []
        seen: Set[str] = set()
        while queue:
            cls = queue.pop()
            if cls.key in seen:
                continue
            seen.add(cls.key)
            for base in cls.bases:
                ancestors.add(base.split(".")[-1])
                parent = model.resolve_symbol(cls.module, base)
                if isinstance(parent, ClassInfo):
                    queue.append(parent)
        return ancestors
