"""lock-cycle: the project-wide lock-acquisition graph must be acyclic.

Deadlock needs a cycle: thread 1 holds ``a`` and wants ``b`` while
thread 2 holds ``b`` and wants ``a``. The per-file ``lock-order`` rule
can only police nestings it can see in one function; this rule checks
the property that actually matters — the **interprocedural**
acquisition graph built by the
:class:`~repro.lint.project.ProjectModel` (lexical ``with`` nestings,
``holds-lock=`` contracts, and calls made under a held lock into
functions that transitively acquire another) has **no cycle at all**,
not just no violation of a hardcoded chain.

One finding is reported per strongly connected component, anchored at
the acquisition site that closes the cycle (the first edge running
against the derived canonical order).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..findings import Finding
from ..project import ProjectModel, derive_lock_order, lock_sccs
from .base import ProjectRule


class LockCycleRule(ProjectRule):
    """Report every cycle in the interprocedural lock graph."""

    name = "lock-cycle"
    description = (
        "the interprocedural lock-acquisition graph must be acyclic; "
        "any cycle is a potential deadlock"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        edges = model.lock_graph()
        order = derive_lock_order(edges)
        position = {name: i for i, name in enumerate(order)}
        for component in lock_sccs(edges):
            members = set(component)
            intra = sorted(
                (pair, sites) for pair, sites in edges.items()
                if pair[0] in members and pair[1] in members
            )
            closing = [
                (pair, sites) for pair, sites in intra
                if position[pair[0]] > position[pair[1]]
            ] or intra
            anchor_pair, anchor_sites = min(
                closing, key=lambda e: (e[1][0][0], e[1][0][1])
            )
            path, line, _ = anchor_sites[0]
            cycle = _cycle_through(anchor_pair, intra)
            legs = " -> ".join(cycle)
            yield self.project_finding(
                path, line,
                f"locks can be acquired in a cycle ({legs}): a "
                f"deadlock is possible; break one direction or give "
                f"these locks a single acquisition order",
                symbol=">".join(component),
            )


def _cycle_through(
    pair: Tuple[str, str],
    intra: List[Tuple[Tuple[str, str], object]],
) -> List[str]:
    """A representative cycle using edge ``pair``, as a node walk.

    BFS from the edge's head back to its tail over the component's own
    edges; the component guarantees such a path exists.
    """
    start, target = pair[1], pair[0]
    graph: dict = {}
    for (a, b), _ in intra:
        graph.setdefault(a, []).append(b)
    paths = {start: [start]}
    queue = [start]
    while queue:
        node = queue.pop(0)
        if node == target:
            return [target] + paths[node]
        for succ in sorted(graph.get(node, [])):
            if succ not in paths:
                paths[succ] = paths[node] + [succ]
                queue.append(succ)
    return [target, start, target]
