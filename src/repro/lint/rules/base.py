"""The rule contract: subclass :class:`Rule`, yield :class:`Finding`\\ s.

A rule is a stateless object with a ``name``, a one-line
``description`` (both shown by ``python -m repro.lint --list-rules``),
and a :meth:`Rule.check` generator over one :class:`SourceFile`.
Whole-program checkers subclass :class:`ProjectRule` instead and
implement :meth:`ProjectRule.check_project` over the run's single
:class:`~repro.lint.project.ProjectModel`. Rules never filter their
own output — suppression comments and the baseline are applied
uniformly by the engine — so a rule's job is only to be *right* about
what it reports.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Union

from ..findings import Finding
from ..source import SourceFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project import ProjectModel


class Rule:
    """Base class for one project-specific checker."""

    #: Kebab-case rule identity (used in suppressions and baselines).
    name: str = ""
    #: One-line summary for ``--list-rules`` and the docs catalog.
    description: str = ""

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield every violation of this rule in ``source``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def finding(self, source: SourceFile,
                node: Union[ast.AST, int], message: str,
                symbol: str = "") -> Finding:
        """Build a finding anchored at ``node`` (an AST node or a line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule=self.name, path=source.rel_path, line=line,
            message=message, symbol=symbol,
        )


class ProjectRule(Rule):
    """Base class for whole-program checkers.

    A project rule sees the :class:`~repro.lint.project.ProjectModel`
    the engine builds once per run, instead of one file at a time.
    Findings still anchor to a (path, line) inside some analyzed file,
    so suppressions and the baseline apply exactly as they do for
    per-file rules.
    """

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Project rules have no per-file pass."""
        return iter(())

    def check_project(self, model: "ProjectModel") -> Iterator[Finding]:
        """Yield every violation of this rule across the project."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def project_finding(self, path: str, line: int, message: str,
                        symbol: str = "") -> Finding:
        """Build a finding anchored at a (path, line) in the model."""
        return Finding(
            rule=self.name, path=path, line=line,
            message=message, symbol=symbol,
        )


def attribute_chain(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains ('' for anything else)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_self_attribute(node: ast.AST) -> bool:
    """Whether ``node`` is exactly ``self.<attr>``."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def def_header_lines(node: Union[ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef]) -> range:
    """Line span of a definition's header (def/class line to body start)."""
    body_start = node.body[0].lineno if node.body else node.lineno
    return range(node.lineno, body_start + 1)
