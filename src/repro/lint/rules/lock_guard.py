"""lock-guard: annotated attributes are only touched under their lock.

The serving stack shares mutable counters and pools across threads
(:class:`~repro.engine.service.MatchingService` counters under
``_state_cv``, :class:`~repro.engine.cache.ResultCache` entries under
``_lock``, ...). The discipline is declared in source::

    self._hits = 0          # guarded-by: _state_cv

and this rule enforces it lexically: inside the declaring class, every
``self.<attr>`` read or write of a guarded attribute must appear inside
a ``with self.<lock>:`` block (or in a method whose header carries
``# lint: holds-lock=<lock>``, documenting that its callers acquire the
lock). ``__init__``/``__post_init__``/``__new__`` are exempt — the
object is not yet shared — as is ``__del__`` (acquiring locks during
GC is its own hazard).

The analysis is lexical by design: a helper that *really* runs under a
caller's lock must say so with ``holds-lock``, which doubles as
documentation of the locking contract. Deliberate lock-free fast-path
reads carry an inline ``# lint: disable=lock-guard``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple, Union

from ..findings import Finding
from ..source import SourceFile
from ..suppress import guarded_lock, held_locks_with_lines
from .base import Rule, def_header_lines, is_self_attribute

_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__", "__del__"}

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _guarded_attributes(source: SourceFile,
                        cls: ast.ClassDef) -> Dict[str, Tuple[str, int]]:
    """``{attr: (lock, declaration line)}`` from guarded-by comments."""
    guarded: Dict[str, Tuple[str, int]] = {}
    for node in ast.walk(cls):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        locks = [
            lock
            for comment in source.comments_in(node.lineno, end)
            for lock in [guarded_lock(comment)]
            if lock is not None
        ]
        if not locks:
            continue
        for target in targets:
            if is_self_attribute(target):
                attr = target.attr  # type: ignore[attr-defined]
                guarded[attr] = (locks[0], node.lineno)
    return guarded


class _MethodChecker(ast.NodeVisitor):
    """Walks one method tracking which locks are lexically held."""

    def __init__(self, rule: "LockGuardRule", source: SourceFile,
                 cls_name: str, guarded: Dict[str, Tuple[str, int]],
                 marker_held: Dict[str, int]) -> None:
        self.rule = rule
        self.source = source
        self.cls_name = cls_name
        self.guarded = guarded
        #: Locks held lexically (``with self.<lock>:`` blocks).
        self.held: Set[str] = set()
        #: Locks held by ``holds-lock=`` contract → the marker's line,
        #: so uses can be credited for stale-suppression reporting.
        self.marker_held = dict(marker_held)
        self.findings: List[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            if is_self_attribute(expr):
                acquired.append(expr.attr)  # type: ignore[attr-defined]
            else:
                self.visit(expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        before = set(self.held)
        self.held |= set(acquired)
        for statement in node.body:
            self.visit(statement)
        self.held = before

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if is_self_attribute(node) and node.attr in self.guarded:
            lock, _ = self.guarded[node.attr]
            if lock not in self.held and lock in self.marker_held:
                # Excused by the holds-lock contract alone: credit the
                # marker so the engine knows it still earns its keep.
                self.source.marker_uses.add(self.marker_held[lock])
            elif lock not in self.held:
                action = (
                    "written" if isinstance(node.ctx, (ast.Store, ast.Del))
                    else "read"
                )
                self.findings.append(self.rule.finding(
                    self.source, node,
                    f"{self.cls_name}.{node.attr} is {action} outside "
                    f"'with self.{lock}' (declared guarded-by: {lock})",
                    symbol=f"{self.cls_name}.{node.attr}",
                ))
        self.generic_visit(node)

    def _visit_nested(self, node: _AnyFunc) -> None:
        # A nested def runs later, not under the lexically-enclosing
        # lock; analyze its body with only its own holds-lock claims.
        nested_marker = held_locks_with_lines(
            self.source.comments, def_header_lines(node)
        )
        saved = (self.held, self.marker_held)
        self.held, self.marker_held = set(), nested_marker
        for statement in node.body:
            self.visit(statement)
        self.held, self.marker_held = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved = (self.held, self.marker_held)
        self.held, self.marker_held = set(), {}
        self.visit(node.body)
        self.held, self.marker_held = saved


class LockGuardRule(Rule):
    """Enforce ``# guarded-by:`` attribute/lock annotations."""

    name = "lock-guard"
    description = (
        "attributes annotated '# guarded-by: <lock>' may only be "
        "touched inside 'with self.<lock>'"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.tree is None:
            return
        for cls in ast.walk(source.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guarded = _guarded_attributes(source, cls)
            if not guarded:
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in _EXEMPT_METHODS:
                    continue
                marker_held = held_locks_with_lines(
                    source.comments, def_header_lines(method)
                )
                checker = _MethodChecker(
                    self, source, cls.name, guarded, marker_held
                )
                for statement in method.body:
                    checker.visit(statement)
                for finding in checker.findings:
                    yield finding
