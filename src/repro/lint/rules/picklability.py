"""picklability: objects crossing process boundaries must reconstruct.

The shard worker pool ships tasks and outcomes — and, when a worker
fails, the *exception* — back through :mod:`pickle`. Python's default
exception reduction re-calls ``Cls(*self.args)``, so an exception whose
custom ``__init__`` signature differs from its ``args`` tuple raises
``TypeError`` *during unpickling*, which a ``ProcessPoolExecutor``
surfaces as a ``BrokenProcessPool`` that kills every queued task (the
PR 4 bug class, hand-fixed three times in ``repro/errors.py``).

Three checks:

* an exception class (name or any base ending in ``Error`` /
  ``Exception``) that defines a custom ``__init__`` must also define
  ``__reduce__`` (rebuilding from positional args by construction);
* a class marked ``# lint: pickled`` (the shard-boundary types) must be
  a dataclass or define ``__reduce__`` / ``__getstate__`` — shapes the
  default pickler reconstructs without a matching ``__init__`` call;
* ``lambda``\\ s and nested functions must not be submitted to a
  pool/executor (``<pool>.map/submit(lambda ...)``) — they cannot be
  pickled by qualified name.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Union

from ..findings import Finding
from ..source import SourceFile
from ..suppress import marked_pickled
from .base import Rule, attribute_chain

_EXC_SUFFIXES = ("Error", "Exception")

#: Pool method names whose callable argument crosses to workers.
_POOL_METHODS: Set[str] = {"map", "submit", "map_ordered"}


def _is_exception_class(node: ast.ClassDef) -> bool:
    if node.name.endswith(_EXC_SUFFIXES):
        return True
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name.endswith(_EXC_SUFFIXES):
            return True
    return False


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _custom_init_params(init: ast.FunctionDef) -> int:
    """Positional/keyword parameters beyond ``self`` (vararg excluded)."""
    args = init.args
    return (
        len(args.posonlyargs) + len(args.args) - 1 + len(args.kwonlyargs)
    )


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(
            decorator, ast.Call
        ) else decorator
        name = attribute_chain(target) or getattr(target, "id", "")
        if name.split(".")[-1] == "dataclass":
            return True
    return False


def _receiver_is_pool(func: ast.Attribute) -> bool:
    chain = attribute_chain(func.value).lower()
    tail = chain.rsplit(".", 1)[-1]
    return "pool" in tail or "executor" in tail


class PicklabilityRule(Rule):
    """Keep process-boundary objects reconstructible by construction."""

    name = "picklability"
    description = (
        "exceptions with custom __init__ need __reduce__; "
        "'# lint: pickled' classes must reconstruct; no lambdas into "
        "pools"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.tree is None:
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)
            elif isinstance(node, ast.Call):
                yield from self._check_pool_call(source, node)

    def _check_class(self, source: SourceFile,
                     node: ast.ClassDef) -> Iterator[Finding]:
        pickled_marker = any(
            marked_pickled(comment)
            for comment in source.comments_in(
                node.lineno,
                node.body[0].lineno if node.body else node.lineno,
            )
        )
        init = _method(node, "__init__")
        has_reduce = _method(node, "__reduce__") is not None
        has_getstate = _method(node, "__getstate__") is not None

        if _is_exception_class(node) and init is not None and not has_reduce:
            detail = (
                "its __init__ takes no arguments, so the default "
                "args-based reconstruction calls it with the message"
                if _custom_init_params(init) == 0 else
                "the default reduction replays self.args into a "
                "different __init__ signature"
            )
            yield self.finding(
                source, node,
                f"exception {node.name} defines __init__ without "
                f"__reduce__: {detail}; unpicklable exceptions kill "
                f"process pools instead of propagating",
                symbol=node.name,
            )
        if pickled_marker and not (
            _is_dataclass(node) or has_reduce or has_getstate
        ):
            yield self.finding(
                source, node,
                f"{node.name} is marked '# lint: pickled' but is "
                f"neither a dataclass nor defines "
                f"__reduce__/__getstate__",
                symbol=node.name,
            )

    def _check_pool_call(self, source: SourceFile,
                         node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _POOL_METHODS or not _receiver_is_pool(func):
            return
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                yield self.finding(
                    source, node,
                    f"lambda passed to '.{func.attr}' on a pool/"
                    f"executor: lambdas cannot be pickled across a "
                    f"process boundary; use a module-level function",
                    symbol=func.attr,
                )
