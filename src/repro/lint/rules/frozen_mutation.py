"""frozen-mutation: immutable types stay immutable after construction.

Served results are shared objects — ``submit_many`` fans one
:class:`~repro.engine.result.MatchResult` out to every duplicate
submitter, plans are shared across services, requests are retried and
re-enqueued. The API contract is "treat these as immutable"; this rule
makes the *implementation* honor it: inside a frozen class, no method
other than the constructors may assign to ``self``.

A class counts as frozen when it is decorated
``@dataclass(frozen=True)`` (detected from the AST) or when its
``class`` line carries a ``# lint: frozen`` marker (for hand-rolled
immutables like ``MatchingPlan`` and ``MatchResult`` whose ``__init__``
builds derived indexes).

Flagged in any non-constructor method: ``self.x = ...``, ``self.x +=
...``, ``del self.x``, ``object.__setattr__(self, ...)``, and
``setattr(self, ...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from ..findings import Finding
from ..source import SourceFile
from ..suppress import marked_frozen
from .base import Rule, attribute_chain, is_self_attribute

#: Methods allowed to assign: construction and pickle plumbing.
_CONSTRUCTORS = {
    "__init__", "__post_init__", "__new__", "__setstate__",
    "__deepcopy__", "__copy__", "__reduce__",
}

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = attribute_chain(decorator.func) or getattr(
            decorator.func, "id", ""
        )
        if name.split(".")[-1] != "dataclass":
            continue
        for keyword in decorator.keywords:
            if keyword.arg == "frozen" and isinstance(
                keyword.value, ast.Constant
            ) and keyword.value.value is True:
                return True
    return False


def _is_marked_frozen(source: SourceFile, node: ast.ClassDef) -> bool:
    return marked_frozen(source.comment_on(node.lineno))


def _self_mutations(method: _AnyFunc) -> Iterator[ast.AST]:
    """Every statement in ``method`` that assigns to ``self``."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            if any(is_self_attribute(target) for target in node.targets):
                yield node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.value is None and isinstance(node, ast.AnnAssign):
                continue  # bare annotation, no assignment
            if is_self_attribute(node.target):
                yield node
        elif isinstance(node, ast.Delete):
            if any(is_self_attribute(target) for target in node.targets):
                yield node
        elif isinstance(node, ast.Call):
            chain = attribute_chain(node.func) or getattr(
                node.func, "id", ""
            )
            if chain in ("object.__setattr__", "setattr") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id == "self":
                    yield node


class FrozenMutationRule(Rule):
    """Forbid post-construction ``self`` assignment in frozen classes."""

    name = "frozen-mutation"
    description = (
        "no attribute assignment outside __init__/__post_init__ on "
        "frozen dataclasses and '# lint: frozen' classes"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.tree is None:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (_is_frozen_dataclass(node)
                    or _is_marked_frozen(source, node)):
                continue
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in _CONSTRUCTORS:
                    continue
                for mutation in _self_mutations(method):
                    yield self.finding(
                        source, mutation,
                        f"{node.name} is frozen but "
                        f"{node.name}.{method.name} assigns to self; "
                        f"frozen instances are shared across "
                        f"threads and requests and must never mutate",
                        symbol=f"{node.name}.{method.name}",
                    )
