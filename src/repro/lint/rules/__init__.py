"""Rule registry: every project-specific checker, by name.

Adding a rule is three steps (see ``docs/guides/static-analysis.md``):
subclass :class:`~repro.lint.rules.base.Rule` in a new module here,
decorate it with :func:`register_rule`, and import the module below so
registration runs. Fixture coverage in ``tests/lint_fixtures/`` is the
fourth, non-optional step.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from ...errors import MatchingError
from .base import ProjectRule, Rule

_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a checker to the registry."""
    if not cls.name:
        raise MatchingError(
            f"rule class {cls.__name__} must set a non-empty name"
        )
    if cls.name in _RULES:
        raise MatchingError(f"lint rule {cls.name!r} already registered")
    _RULES[cls.name] = cls
    return cls


def available_rules() -> Tuple[str, ...]:
    """Sorted names of every registered rule."""
    return tuple(sorted(_RULES))


def rule_descriptions() -> Dict[str, str]:
    """``{rule name: one-line description}`` for the catalog."""
    return {name: cls.description for name, cls in sorted(_RULES.items())}


def create_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the named rules (all of them by default)."""
    if names is None:
        names = available_rules()
    rules = []
    for name in names:
        try:
            cls = _RULES[name]
        except KeyError:
            raise MatchingError(
                f"unknown lint rule {name!r}; available rules: "
                f"{', '.join(available_rules())}"
            ) from None
        rules.append(cls())
    return rules


from .api_surface import ApiSurfaceRule
from .async_safety import AsyncSafetyRule
from .determinism import DeterminismRule
from .exception_contract import ExceptionContractRule
from .frozen_mutation import FrozenMutationRule
from .lock_cycle import LockCycleRule
from .lock_guard import LockGuardRule
from .lock_order import LockOrderRule
from .picklability import PicklabilityRule
from .wire_schema import WireSchemaRule

for _cls in (
    ApiSurfaceRule,
    AsyncSafetyRule,
    DeterminismRule,
    ExceptionContractRule,
    FrozenMutationRule,
    LockCycleRule,
    LockGuardRule,
    LockOrderRule,
    PicklabilityRule,
    WireSchemaRule,
):
    register_rule(_cls)

__all__ = [
    "Rule",
    "ProjectRule",
    "register_rule",
    "available_rules",
    "rule_descriptions",
    "create_rules",
    "ApiSurfaceRule",
    "AsyncSafetyRule",
    "DeterminismRule",
    "ExceptionContractRule",
    "FrozenMutationRule",
    "LockCycleRule",
    "LockGuardRule",
    "LockOrderRule",
    "PicklabilityRule",
    "WireSchemaRule",
]
