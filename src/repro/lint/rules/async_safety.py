"""async-safety: no blocking calls on the event loop.

``AsyncMatchingService`` promises "the event loop never blocks on
matching work" — every synchronous serving call must cross to a worker
thread via ``loop.run_in_executor``. A single ``time.sleep``,
``submit_many``, file read, or executor ``shutdown(wait=True)`` inside
an ``async def`` silently stalls *every* coroutine on the loop, which
is precisely the bug class PR 5 shipped and hand-fixed.

This rule flags, inside ``async def`` bodies (nested synchronous
``def``\\ s are skipped — they run wherever they are called):

* known blocking library calls: ``time.sleep``, ``os.system``,
  ``subprocess.run/call/check_call/check_output/Popen``, bare
  ``open(...)`` / ``input(...)``;
* the project's synchronous serving surface and thread-coordination
  calls — ``submit_many``, ``map_ordered``, ``acquire``, ``wait``,
  ``join``, ``shutdown``, ``close`` — when the call is **not** awaited
  (awaited calls are their async counterparts: ``asyncio.Lock.acquire``,
  ``aclose``-style coroutines, ...). Anything under the ``asyncio``
  module itself is exempt.

Routing through an executor never trips the rule, because the blocking
callable is passed *uncalled* (``loop.run_in_executor(None,
service.submit_many, batch)``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Union

from ..findings import Finding
from ..source import SourceFile
from .base import Rule, attribute_chain

#: Bare-name calls that always block.
BLOCKING_NAMES: Set[str] = {"open", "input"}

#: ``module.function`` calls that always block.
BLOCKING_QUALIFIED: Dict[str, Set[str]] = {
    "time": {"sleep"},
    "os": {"system"},
    "subprocess": {"run", "call", "check_call", "check_output", "Popen"},
    "socket": {"create_connection"},
}

#: Method names that are synchronous/blocking in this codebase when not
#: awaited: the serving surface and thread-coordination primitives.
BLOCKING_METHODS: Set[str] = {
    "submit_many", "map_ordered", "acquire", "wait", "join",
    "shutdown", "close", "read_text", "write_text",
}

_AnyFunc = Union[ast.FunctionDef, ast.Lambda]


class _AsyncBodyChecker(ast.NodeVisitor):
    """Walks one ``async def`` body looking for blocking call sites."""

    def __init__(self, rule: "AsyncSafetyRule", source: SourceFile,
                 func_name: str) -> None:
        self.rule = rule
        self.source = source
        self.func_name = func_name
        self.awaited: Set[int] = set()
        self.findings: List[Finding] = []

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self.awaited.add(id(node.value))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # a nested sync def runs wherever it is called, not here

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # checked as its own async scope by the rule driver

    def _blocked_reason(self, node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Name) and func.id in BLOCKING_NAMES:
            return f"'{func.id}(...)' performs blocking I/O"
        chain = attribute_chain(func)
        if chain:
            head, _, tail = chain.partition(".")
            if head == "asyncio":
                return ""
            if tail in BLOCKING_QUALIFIED.get(head, set()):
                return f"'{chain}(...)' blocks the event loop"
        if isinstance(func, ast.Attribute):
            if (func.attr in BLOCKING_METHODS
                    and id(node) not in self.awaited):
                return (
                    f"synchronous '.{func.attr}(...)' blocks the event "
                    f"loop; route it through loop.run_in_executor"
                )
        return ""

    def visit_Call(self, node: ast.Call) -> None:
        reason = self._blocked_reason(node)
        if reason:
            self.findings.append(self.rule.finding(
                self.source, node,
                f"blocking call inside 'async def {self.func_name}': "
                f"{reason}",
                symbol=self.func_name,
            ))
        self.generic_visit(node)


class AsyncSafetyRule(Rule):
    """Forbid blocking calls directly inside coroutine bodies."""

    name = "async-safety"
    description = (
        "no time.sleep / blocking serving calls / file I/O directly "
        "inside 'async def' — route work through an executor"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.tree is None:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            checker = _AsyncBodyChecker(self, source, node.name)
            # First pass: record which calls are awaited (an Await's
            # operand is visited after the Await node itself, but a
            # full pre-pass keeps order-independence explicit).
            for sub in ast.walk(node):
                if isinstance(sub, ast.Await) and isinstance(
                    sub.value, ast.Call
                ):
                    checker.awaited.add(id(sub.value))
            for statement in node.body:
                checker.visit(statement)
            for finding in checker.findings:
                yield finding
