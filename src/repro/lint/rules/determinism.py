"""determinism: replay-reachable code must be bit-replayable.

The replay subsystem's headline guarantee is exact rewind: re-running
a trace reproduces every result bit-for-bit. That only holds if no
code on the serving path consults sources the trace does not capture.
This rule is the static shadow of that guarantee: every module
reachable (via imports) from ``repro.replay`` / ``repro.engine`` — or
from any module carrying a ``# lint: replay-root`` marker — must not

* read the wall clock (``time.time``, ``datetime.now``, ...) —
  monotonic/duration clocks (``perf_counter``, ``monotonic``,
  ``sleep``) stay allowed, they feed stats that are excluded from
  replay identity;
* draw OS entropy or unseeded randomness (``random.random``,
  ``os.urandom``, ``uuid.uuid4``, ``numpy.random.rand``, ...) —
  seeded generators (``random.Random(seed)``,
  ``numpy.random.default_rng(seed)``) stay allowed;
* iterate a ``set`` into ordered output (a ``for`` loop, ``list()``/
  ``tuple()``/``enumerate()``/``.join()``, a list comprehension) —
  set iteration order varies across processes; ``sorted(...)`` the
  set first.

The set check tracks set literals/comprehensions/constructor calls
and local names assigned one within the same scope; attributes and
cross-function flows are out of scope (documented limitation).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

from ..findings import Finding
from ..project import ModuleInfo, ProjectModel
from .base import ProjectRule, attribute_chain

#: Module name prefixes that seed reachability.
ROOT_PREFIXES = ("repro.replay", "repro.engine")

#: Wall-clock and entropy calls banned outright (canonical names).
_BANNED_EXACT = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.localtime": "wall-clock time",
    "time.gmtime": "wall-clock time",
    "time.ctime": "wall-clock time",
    "time.asctime": "wall-clock time",
    "time.strftime": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "wall-clock/MAC entropy",
    "uuid.uuid4": "OS entropy",
}

#: ``random`` attributes that are fine (seedable generator types).
_RANDOM_ALLOWED = {"Random"}

#: ``numpy.random`` attributes that are fine (seedable constructors).
_NUMPY_RANDOM_ALLOWED = {
    "default_rng", "RandomState", "Generator", "SeedSequence",
}

_AnyComp = Union[ast.ListComp, ast.GeneratorExp]


def _canonical(module: ModuleInfo, dotted: str) -> str:
    """Resolve the head of a dotted call through the import aliases."""
    head, _, rest = dotted.partition(".")
    target = module.imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _banned_call(canonical: str) -> Optional[str]:
    """Why a canonical dotted call is banned (None = allowed)."""
    if canonical in _BANNED_EXACT:
        return _BANNED_EXACT[canonical]
    if canonical.startswith("secrets."):
        return "OS entropy"
    parts = canonical.split(".")
    if parts[0] == "random" and len(parts) == 2 \
            and parts[1] not in _RANDOM_ALLOWED:
        return "unseeded process-global randomness"
    if len(parts) == 3 and parts[0] == "numpy" \
            and parts[1] == "random" \
            and parts[2] not in _NUMPY_RANDOM_ALLOWED:
        return "unseeded process-global randomness"
    return None


class _ModuleScanner(ast.NodeVisitor):
    """Finds banned calls and ordered set iteration in one module."""

    def __init__(self, rule: "DeterminismRule",
                 module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        #: Stack of scopes: local names known to hold a set.
        self.scopes: List[Set[str]] = [set()]
        self.findings: List[Finding] = []

    # -- scope management ----------------------------------------------
    def _visit_scope(self, node: ast.AST, body: List[ast.stmt]) -> None:
        self.scopes.append(set())
        for statement in body:
            self.visit(statement)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node, node.body)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node, node.body)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.scopes.append(set())
        self.visit(node.body)
        self.scopes.pop()

    # -- set tracking --------------------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in {"set", "frozenset"}:
            return True
        if isinstance(node, ast.Name):
            return node.id in self.scopes[-1]
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.scopes[-1].add(target.id)
                else:
                    self.scopes[-1].discard(target.id)
        self.generic_visit(node)

    def _flag_set_iteration(self, node: ast.expr, where: str) -> None:
        self.findings.append(self.rule.project_finding(
            self.module.source.rel_path, node.lineno,
            f"iterates a set into ordered output ({where}); set "
            f"iteration order is not deterministic across processes — "
            f"wrap it in sorted(...)",
        ))

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag_set_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_ordered_comp(self, node: _AnyComp, what: str) -> None:
        for generator in node.generators:
            if self._is_set_expr(generator.iter):
                self._flag_set_iteration(generator.iter, what)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_ordered_comp(node, "list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_ordered_comp(node, "generator expression")

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = attribute_chain(node.func)
        if dotted:
            canonical = _canonical(self.module, dotted)
            why = _banned_call(canonical)
            if why is not None:
                self.findings.append(self.rule.project_finding(
                    self.module.source.rel_path, node.lineno,
                    f"calls {canonical}() ({why}) on a replay-"
                    f"reachable path; replay rewind cannot reproduce "
                    f"it — take it from the trace or a seeded source",
                ))
        if isinstance(node.func, ast.Name) \
                and node.func.id in {"list", "tuple", "enumerate"} \
                and node.args and self._is_set_expr(node.args[0]):
            self._flag_set_iteration(
                node.args[0], f"{node.func.id}() call"
            )
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "join" \
                and node.args and self._is_set_expr(node.args[0]):
            self._flag_set_iteration(node.args[0], "str.join() call")
        self.generic_visit(node)


class DeterminismRule(ProjectRule):
    """Keep replay-reachable modules free of nondeterminism sources."""

    name = "determinism"
    description = (
        "modules reachable from repro.replay/repro.engine must not "
        "read wall clocks, draw unseeded randomness, or iterate sets "
        "into ordered output"
    )

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        roots = [
            name for name, module in model.modules.items()
            if name.startswith(ROOT_PREFIXES) or module.replay_root
        ]
        for name in sorted(model.reachable_modules(roots)):
            module = model.modules[name]
            tree = module.source.tree
            if tree is None:
                continue
            scanner = _ModuleScanner(self, module)
            for statement in tree.body:
                scanner.visit(statement)
            for finding in scanner.findings:
                yield finding
