"""``python -m repro.lint`` dispatches to :func:`repro.lint.cli.main`."""

import sys

from .cli import main

sys.exit(main())
