"""``python -m repro.lint`` — the command-line front door.

Exit status: 0 when clean (baselined findings do not fail), 1 when new
findings exist (or a file fails to parse), 2 on usage errors.

Typical invocations::

    python -m repro.lint                       # lint the repo defaults
    python -m repro.lint src/repro/engine      # one subtree
    python -m repro.lint --list-rules          # the rule catalog
    python -m repro.lint --json report.json    # machine-readable report
    python -m repro.lint --write-baseline      # grandfather the current
                                               # findings (adopting a
                                               # new rule on old debt)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline
from .engine import DEFAULT_TARGETS, LintEngine, LintReport
from .rules import available_rules, rule_descriptions
from .sarif import report_to_sarif

#: Default baseline filename, looked up relative to the lint root.
BASELINE_NAME = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Project-specific static analysis: lock discipline, "
            "async-safety, picklability, frozen types, API surface."
        ),
    )
    parser.add_argument(
        "targets", nargs="*",
        help=f"files/directories to lint (default: {DEFAULT_TARGETS})",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        help=f"baseline file (default: ./{BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="also write the full report as JSON to PATH",
    )
    parser.add_argument(
        "--sarif", dest="sarif_path", metavar="PATH",
        help="also write the report as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--root", help="repo root findings are reported relative to "
        "(default: the current directory)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the summary line",
    )
    return parser


def _print_report(report: LintReport, quiet: bool) -> None:
    if not quiet:
        for finding in report.findings:
            print(finding.render())
        for finding in report.baselined:
            print(f"{finding.render()}  [baselined]")
        for key in report.stale_baseline:
            print(
                f"stale baseline entry (fix landed? delete it): "
                f"rule={key[0]} path={key[1]} symbol={key[2]}"
            )
        for stale in report.stale_suppressions:
            print(stale.render())
    verdict = "OK" if report.ok else "FAIL"
    print(
        f"{verdict}: {report.files_checked} files, "
        f"{len(report.findings)} new finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in rule_descriptions().items():
            print(f"{name:16s} {description}")
        return 0

    root = Path(args.root).resolve() if args.root else Path.cwd()
    rules: Optional[List[str]] = None
    if args.rules:
        rules = [part.strip() for part in args.rules.split(",")
                 if part.strip()]
        unknown = set(rules) - set(available_rules())
        if unknown:
            parser.error(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(available_rules())}"
            )

    baseline_path = (
        Path(args.baseline) if args.baseline else root / BASELINE_NAME
    )
    baseline = Baseline.load(baseline_path)

    engine = LintEngine(rules=rules, baseline=baseline, root=root)
    report = engine.run(args.targets or None)

    if args.write_baseline:
        grandfathered = report.findings + report.baselined
        Baseline.save(baseline_path, grandfathered)
        print(
            f"wrote {len(grandfathered)} finding(s) to {baseline_path}"
        )
        return 0

    if args.json_path:
        json_path = Path(args.json_path)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(
            json.dumps(report.as_dict(), indent=2) + "\n",
            encoding="utf-8",
        )

    if args.sarif_path:
        sarif_path = Path(args.sarif_path)
        sarif_path.parent.mkdir(parents=True, exist_ok=True)
        sarif_path.write_text(
            json.dumps(report_to_sarif(report, root), indent=2) + "\n",
            encoding="utf-8",
        )

    _print_report(report, args.quiet)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
