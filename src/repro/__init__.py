"""repro — reproduction of *Efficient Evaluation of Multiple Preference
Queries* (Leong Hou U, Nikos Mamoulis, Kyriakos Mouratidis; ICDE 2009).

The library computes the stable 1-1 matching between a set of linear
preference functions (queries) and a set of multidimensional objects,
using the paper's skyline-based SB algorithm, with the Brute Force and
Chain baselines, a simulated disk + LRU buffer cost model, and a full
benchmark harness reproducing the paper's figures.

Quickstart (the unified facade):

    >>> import repro
    >>> objects = repro.generate_independent(n=300, dims=3, seed=7)
    >>> prefs = repro.generate_preferences(n=8, dims=3, seed=11)
    >>> result = repro.match(objects, prefs)          # SB on the paper's
    >>> len(result.pairs)                             # simulated disk
    8
    >>> result.io_accesses > 0
    True

The serving fast path (same pairs, zero simulated I/O) and the sharded
multi-core path (same pairs, many workers) are single keywords away:

    >>> fast = repro.match(objects, prefs, backend="memory")
    >>> fast.as_set() == result.as_set()
    True
    >>> wide = repro.match(objects, prefs, backend="memory",
    ...                    shards=2, executor="serial")
    >>> wide.as_set() == result.as_set()
    True

Sustained traffic goes through the serving pipeline — compile a plan
once, stage the objects once, answer repeated workloads from warm
state with a keyed result cache:

    >>> service = repro.MatchingService(objects, backend="memory")
    >>> service.submit(prefs).as_set() == result.as_set()
    True
    >>> service.submit(prefs) is service.submit(prefs)  # cached repeats
    True

Batches of requests share work — duplicates are computed once and
linear misses are scored in one vectorized pass (``repro.plan`` and
``MatchingRequest`` expose the lower-level knobs):

    >>> batch = service.submit_many([prefs, prefs])
    >>> batch[0] is batch[1]                # fanned-out, not recomputed
    True

``repro.match`` accepts any registered algorithm
(:func:`repro.available_algorithms`) and storage backend
(:func:`repro.available_backends`); the lower-level classes
(:class:`MatchingProblem`, :class:`SkylineMatcher`, ...) stay available
for streaming pairs and custom instrumentation, and
:func:`repro.open_session` keeps a matching alive under streaming
updates. The same serving stack crosses machine boundaries through
:mod:`repro.net`: :class:`MatchingServer`/:class:`MatchingClient` put
the service behind a socket, and ``executor="remote"`` fans shard
tasks out to :class:`ShardWorkerServer` processes.
:mod:`repro.replay` exercises all of the above as one system: it
replays time-stamped churn + request traces against the serving stack
(:class:`ReplayDriver`), verifies every served result against a
ground-truth recompute, and can rewind the whole system to any earlier
clock, bit-identically. The full documentation site lives in ``docs/``
(build it with ``mkdocs build`` after ``pip install -e .[docs]``).
"""

from .core import (
    BruteForceMatcher,
    ChainMatcher,
    GaleShapleyMatcher,
    GenericSkylineMatcher,
    Matcher,
    Matching,
    MatchingProblem,
    MatchingReport,
    MatchPair,
    SkylineMatcher,
    find_blocking_pairs,
    greedy_reference_matching,
    match_with_capacities,
    summarize,
    verify_stable_matching,
)
from .engine import (
    AsyncMatchingService,
    MatchingConfig,
    MatchingEngine,
    MatchingPlan,
    MatchingRequest,
    MatchingService,
    MatchResult,
    PreparedMatching,
    ServiceStats,
    algorithm_supports_repair,
    available_algorithms,
    available_backends,
    match,
    open_session,
    register_backend,
    register_matcher,
)
from .engine.plan import plan
from .dynamic import (
    DynamicMatcher,
    RecomputeSession,
    UpdateMix,
    apply_events,
    generate_events,
)

# Importing the parallel package registers the "sharded-sb" algorithm.
from .parallel import ShardedMatcher, available_executors, hilbert_ranges

# The network layer sits on top of both the engine and the parallel
# package, so it imports last.
from .net import (
    AsyncMatchingClient,
    MatchingClient,
    MatchingServer,
    RemoteExecutor,
    ShardWorkerServer,
)

# The replay harness drives the whole stack (engine + dynamic + net)
# under a simulated clock, so it imports after all of them.
from .replay import (
    ReplayDriver,
    ScenarioReport,
    Trace,
    TraceRecorder,
    scenario_trace,
)
from .data import (
    Dataset,
    generate_anticorrelated,
    generate_clustered,
    generate_correlated,
    generate_independent,
    generate_zillow,
    load_dataset_csv,
    save_dataset_csv,
)
from .errors import ReproError
from .prefs import FunctionIndex, LinearPreference, generate_preferences
from .skyline import bnl_skyline, compute_skyline, sfs_skyline
from .storage import IOStats, SearchStats

__version__ = "1.0.0"

__all__ = [
    "BruteForceMatcher",
    "ChainMatcher",
    "GaleShapleyMatcher",
    "GenericSkylineMatcher",
    "AsyncMatchingService",
    "MatchingConfig",
    "MatchingEngine",
    "MatchingPlan",
    "MatchingRequest",
    "MatchingService",
    "MatchResult",
    "PreparedMatching",
    "ServiceStats",
    "algorithm_supports_repair",
    "available_algorithms",
    "available_backends",
    "match",
    "open_session",
    "plan",
    "register_backend",
    "register_matcher",
    "DynamicMatcher",
    "RecomputeSession",
    "UpdateMix",
    "apply_events",
    "generate_events",
    "ShardedMatcher",
    "available_executors",
    "hilbert_ranges",
    "MatchingServer",
    "MatchingClient",
    "AsyncMatchingClient",
    "ShardWorkerServer",
    "RemoteExecutor",
    "ReplayDriver",
    "ScenarioReport",
    "Trace",
    "TraceRecorder",
    "scenario_trace",
    "MatchingReport",
    "match_with_capacities",
    "summarize",
    "Matcher",
    "Matching",
    "MatchingProblem",
    "MatchPair",
    "SkylineMatcher",
    "find_blocking_pairs",
    "greedy_reference_matching",
    "verify_stable_matching",
    "Dataset",
    "generate_anticorrelated",
    "generate_clustered",
    "generate_correlated",
    "generate_independent",
    "generate_zillow",
    "load_dataset_csv",
    "save_dataset_csv",
    "ReproError",
    "FunctionIndex",
    "LinearPreference",
    "generate_preferences",
    "bnl_skyline",
    "compute_skyline",
    "sfs_skyline",
    "IOStats",
    "SearchStats",
    "__version__",
]
