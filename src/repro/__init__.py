"""repro — reproduction of *Efficient Evaluation of Multiple Preference
Queries* (Leong Hou U, Nikos Mamoulis, Kyriakos Mouratidis; ICDE 2009).

The library computes the stable 1-1 matching between a set of linear
preference functions (queries) and a set of multidimensional objects,
using the paper's skyline-based SB algorithm, with the Brute Force and
Chain baselines, a simulated disk + LRU buffer cost model, and a full
benchmark harness reproducing the paper's figures.

Quickstart (the unified facade)::

    import repro

    objects = repro.generate_independent(n=10_000, dims=4, seed=7)
    prefs = repro.generate_preferences(n=500, dims=4, seed=11)
    result = repro.match(objects, prefs, algorithm="sb", backend="disk")
    print(result.pairs[:3], result.io_accesses)

``repro.match`` accepts any registered algorithm
(:func:`repro.available_algorithms`) and storage backend
(:func:`repro.available_backends`); the lower-level classes
(:class:`MatchingProblem`, :class:`SkylineMatcher`, ...) stay available
for streaming pairs and custom instrumentation.
"""

from .core import (
    BruteForceMatcher,
    ChainMatcher,
    GaleShapleyMatcher,
    GenericSkylineMatcher,
    Matcher,
    Matching,
    MatchingProblem,
    MatchingReport,
    MatchPair,
    SkylineMatcher,
    find_blocking_pairs,
    greedy_reference_matching,
    match_with_capacities,
    summarize,
    verify_stable_matching,
)
from .engine import (
    MatchingConfig,
    MatchingEngine,
    MatchResult,
    algorithm_supports_repair,
    available_algorithms,
    available_backends,
    match,
    open_session,
    register_backend,
    register_matcher,
)
from .dynamic import (
    DynamicMatcher,
    RecomputeSession,
    UpdateMix,
    apply_events,
    generate_events,
)
from .data import (
    Dataset,
    generate_anticorrelated,
    generate_clustered,
    generate_correlated,
    generate_independent,
    generate_zillow,
    load_dataset_csv,
    save_dataset_csv,
)
from .errors import ReproError
from .prefs import FunctionIndex, LinearPreference, generate_preferences
from .skyline import bnl_skyline, compute_skyline, sfs_skyline
from .storage import IOStats, SearchStats

__version__ = "1.0.0"

__all__ = [
    "BruteForceMatcher",
    "ChainMatcher",
    "GaleShapleyMatcher",
    "GenericSkylineMatcher",
    "MatchingConfig",
    "MatchingEngine",
    "MatchResult",
    "algorithm_supports_repair",
    "available_algorithms",
    "available_backends",
    "match",
    "open_session",
    "register_backend",
    "register_matcher",
    "DynamicMatcher",
    "RecomputeSession",
    "UpdateMix",
    "apply_events",
    "generate_events",
    "MatchingReport",
    "match_with_capacities",
    "summarize",
    "Matcher",
    "Matching",
    "MatchingProblem",
    "MatchPair",
    "SkylineMatcher",
    "find_blocking_pairs",
    "greedy_reference_matching",
    "verify_stable_matching",
    "Dataset",
    "generate_anticorrelated",
    "generate_clustered",
    "generate_correlated",
    "generate_independent",
    "generate_zillow",
    "load_dataset_csv",
    "save_dataset_csv",
    "ReproError",
    "FunctionIndex",
    "LinearPreference",
    "generate_preferences",
    "bnl_skyline",
    "compute_skyline",
    "sfs_skyline",
    "IOStats",
    "SearchStats",
    "__version__",
]
