"""Hilbert-order range partitioning of the object set.

Shards are *contiguous ranges of the Hilbert curve*: objects are sorted
by the Hilbert key of their point (the same key
:func:`repro.rtree.hilbert_bulk_load` packs leaves with) and cut into
``K`` consecutive chunks of near-equal cardinality. Contiguity in
Hilbert order keeps every shard spatially compact in all dimensions at
once, so each shard's R-tree covers a tight region and per-shard skyline
queries stay cheap.

Cardinality balance (not spatial balance) is the partitioning objective:
each shard matches *all* functions against its objects, so equal object
counts equalize worker runtimes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import MatchingError
from ..rtree.hilbert import DEFAULT_ORDER, hilbert_key_for_point

Item = Tuple[int, Sequence[float]]


def hilbert_ranges(items: Sequence[Item], shards: int,
                   order: int = DEFAULT_ORDER) -> List[List[Item]]:
    """Partition ``(object_id, point)`` items into Hilbert-order ranges.

    Returns exactly ``shards`` lists whose concatenation is the full
    item set sorted by ``(hilbert key, object id)``. Sizes differ by at
    most one; when ``shards > len(items)`` the tail shards are empty
    (callers must tolerate empty shards — the matcher does).

    >>> ranges = hilbert_ranges([(1, (0.9, 0.9)), (2, (0.1, 0.2)),
    ...                          (3, (0.15, 0.1))], shards=2)
    >>> [[object_id for object_id, _ in part] for part in ranges]
    [[2, 3], [1]]
    """
    if shards < 1:
        raise MatchingError(f"shards must be >= 1, got {shards}")
    ordered = sorted(
        items,
        key=lambda item: (hilbert_key_for_point(item[1], order), item[0]),
    )
    base, extra = divmod(len(ordered), shards)
    parts: List[List[Item]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        parts.append(ordered[start:start + size])
        start += size
    return parts
