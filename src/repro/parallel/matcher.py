"""The sharded matcher: partition, fan out, merge, repair, emit.

:class:`ShardedMatcher` is a drop-in :class:`~repro.core.base.Matcher`
that wraps any canonical linear-preference algorithm (one whose matcher
sets ``supports_repair``: sb, bf, chain, gs) and executes it as ``K``
concurrent shard matchings followed by an exact cross-shard repair pass.
It is registered as the ``"sharded-sb"`` algorithm and is also what the
facade routes through whenever ``MatchingConfig.shards > 1``.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional

from ..core.base import Matcher
from ..core.problem import MatchingProblem
from ..core.result import MatchPair
from ..engine.config import MatchingConfig
from ..engine.registry import (
    algorithm_aliases,
    algorithm_supports_repair,
    create_matcher,
    register_matcher,
)
from ..errors import MatchingError
from ..prefs import LinearPreference
from ..storage.stats import SearchStats
from .executors import run_shard_tasks
from .merge import cross_shard_repair, merge_shard_pairs
from .partition import hilbert_ranges
from .shard import ShardOutcome, ShardTask

#: Shard count used when the sharded algorithm is selected by name but
#: the config still carries the single-process default ``shards=1``.
DEFAULT_SHARDS = 4


def is_sharded_algorithm(name: str) -> bool:
    """Whether ``name`` resolves to an already-sharded algorithm."""
    normalized = name.strip().lower()
    canonical = algorithm_aliases().get(normalized, normalized)
    return canonical.startswith("sharded")


class ShardedMatcher(Matcher):
    """Concurrent shard matchings merged into the exact global matching.

    Parameters
    ----------
    problem:
        The *full* staged problem (all objects). Shard workers stage
        their own sub-problems; the parent problem backs the cross-shard
        repair pass and is never mutated.
    config:
        The run configuration; ``shards``, ``executor`` and
        ``max_workers`` drive the fan-out, everything else is inherited
        by the shard workers.
    base_algorithm:
        The algorithm each shard runs (default ``config.algorithm``
        when that is not itself sharded, else ``"sb"``). Must support
        repair (:func:`~repro.engine.registry.algorithm_supports_repair`)
        — that flag marks exactly the matchers producing the canonical
        greedy matching over linear preferences.
    """

    supports_repair = False

    def __init__(self, problem: MatchingProblem, config: MatchingConfig,
                 base_algorithm: Optional[str] = None,
                 shards: Optional[int] = None,
                 executor: Optional[str] = None,
                 search_stats: Optional[SearchStats] = None,
                 pool=None, staging_token: Optional[int] = None,
                 parts=None) -> None:
        super().__init__(problem, search_stats=search_stats)
        if base_algorithm is None:
            base_algorithm = config.algorithm
            if is_sharded_algorithm(base_algorithm):
                base_algorithm = "sb"
        normalized = base_algorithm.strip().lower()
        canonical = algorithm_aliases().get(normalized)
        if canonical is None:
            raise MatchingError(
                f"unknown base algorithm {base_algorithm!r} for sharded "
                f"matching"
            )
        if canonical.startswith("sharded"):
            raise MatchingError(
                f"base algorithm {canonical!r} is itself sharded"
            )
        if not algorithm_supports_repair(canonical):
            raise MatchingError(
                f"algorithm {canonical!r} cannot run sharded: the "
                f"cross-shard merge repairs with displacement chains, "
                f"which requires a canonical linear-preference matcher "
                f"(one whose matcher sets supports_repair)"
            )
        for function in problem.functions:
            if not isinstance(function, LinearPreference):
                raise MatchingError(
                    "sharded matching requires linear preference "
                    f"functions; got {type(function).__name__}"
                )
        self.base_algorithm = canonical
        self.name = f"sharded-{canonical}"
        if shards is None:
            shards = config.shards if config.shards > 1 else DEFAULT_SHARDS
        if shards < 1:
            raise MatchingError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.executor = executor if executor is not None else config.executor
        self.config = config
        #: Optional persistent :class:`~repro.parallel.ShardWorkerPool`
        #: (plan-scoped); ``None`` spins an executor up per run.
        self.pool = pool
        #: Staging epoch for the worker-side shard-problem cache; tasks
        #: carry ``(token, shard index)`` keys so workers reuse their
        #: bulk-loaded trees across runs of the same prepared matching.
        self.staging_token = staging_token
        #: Precomputed Hilbert partition (a serving-path warm asset);
        #: ``None`` partitions on the fly.
        self._parts = parts
        # Aggregated counters, populated when pairs() is consumed.
        self.rounds = 0
        self.top1_searches = 0
        self.reverse_top1_queries = 0
        self.shards_used = 0
        self.merge_displaced = 0
        self.repair_chains = 0
        self.repair_steals = 0
        self.shard_stagings = 0
        self.shard_outcomes: List[ShardOutcome] = []
        self.shard_seconds: List[float] = []
        self.merge_seconds = 0.0

    # ------------------------------------------------------------------
    # Configuration plumbing
    # ------------------------------------------------------------------
    def _worker_config(self) -> MatchingConfig:
        """The config each shard worker runs under.

        Capacity expansion already happened in the facade (the parent
        problem holds virtual objects), so workers must not re-expand;
        and a worker is always a single-process run.
        """
        return self.config.replace(
            algorithm=self.base_algorithm, shards=1, capacities=None,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def pairs(self) -> Iterator[MatchPair]:
        """Yield the canonical global stable pairs (computed eagerly)."""
        problem = self.problem
        items = list(problem.objects.items())
        functions = tuple(problem.functions)
        worker_config = self._worker_config()

        if len(items) <= 1 or not functions or self.shards <= 1:
            # Degenerate fan-out: run the base algorithm directly on the
            # parent problem, byte-for-byte the single-process path.
            matcher = create_matcher(
                self.base_algorithm, problem, worker_config,
                search_stats=self.search_stats,
            )
            yield from matcher.pairs()
            self.rounds = getattr(matcher, "rounds", 0)
            self.top1_searches = getattr(matcher, "top1_searches", 0)
            self.reverse_top1_queries = getattr(
                matcher, "reverse_top1_queries", 0
            )
            self.shards_used = 1
            return

        parts = (
            self._parts if self._parts is not None
            else hilbert_ranges(items, self.shards)
        )
        tasks = [
            ShardTask(
                index=index, dims=problem.objects.dims,
                items=tuple(part), functions=functions,
                config=worker_config,
                staging_key=(
                    (self.staging_token, index)
                    if self.staging_token is not None else None
                ),
            )
            for index, part in enumerate(parts) if part
        ]
        if self.pool is not None:
            outcomes = self.pool.run(tasks)
        else:
            outcomes = run_shard_tasks(
                tasks, executor=self.executor,
                max_workers=self.config.max_workers,
                remote_workers=self.config.remote_workers,
            )

        merge_start = time.perf_counter()
        merged, displaced = merge_shard_pairs(
            outcome.pairs for outcome in outcomes
        )
        repair = cross_shard_repair(
            problem, worker_config, merged, displaced,
            search_stats=self.search_stats,
        )
        final = repair.pairs()
        self.merge_seconds = time.perf_counter() - merge_start

        self.shard_outcomes = outcomes
        self.shard_seconds = [outcome.seconds for outcome in outcomes]
        self.shards_used = len(outcomes)
        self.shard_stagings = sum(
            1 for outcome in outcomes if outcome.staged
        )
        self.merge_displaced = len(displaced)
        self.repair_chains = repair.stats.chains
        self.repair_steals = repair.stats.steals
        self.rounds = max(
            (outcome.rounds for outcome in outcomes), default=0
        )
        self.top1_searches = sum(o.top1_searches for o in outcomes)
        self.reverse_top1_queries = sum(
            o.reverse_top1_queries for o in outcomes
        )
        self._aggregate_costs(outcomes)
        yield from final

    def _aggregate_costs(self, outcomes: List[ShardOutcome]) -> None:
        """Fold shard-side costs into the parent's counters.

        Shard I/O happened on worker-private simulated disks; adding the
        snapshots into the parent problem's live counters makes the
        facade's end-of-run snapshot the true cross-shard total. The
        same for CPU-side :class:`SearchStats` when the caller passed
        one (the repair pass already wrote into it directly).
        """
        io = self.problem.io_stats
        for outcome in outcomes:
            if outcome.io is not None:
                io.page_reads += outcome.io.page_reads
                io.page_writes += outcome.io.page_writes
                io.buffer_hits += outcome.io.buffer_hits
                io.buffer_evictions += outcome.io.buffer_evictions
                io.pages_allocated += outcome.io.pages_allocated
                io.pages_freed += outcome.io.pages_freed
            if self.search_stats is not None:
                stats = self.search_stats
                stats.dominance_checks += outcome.search.dominance_checks
                stats.score_evaluations += outcome.search.score_evaluations
                stats.heap_pushes += outcome.search.heap_pushes
                stats.heap_pops += outcome.search.heap_pops
                stats.comparisons += outcome.search.comparisons


@register_matcher("sharded-sb", aliases=("ssb", "parallel-sb"))
def _sharded_sb_factory(problem: MatchingProblem, config: MatchingConfig,
                        search_stats: Optional[SearchStats] = None,
                        **overrides) -> ShardedMatcher:
    """Factory for the registered ``"sharded-sb"`` algorithm.

    Runs the paper's SB per shard. With the config's single-process
    default ``shards=1`` it still fans out to :data:`DEFAULT_SHARDS`
    (selecting the algorithm by name *is* opting into sharding).
    """
    return ShardedMatcher(
        problem, config, base_algorithm="sb",
        search_stats=search_stats, **overrides,
    )
