"""The per-shard unit of work, picklable for process pools.

A :class:`ShardTask` carries everything a worker needs to stage and
match one shard — plain tuples, :class:`~repro.prefs.LinearPreference`
objects, and a (frozen, capacity-free) :class:`~repro.engine.MatchingConfig` —
so it crosses a process boundary with the default pickler.
:func:`run_shard_task` is the module-level worker entry point (process
pools resolve it by qualified name).

A :class:`ShardOutcome` ships the results back: the shard-local stable
pairs as bare ``(function_id, object_id, score)`` triples plus the
shard's cost counters (I/O snapshot, :class:`~repro.storage.SearchStats`,
matcher counters, wall seconds), which the
:class:`~repro.parallel.ShardedMatcher` aggregates into the global
result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..data import Dataset
from ..engine.config import MatchingConfig
from ..prefs import LinearPreference
from ..storage.stats import IOSnapshot, SearchStats

Point = Tuple[float, ...]


@dataclass(frozen=True)
class ShardTask:
    """One shard's staging-and-matching assignment (picklable)."""

    index: int
    dims: int
    items: Tuple[Tuple[int, Point], ...]
    functions: Tuple[LinearPreference, ...]
    config: MatchingConfig


@dataclass
class ShardOutcome:
    """One shard's matching and cost counters (picklable)."""

    index: int
    #: Shard-local stable pairs as ``(function_id, object_id, score)``.
    pairs: List[Tuple[int, int, float]] = field(default_factory=list)
    io: Optional[IOSnapshot] = None
    search: SearchStats = field(default_factory=SearchStats)
    rounds: int = 0
    top1_searches: int = 0
    reverse_top1_queries: int = 0
    seconds: float = 0.0
    num_objects: int = 0


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Stage one shard on its backend and run the base algorithm.

    Empty shards (no objects) and empty function sets short-circuit to
    an empty outcome without touching the storage layer.
    """
    # Imported here (not at module top) to keep the worker import
    # footprint honest under spawn-style pools.
    from ..engine.backends import get_backend
    from ..engine.registry import create_matcher

    outcome = ShardOutcome(index=task.index, num_objects=len(task.items))
    if not task.items or not task.functions:
        return outcome

    start = time.perf_counter()
    dataset = Dataset.from_mapping(
        {object_id: point for object_id, point in task.items},
        task.dims, name=f"shard-{task.index}",
    )
    problem = get_backend(task.config.backend).build_problem(
        dataset, list(task.functions), task.config
    )
    problem.reset_io()
    matcher = create_matcher(
        task.config.algorithm, problem, task.config,
        search_stats=outcome.search,
    )
    outcome.pairs = [
        (pair.function_id, pair.object_id, pair.score)
        for pair in matcher.pairs()
    ]
    outcome.io = problem.io_stats.snapshot()
    outcome.rounds = getattr(matcher, "rounds", 0)
    outcome.top1_searches = getattr(matcher, "top1_searches", 0)
    outcome.reverse_top1_queries = getattr(matcher, "reverse_top1_queries", 0)
    outcome.seconds = time.perf_counter() - start
    return outcome
