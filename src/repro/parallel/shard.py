"""The per-shard unit of work, picklable for process pools.

A :class:`ShardTask` carries everything a worker needs to stage and
match one shard — plain tuples, :class:`~repro.prefs.LinearPreference`
objects, and a (frozen, capacity-free) :class:`~repro.engine.MatchingConfig` —
so it crosses a process boundary with the default pickler.
:func:`run_shard_task` is the module-level worker entry point (process
pools resolve it by qualified name).

A :class:`ShardOutcome` ships the results back: the shard-local stable
pairs as bare ``(function_id, object_id, score)`` triples plus the
shard's cost counters (I/O snapshot, :class:`~repro.storage.SearchStats`,
matcher counters, wall seconds), which the
:class:`~repro.parallel.ShardedMatcher` aggregates into the global
result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..data import Dataset
from ..engine.config import MatchingConfig
from ..prefs import LinearPreference
from ..storage.stats import IOSnapshot, SearchStats

Point = Tuple[float, ...]


@dataclass(frozen=True)
class ShardTask:  # lint: pickled
    """One shard's staging-and-matching assignment (picklable).

    ``staging_key`` (optional) is a ``(staging token, shard index)``
    pair identifying one staging epoch of one prepared matching. Workers
    keep the shard problem they staged for a key and reuse it — tree
    bulk-loaded once, matched many times — until a task arrives with a
    different token (the prepared matching restaged: its objects
    changed), at which point stale entries are dropped. ``None`` keeps
    the classic stage-per-call behaviour.
    """

    index: int
    dims: int
    items: Tuple[Tuple[int, Point], ...]
    functions: Tuple[LinearPreference, ...]
    config: MatchingConfig
    staging_key: Optional[Tuple[int, int]] = None


@dataclass
class ShardOutcome:  # lint: pickled
    """One shard's matching and cost counters (picklable)."""

    index: int
    #: Shard-local stable pairs as ``(function_id, object_id, score)``.
    pairs: List[Tuple[int, int, float]] = field(default_factory=list)
    io: Optional[IOSnapshot] = None
    search: SearchStats = field(default_factory=SearchStats)
    rounds: int = 0
    top1_searches: int = 0
    reverse_top1_queries: int = 0
    seconds: float = 0.0
    num_objects: int = 0
    #: Whether this run bulk-loaded the shard tree (False: a warm,
    #: worker-cached staging was reused).
    staged: bool = True


#: Worker-resident staging cache: ``staging_key -> staged problem``.
#: Lives for the worker's lifetime (the persistent pool's point).
#: Entries are grouped by staging token (one token per prepared
#: matching per staging epoch); the most recently *used* tokens are
#: kept, so several live prepared matchings sharing one process
#: (serial/thread executors) do not thrash each other's warm trees.
#: Memory: one token's shards partition one dataset, so a token costs
#: about one staged copy of its dataset per process; the token LRU
#: bounds the total at :data:`_MAX_STAGED_TOKENS` datasets. (Process
#: pools have no task→worker affinity, so a worker warms a shard only
#: once it has staged it — reuse there improves over successive runs
#: rather than being total; serial/thread reuse is deterministic.)
_STAGED_SHARDS: dict = {}

#: Recently-used staging tokens, oldest first (values unused). Bounds
#: how many prepared matchings' shard trees one worker keeps warm.
_STAGED_TOKENS: dict = {}
_MAX_STAGED_TOKENS = 4


def _touch_token(token: int) -> None:
    """Mark a token used; evict entire stale token generations."""
    _STAGED_TOKENS.pop(token, None)
    _STAGED_TOKENS[token] = None
    while len(_STAGED_TOKENS) > _MAX_STAGED_TOKENS:
        # next(iter(...)) under the GIL; tolerate a concurrent pop.
        try:
            stale = next(iter(_STAGED_TOKENS))
        except StopIteration:  # pragma: no cover - concurrent drain
            break
        purge_staged_shards(stale)


def purge_staged_shards(token: int) -> None:
    """Drop one token's cached shard problems from *this* process.

    Called on token eviction and by ``PreparedMatching.close()`` (where
    it frees the serial/thread executors' in-process cache; process
    workers free theirs when the pool shuts down). Snapshot + pop so
    concurrent thread-pool workers can insert or evict safely.
    """
    _STAGED_TOKENS.pop(token, None)
    for key in [k for k in list(_STAGED_SHARDS) if k[0] == token]:
        _STAGED_SHARDS.pop(key, None)


def _staged_problem(task: ShardTask):
    """The shard's staged problem: worker-cached when the task has a
    staging key, freshly built otherwise. Returns ``(problem, staged)``
    where ``staged`` says whether a bulk load was paid."""
    from ..engine.backends import get_backend

    if task.staging_key is not None:
        _touch_token(task.staging_key[0])
        cached = _STAGED_SHARDS.get(task.staging_key)
        if cached is not None:
            if cached.tree.num_objects != len(cached.objects):
                # A deletion_mode="delete" base matcher consumed the
                # warm tree on the previous run; restore it.
                cached = cached.rebuild()
                _STAGED_SHARDS[task.staging_key] = cached
                return cached, True
            return cached, False
    dataset = Dataset.from_mapping(
        {object_id: point for object_id, point in task.items},
        task.dims, name=f"shard-{task.index}",
    )
    problem = get_backend(task.config.backend).build_problem(
        dataset, list(task.functions), task.config
    )
    if task.staging_key is not None:
        _STAGED_SHARDS[task.staging_key] = problem
    return problem, True


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Stage (or reuse) one shard on its backend and run the matcher.

    Empty shards (no objects) and empty function sets short-circuit to
    an empty outcome without touching the storage layer.
    """
    # Imported here (not at module top) to keep the worker import
    # footprint honest under spawn-style pools.
    from ..engine.registry import create_matcher

    outcome = ShardOutcome(index=task.index, num_objects=len(task.items))
    if not task.items or not task.functions:
        return outcome

    start = time.perf_counter()
    staged, outcome.staged = _staged_problem(task)
    problem = staged.with_functions(list(task.functions))
    problem.reset_io()
    matcher = create_matcher(
        task.config.algorithm, problem, task.config,
        search_stats=outcome.search,
    )
    outcome.pairs = [
        (pair.function_id, pair.object_id, pair.score)
        for pair in matcher.pairs()
    ]
    outcome.io = problem.io_stats.snapshot()
    outcome.rounds = getattr(matcher, "rounds", 0)
    outcome.top1_searches = getattr(matcher, "top1_searches", 0)
    outcome.reverse_top1_queries = getattr(matcher, "reverse_top1_queries", 0)
    outcome.seconds = time.perf_counter() - start
    return outcome
