"""Cross-shard merge: shard-local matchings to the global matching.

Why this is exact
-----------------
Preferences are *aligned* (both sides rank a pair by the same score), so
the stable matching of any instance is unique — the greedy matching in
decreasing ``(score, -fid, -oid)`` order. Two facts make the shard
decomposition lossless:

1. **Merging best shard-local partners is a stable sub-matching.**
   Every object lives in exactly one shard and is matched to at most one
   function there, so candidate pairs never collide on objects and the
   merge is simply: each function keeps its highest-scoring shard-local
   partner. Suppose a pair ``(f, o)`` blocked the merged matching ``M``
   restricted to its matched objects, with ``o`` matched to ``g``. Then
   ``score(f, o) > score(g, o)``, so in ``o``'s shard the locally stable
   matching must give ``f`` a partner it likes at least as much as
   ``o`` — and ``M`` gives ``f`` its *best* shard-local partner, so
   ``score(f, M(f)) >= score(f, o)``: contradiction.

2. **Displaced shard winners repair like insertions.** Starting from a
   stable matching and introducing one more object, the canonical
   matching of the enlarged instance is restored by a single object
   displacement chain — the dynamic subsystem's
   :meth:`~repro.dynamic.repair.RepairEngine.release_object`. Objects
   that were matched in their shard but lost the merge are introduced
   one chain at a time; objects unmatched even in their own shard can
   be skipped entirely (adding competitors never improves an object's
   outcome, so an object unmatched against a subset of ``O`` stays
   unmatched against all of ``O``).

After the last chain the engine holds the canonical global matching —
pair-for-pair identical to single-process ``repro.match()``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..core.problem import MatchingProblem
from ..dynamic.repair import RepairEngine
from ..engine.config import MatchingConfig
from ..storage.stats import SearchStats

Triple = Tuple[int, int, float]


def merge_shard_pairs(shard_pairs: Iterable[Sequence[Triple]],
                      ) -> Tuple[List[Triple], List[int]]:
    """Keep each function's best shard-local partner.

    ``shard_pairs`` yields one sequence of ``(function_id, object_id,
    score)`` triples per shard. Returns ``(merged, displaced)`` where
    ``merged`` is the stable sub-matching (each function's best
    shard-local pair, ties broken toward the lower object id — the
    library-wide canonical discipline) and ``displaced`` are the
    object ids that were matched in their own shard but lost the merge,
    sorted ascending. Only those objects can still enter the global
    matching; they are re-introduced by repair chains.
    """
    best: Dict[int, Tuple[float, int]] = {}
    matched_somewhere: Set[int] = set()
    for pairs in shard_pairs:
        for fid, object_id, score in pairs:
            matched_somewhere.add(object_id)
            current = best.get(fid)
            if (
                current is None
                or score > current[0]
                or (score == current[0] and object_id < current[1])
            ):
                best[fid] = (score, object_id)
    merged = [
        (fid, object_id, score)
        for fid, (score, object_id) in sorted(best.items())
    ]
    kept = {object_id for _, object_id, _ in merged}
    displaced = sorted(matched_somewhere - kept)
    return merged, displaced


def cross_shard_repair(problem: MatchingProblem, config: MatchingConfig,
                       merged: Sequence[Triple],
                       displaced: Sequence[int],
                       search_stats: SearchStats = None,
                       ) -> RepairEngine:
    """Restore the canonical global matching from a merged sub-matching.

    Seeds a :class:`~repro.dynamic.repair.RepairEngine` over the *full*
    problem with the merged matching, then runs one displacement chain
    per displaced shard winner. Returns the engine, whose
    :meth:`~repro.dynamic.repair.RepairEngine.pairs` is the canonical
    matching and whose ``stats`` count the repair work (chains, steps,
    steals).
    """
    # The engine must never mutate the parent tree: tree-preserving
    # filter mode, and neither compact() nor full_rematch() is invoked.
    engine = RepairEngine(
        problem, config.replace(deletion_mode="filter"),
        search_stats=search_stats,
    )
    engine.seed_matching(merged)
    for object_id in displaced:
        engine.release_object(object_id)
    return engine
