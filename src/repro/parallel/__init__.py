"""Sharded parallel matching: partition, match per shard, merge, repair.

The paper's skyline-based matching decomposes over disjoint regions of
object space: the stable matching of ``(F, O)`` can be recovered from
the per-shard stable matchings of ``(F, O_1), ..., (F, O_K)`` for any
partition ``O = O_1 ∪ ... ∪ O_K``. This package exploits that:

1. **partition** — objects are sorted by Hilbert key and cut into ``K``
   contiguous spatial ranges (:func:`hilbert_ranges`), so every shard is
   a compact region with its own small R-tree;
2. **match** — each shard bulk-loads its tree on the configured storage
   backend and runs the configured base algorithm against *all*
   functions, concurrently on a process pool (thread/serial executors
   exist for fallback and deterministic testing);
3. **merge** — each function keeps its best shard-local partner
   (provably a stable sub-matching; see
   :func:`repro.parallel.merge.merge_shard_pairs`);
4. **repair** — every displaced shard-local winner re-enters through one
   displacement chain of the dynamic subsystem's
   :class:`~repro.dynamic.repair.RepairEngine`
   (:meth:`~repro.dynamic.repair.RepairEngine.release_object`), exactly
   like an insertion event, which restores the canonical global
   matching.

The result is pair-for-pair identical to the single-process
``repro.match()`` for every linear-preference algorithm and storage
backend; only the wall clock changes. Use it through the facade::

    result = repro.match(objects, prefs, shards=4)              # wrap sb
    result = repro.match(objects, prefs, algorithm="sharded-sb")
    engine = repro.MatchingEngine(shards=8, executor="process")
"""

from .executors import (
    BoundedThreadPool,
    ShardWorkerPool,
    available_executors,
    run_shard_tasks,
)
from .matcher import DEFAULT_SHARDS, ShardedMatcher, is_sharded_algorithm
from .merge import cross_shard_repair, merge_shard_pairs
from .partition import hilbert_ranges
from .shard import ShardOutcome, ShardTask, run_shard_task

__all__ = [
    "BoundedThreadPool",
    "DEFAULT_SHARDS",
    "ShardOutcome",
    "ShardTask",
    "ShardWorkerPool",
    "ShardedMatcher",
    "available_executors",
    "cross_shard_repair",
    "hilbert_ranges",
    "is_sharded_algorithm",
    "merge_shard_pairs",
    "run_shard_task",
    "run_shard_tasks",
]
