"""Shard executors: how the per-shard matchings actually run.

Four strategies behind one function, selected by
``MatchingConfig.executor``:

``"process"``
    A :class:`concurrent.futures.ProcessPoolExecutor` — the true
    multi-core path (each worker matches its shard in its own
    interpreter, so the GIL never serializes the skyline work). Falls
    back to serial execution when the platform cannot spawn workers
    (sandboxes without fork, missing POSIX semaphores), so a sharded
    run degrades gracefully instead of crashing.
``"thread"``
    A :class:`concurrent.futures.ThreadPoolExecutor`. Mostly useful for
    exercising the task plumbing without process startup cost; the GIL
    limits real speedup for this CPU-bound work.
``"serial"``
    Plain in-line execution, in shard order. Deterministic and
    dependency-free — the default in tests.
``"remote"``
    A :class:`~repro.net.RemoteExecutor` fanning tasks out to
    :class:`~repro.net.ShardWorkerServer` processes over sockets
    (addresses from ``MatchingConfig.remote_workers`` or the
    ``REPRO_REMOTE_WORKERS`` environment variable). Unreachable
    workers fail the run loudly — never a silent local fallback.

All four return outcomes in shard order regardless of completion
order, so the merge is deterministic.
"""

from __future__ import annotations

import threading
import warnings
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor, ThreadPoolExecutor as _TPE

from ..engine.config import EXECUTORS
from ..errors import MatchingError
from .shard import ShardOutcome, ShardTask, run_shard_task


def available_executors() -> tuple:
    """The executor names understood by :func:`run_shard_tasks`."""
    return tuple(EXECUTORS)


class ShardWorkerPool:
    """A persistent shard executor, reused across matching runs.

    ``run_shard_tasks`` spins a pool up and tears it down per call —
    fine for a one-shot ``match()``, pure overhead for a serving path
    that fans out the same shards every request (process startup alone
    can rival a small shard's matching time). A ``ShardWorkerPool`` is
    owned by a :class:`~repro.engine.plan.PreparedMatching`: the
    underlying executor is created on first use and reused for every
    subsequent run until :meth:`close`.

    ``spawn_count`` records how many times an underlying pool was
    actually constructed — the serving tests assert it stays at 1 across
    repeated runs. The process executor degrades to serial execution
    (permanently, with a warning) on platforms that cannot spawn
    workers, exactly like :func:`run_shard_tasks`.
    """

    def __init__(self, executor: str = "process",
                 max_workers: Optional[int] = None,
                 remote_workers: Optional[Sequence[str]] = None) -> None:
        if executor not in EXECUTORS:
            raise MatchingError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise MatchingError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.executor = executor
        self.max_workers = max_workers
        self.remote_workers = remote_workers
        self._remote: Optional[object] = None
        self._pool: Optional["Executor"] = None
        #: Underlying executor constructions (1 after the first parallel
        #: run; stays 1 for the pool's whole life).
        self.spawn_count = 0
        #: Task batches served (parallel or serial alike).
        self.runs = 0
        self._closed = False

    def _ensure_pool(self, num_tasks: int) -> "Executor":
        if self._pool is None:
            workers = (
                self.max_workers if self.max_workers is not None
                else num_tasks
            )
            workers = max(1, workers)
            if self.executor == "thread":
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(max_workers=workers)
            else:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=workers)
            self.spawn_count += 1
        return self._pool

    def _ensure_remote(self):
        if self._remote is None:
            from ..net.worker import RemoteExecutor

            self._remote = RemoteExecutor(
                self.remote_workers or (),
                max_workers=self.max_workers,
            )
            self.spawn_count += 1
        return self._remote

    def run(self, tasks: Sequence[ShardTask]) -> List[ShardOutcome]:
        """Run one batch of shard tasks, in shard order."""
        if self._closed:
            raise MatchingError("ShardWorkerPool is closed")
        tasks = list(tasks)
        self.runs += 1
        if not tasks:
            return []
        if self.executor == "remote":
            # Routed before every local shortcut: even a single-task
            # batch must run on the cluster the caller configured.
            return self._ensure_remote().run(tasks)
        workers = (
            self.max_workers if self.max_workers is not None else len(tasks)
        )
        if (self.executor == "serial" or len(tasks) == 1
                or max(1, workers) == 1):
            return [run_shard_task(task) for task in tasks]
        if self.executor == "thread":
            pool = self._ensure_pool(len(tasks))
            return list(pool.map(run_shard_task, tasks))
        try:
            from concurrent.futures.process import BrokenProcessPool
        except ImportError:  # pragma: no cover - exotic platforms
            BrokenProcessPool = OSError
        try:
            pool = self._ensure_pool(len(tasks))
            return list(pool.map(run_shard_task, tasks))
        except (BrokenProcessPool, OSError, PermissionError,
                ImportError) as error:
            # Platform-level pool failure only: a task-level error —
            # bad input, a bug — must propagate, not silently degrade
            # the pool to serial for the rest of its life.
            self._abandon_pool()
            self.executor = "serial"
            warnings.warn(
                f"process executor unavailable ({error!r}); "
                f"falling back to serial shard execution",
                RuntimeWarning, stacklevel=2,
            )
            return [run_shard_task(task) for task in tasks]

    def _abandon_pool(self, wait: bool = False) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=wait)
            except Exception:  # pragma: no cover - defensive
                pass
            self._pool = None

    def close(self) -> None:
        """Shut the underlying executor down (idempotent).

        Waits for the workers to exit — an abandoned half-shutdown
        executor leaves interpreter-exit hooks poking closed pipes.
        The no-wait teardown is reserved for the fallback path and GC.
        """
        self._abandon_pool(wait=True)
        remote, self._remote = self._remote, None
        if remote is not None:
            remote.close()
        self._closed = True

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self._abandon_pool()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "live" if self._pool is not None else "idle"
        )
        return (
            f"ShardWorkerPool(executor={self.executor!r}, {state}, "
            f"spawns={self.spawn_count}, runs={self.runs})"
        )


class BoundedThreadPool:
    """A lazily-created, bounded thread pool with ordered fan-out.

    The serving layer's dispatch primitive for *in-process* concurrent
    work: vectorized batch-scoring chunks (numpy releases the GIL, so
    threads genuinely overlap) and anything else that reads shared warm
    state. Unlike :class:`ShardWorkerPool` it is task-shape-agnostic —
    :meth:`map_ordered` runs any callable over items and returns results
    in submission order — and it never spawns processes, so there is
    nothing to pickle and no platform fallback to manage.

    The underlying :class:`concurrent.futures.ThreadPoolExecutor` is
    created on the first call that actually needs it (a single-item or
    single-worker map runs inline) and reused until :meth:`close`, which
    waits for in-flight work — the deterministic drain the serving
    ``close()`` contract needs.
    """

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise MatchingError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        self._pool: Optional["_TPE"] = None  # guarded-by: _lock
        self._lock = threading.Lock()
        self._closed = False        # guarded-by: _lock

    def _ensure_pool(self) -> "_TPE":
        with self._lock:
            # Re-checked under the lock: a close() racing map_ordered
            # past its unlocked fast check must not resurrect a fresh
            # (and then never shut down) executor.
            if self._closed:
                raise MatchingError("BoundedThreadPool is closed")
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers
                )
            return self._pool

    def map_ordered(self, fn: Callable, items: Sequence) -> List:
        """``[fn(item) for item in items]``, concurrently, in order.

        Exceptions propagate exactly as the inline loop would raise
        them (the first failing item's error, remaining work is still
        awaited by the executor).
        """
        items = list(items)
        # Deliberate lock-free fast check: _ensure_pool re-checks under
        # the lock before any executor can be (re)created.
        if self._closed:  # lint: disable=lock-guard
            raise MatchingError("BoundedThreadPool is closed")
        if len(items) <= 1 or self.max_workers == 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        return list(pool.map(fn, items))

    def close(self) -> None:
        """Shut the executor down, waiting for in-flight work (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "BoundedThreadPool":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # Racy-read repr by design: repr must never block on (or deadlock
    # through) the non-reentrant pool lock.
    def __repr__(self) -> str:  # pragma: no cover - cosmetic; lint: disable=lock-guard
        state = "closed" if self._closed else (
            "live" if self._pool is not None else "idle"
        )
        return f"BoundedThreadPool(max_workers={self.max_workers}, {state})"


def run_shard_tasks(tasks: Sequence[ShardTask], executor: str = "process",
                    max_workers: Optional[int] = None,
                    remote_workers: Optional[Sequence[str]] = None,
                    ) -> List[ShardOutcome]:
    """Run every shard task under the named executor, in shard order.

    One-shot convenience over :class:`ShardWorkerPool` — the pool is
    created and torn down around the single batch, so both the one-shot
    and the persistent serving path share one copy of the dispatch and
    platform-fallback policy. ``remote_workers`` only matters for
    ``executor="remote"`` (its connections are torn down with the pool;
    serving paths that want persistent connections hold a pool).
    """
    tasks = list(tasks)
    workers = max_workers if max_workers is not None else len(tasks)
    with ShardWorkerPool(
        executor=executor,
        max_workers=max(1, min(workers, max(1, len(tasks)))),
        remote_workers=remote_workers,
    ) as pool:
        return pool.run(tasks)
