"""Shard executors: how the per-shard matchings actually run.

Three strategies behind one function, selected by
``MatchingConfig.executor``:

``"process"``
    A :class:`concurrent.futures.ProcessPoolExecutor` — the true
    multi-core path (each worker matches its shard in its own
    interpreter, so the GIL never serializes the skyline work). Falls
    back to serial execution when the platform cannot spawn workers
    (sandboxes without fork, missing POSIX semaphores), so a sharded
    run degrades gracefully instead of crashing.
``"thread"``
    A :class:`concurrent.futures.ThreadPoolExecutor`. Mostly useful for
    exercising the task plumbing without process startup cost; the GIL
    limits real speedup for this CPU-bound work.
``"serial"``
    Plain in-line execution, in shard order. Deterministic and
    dependency-free — the default in tests.

All three return outcomes in shard order regardless of completion
order, so the merge is deterministic.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

from ..engine.config import EXECUTORS
from ..errors import MatchingError
from .shard import ShardOutcome, ShardTask, run_shard_task


def available_executors() -> tuple:
    """The executor names understood by :func:`run_shard_tasks`."""
    return tuple(EXECUTORS)


def _run_pool(tasks: Sequence[ShardTask], pool_class,
              max_workers: int) -> List[ShardOutcome]:
    with pool_class(max_workers=max_workers) as pool:
        return list(pool.map(run_shard_task, tasks))


def run_shard_tasks(tasks: Sequence[ShardTask], executor: str = "process",
                    max_workers: Optional[int] = None,
                    ) -> List[ShardOutcome]:
    """Run every shard task under the named executor, in shard order."""
    if executor not in EXECUTORS:
        raise MatchingError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    tasks = list(tasks)
    if not tasks:
        return []
    workers = max_workers if max_workers is not None else len(tasks)
    workers = max(1, min(workers, len(tasks)))
    if executor == "serial" or workers == 1 or len(tasks) == 1:
        return [run_shard_task(task) for task in tasks]
    if executor == "thread":
        from concurrent.futures import ThreadPoolExecutor

        return _run_pool(tasks, ThreadPoolExecutor, workers)
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            return _run_pool(tasks, ProcessPoolExecutor, workers)
        except (BrokenProcessPool, OSError, PermissionError) as error:
            warnings.warn(
                f"process executor unavailable ({error!r}); "
                f"falling back to serial shard execution",
                RuntimeWarning, stacklevel=2,
            )
    except ImportError as error:  # pragma: no cover - exotic platforms
        warnings.warn(
            f"process pools not importable ({error!r}); "
            f"falling back to serial shard execution",
            RuntimeWarning, stacklevel=2,
        )
    return [run_shard_task(task) for task in tasks]
