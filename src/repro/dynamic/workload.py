"""Streaming-workload generators: event mixes over a seeded population.

Benchmarks and property tests need reproducible event streams with a
controllable composition — how much of the churn is objects arriving,
objects leaving, users arriving, users leaving. :class:`UpdateMix`
captures the composition; :func:`generate_events` turns a mix into a
concrete, deterministic event list that is always *valid* against the
evolving population (deletes target live ids, inserts use fresh ids).

The paper-style evaluation axis is the **update ratio**: the number of
events as a fraction of the initial object count. ``events_for_ratio``
converts a ratio into an event count, and :func:`apply_events` replays a
stream on plain dictionaries to produce the surviving data — the oracle
input for from-scratch verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import Dataset
from ..errors import ReproError
from ..prefs import LinearPreference
from .events import (
    AddFunction,
    DeleteObject,
    Event,
    InsertObject,
    RemoveFunction,
    replay_events,
)


@dataclass(frozen=True)
class UpdateMix:
    """Relative frequencies of the four event kinds (need not sum to 1)."""

    insert_objects: float = 1.0
    delete_objects: float = 1.0
    add_functions: float = 1.0
    remove_functions: float = 1.0

    def weights(self) -> Tuple[float, float, float, float]:
        values = (
            self.insert_objects, self.delete_objects,
            self.add_functions, self.remove_functions,
        )
        if any(value < 0 for value in values):
            raise ReproError(f"update mix weights must be >= 0, got {values}")
        total = sum(values)
        if total <= 0:
            raise ReproError("update mix weights must not all be zero")
        return tuple(value / total for value in values)


#: Objects-only churn (a marketplace with a stable user base).
OBJECT_CHURN = UpdateMix(1.0, 1.0, 0.0, 0.0)
#: Users-only churn (a fixed catalog with arriving/leaving users).
PREFERENCE_CHURN = UpdateMix(0.0, 0.0, 1.0, 1.0)
#: The default balanced mix, weighted toward object churn (objects
#: outnumber functions in the paper's workloads).
MIXED_CHURN = UpdateMix(0.3, 0.3, 0.2, 0.2)


def events_for_ratio(objects: Dataset, update_ratio: float) -> int:
    """Event count for an update ratio relative to the initial ``|O|``."""
    if update_ratio < 0:
        raise ReproError(f"update_ratio must be >= 0, got {update_ratio}")
    return max(1, int(round(len(objects) * update_ratio)))


def generate_events(objects: Dataset, functions: Sequence[LinearPreference],
                    n_events: int, mix: UpdateMix = MIXED_CHURN,
                    seed: int = 0,
                    insert_pool: Optional[Dataset] = None,
                    start_ts: float = 0.0,
                    rate: Optional[float] = None) -> List[Event]:
    """A deterministic, always-valid event stream.

    Inserted points are drawn from ``insert_pool`` in order (so streaming
    arrivals follow the same distribution as the initial data) or
    uniformly from the unit hypercube when no pool is given; inserted
    ids continue above every id ever seen. Added functions are fresh
    Dirichlet-uniform preferences. Deletions and removals target a
    uniformly random live id; when a side is empty its departure events
    fall back to arrivals, so the requested event count is always met.

    Arrival times: with ``rate`` (events per simulated second) set, the
    ``i``-th event is stamped ``start_ts + (i + 1) / rate`` — a monotone
    non-decreasing clock. Without ``rate`` every event keeps the default
    stamp ``start_ts`` (``0.0`` unless overridden), so existing call
    sites see exactly the events they always did: identical kinds, ids,
    points and stream order for a given seed, timestamps included.
    """
    if n_events < 0:
        raise ReproError(f"n_events must be >= 0, got {n_events}")
    if rate is not None and rate <= 0:
        raise ReproError(f"rate must be > 0 events/second, got {rate}")
    weights = mix.weights()
    rng = np.random.default_rng(seed)
    dims = objects.dims

    live_objects = list(objects.ids)
    live_functions = [function.fid for function in functions]
    next_object_id = max(live_objects, default=-1) + 1
    if insert_pool is not None:
        pool = [point for _, point in insert_pool.items()]
    else:
        pool = []
    pool_position = 0
    next_function_id = max(live_functions, default=-1) + 1

    def draw_point() -> Tuple[float, ...]:
        nonlocal pool_position
        if pool:
            point = pool[pool_position % len(pool)]
            pool_position += 1
            return tuple(point)
        return tuple(float(v) for v in rng.random(dims))

    def pop_random(ids: List[int]) -> int:
        index = int(rng.integers(len(ids)))
        ids[index], ids[-1] = ids[-1], ids[index]
        return ids.pop()

    events: List[Event] = []
    kinds = np.arange(4)
    for index in range(n_events):
        if rate is None:
            ts = start_ts
        else:
            ts = start_ts + (index + 1) / rate
        kind = int(rng.choice(kinds, p=weights))
        if kind == 1 and not live_objects:
            kind = 0
        if kind == 3 and not live_functions:
            kind = 2
        if kind == 0:
            object_id = next_object_id
            next_object_id += 1
            live_objects.append(object_id)
            events.append(InsertObject(object_id, draw_point(), ts=ts))
        elif kind == 1:
            events.append(DeleteObject(pop_random(live_objects), ts=ts))
        elif kind == 2:
            fid = next_function_id
            next_function_id += 1
            live_functions.append(fid)
            raw = rng.dirichlet(np.ones(dims))
            events.append(AddFunction(
                LinearPreference.normalized(fid, raw), ts=ts))
        else:
            events.append(RemoveFunction(pop_random(live_functions), ts=ts))
    return events


def apply_events(objects: Dataset, functions: Sequence[LinearPreference],
                 events: Sequence[Event],
                 ) -> Tuple[Dataset, List[LinearPreference]]:
    """Replay a stream on plain data: the surviving (objects, functions).

    The from-scratch oracle for session equivalence: feed the result to
    ``repro.match()`` and compare against the session's matching.
    """
    points: Dict[int, Tuple[float, ...]] = dict(objects.items())
    prefs: Dict[int, LinearPreference] = {
        function.fid: function for function in functions
    }
    replay_events(points, prefs, events)
    surviving = Dataset.from_mapping(points, objects.dims,
                                     name=f"{objects.name}+events")
    return surviving, [prefs[fid] for fid in sorted(prefs)]
