"""Workload events and the session event log.

A dynamic matching session consumes a stream of four event kinds —
objects arriving and leaving, preference functions arriving and leaving —
expressed as small frozen dataclasses so streams can be generated,
logged, replayed, and asserted on in tests.

Every event carries an arrival timestamp ``ts`` (simulated seconds,
default ``0.0``). Sessions apply events strictly in *submission* order
and never consult ``ts``; the timestamp exists for time-aware drivers —
:mod:`repro.replay` interleaves churn with request arrivals by ``ts`` —
and for traces that must round-trip through serialization.

:class:`EventLog` is the session's staging area: events are appended as
they are submitted and drained in arrival order when a batch is applied
(``batch_size`` controls how many may accumulate before the session
flushes). The log also keeps running totals per event kind, which the
session surfaces in its statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Tuple, Union

from ..errors import ReproError, SessionError
from ..prefs import LinearPreference


@dataclass(frozen=True)
class InsertObject:
    """A new object arrives (id must be unused among surviving objects)."""

    object_id: int  # wire: id
    point: Tuple[float, ...]
    ts: float = 0.0

    kind = "insert_object"


@dataclass(frozen=True)
class DeleteObject:
    """An existing object leaves (sold, expired, withdrawn)."""

    object_id: int  # wire: id
    ts: float = 0.0

    kind = "delete_object"


@dataclass(frozen=True)
class AddFunction:
    """A new user/preference function arrives."""

    function: LinearPreference  # wire: fid,weights
    ts: float = 0.0

    kind = "add_function"


@dataclass(frozen=True)
class RemoveFunction:
    """An existing user/preference function leaves."""

    function_id: int  # wire: fid
    ts: float = 0.0

    kind = "remove_function"


Event = Union[InsertObject, DeleteObject, AddFunction, RemoveFunction]

#: Canonical ordering of event kinds (used for stable stats reporting).
EVENT_KINDS = (
    "insert_object", "delete_object", "add_function", "remove_function",
)


def replay_events(points: Dict[int, Tuple[float, ...]],
                  functions: Dict[int, LinearPreference],
                  events: Iterable[Event]) -> None:
    """Replay a stream onto plain ``{id: point}`` / ``{fid: function}``
    dicts, strictly in arrival order.

    The one shared definition of what an event *means* structurally —
    used by the recompute baseline and the from-scratch oracle, so they
    cannot drift apart. (The repair engine's
    :meth:`~repro.dynamic.repair.RepairEngine.apply_structural` mirrors
    it with the extra tombstone/pending bookkeeping physical tree churn
    needs.)
    """
    for event in events:
        if isinstance(event, InsertObject):
            points[event.object_id] = tuple(event.point)
        elif isinstance(event, DeleteObject):
            del points[event.object_id]
        elif isinstance(event, AddFunction):
            functions[event.function.fid] = event.function
        elif isinstance(event, RemoveFunction):
            del functions[event.function_id]
        else:
            raise ReproError(f"unknown event {event!r}")


class EventSubmitter:
    """Shared event-submission machinery of the session types.

    Subclasses provide the four typed event methods plus ``log``,
    ``config`` and ``flush()``; this mixin contributes the generic
    :meth:`submit` dispatch and the batch-size flush trigger, so the
    incremental session and the recompute baseline cannot drift on how
    streams are consumed.
    """

    def submit(self, event: Event) -> None:
        """Queue one event object (the replay/workload entry point)."""
        if isinstance(event, InsertObject):
            self.insert_object(event.object_id, event.point)
        elif isinstance(event, DeleteObject):
            self.delete_object(event.object_id)
        elif isinstance(event, AddFunction):
            self.add_function(event.function)
        elif isinstance(event, RemoveFunction):
            self.remove_function(event.function_id)
        else:
            raise SessionError(f"unknown event {event!r}")

    def _submit(self, event: Event) -> None:
        self.log.append(event)
        if len(self.log) >= self.config.batch_size:
            self.flush()


class EventLog:
    """FIFO staging area for submitted-but-not-yet-applied events."""

    def __init__(self) -> None:
        self._pending: Deque[Event] = deque()
        self.applied = 0
        self.counts: Dict[str, int] = {kind: 0 for kind in EVENT_KINDS}

    def __len__(self) -> int:
        return len(self._pending)

    def append(self, event: Event) -> None:
        self._pending.append(event)

    def drain(self) -> List[Event]:
        """Remove and return every pending event, in arrival order."""
        events = list(self._pending)
        self._pending.clear()
        self.applied += len(events)
        for event in events:
            self.counts[event.kind] += 1
        return events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog(pending={len(self)}, applied={self.applied})"
