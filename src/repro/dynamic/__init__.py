"""Dynamic matching: incremental repair over streaming updates.

The static pipeline answers "what is the stable matching of this
snapshot"; this package answers it *continuously* while the snapshot
churns. A :class:`DynamicMatcher` session (opened through
:meth:`repro.MatchingEngine.open_session` / :func:`repro.open_session`)
consumes insert/delete/add/remove events and keeps the canonical stable
matching valid by localized displacement chains — the matching after any
event sequence equals a from-scratch ``repro.match()`` on the surviving
data:

    >>> import repro
    >>> objects = repro.generate_independent(n=90, dims=2, seed=3)
    >>> prefs = repro.generate_preferences(n=6, dims=2, seed=4)
    >>> session = repro.open_session(objects, prefs, backend="memory")
    >>> session.insert_object(1000, (0.99, 0.98))   # a dominant arrival
    >>> session.delete_object(session.pairs[-1].object_id)
    >>> session.remove_function(prefs[0].fid)
    >>> scratch = repro.match(session.objects(), session.functions(),
    ...                       backend="memory")
    >>> session.matching().as_set() == scratch.as_set()
    True

The same displacement-chain machinery (exposed as
:meth:`RepairEngine.seed_matching` / :meth:`RepairEngine.release_object`)
drives the exact cross-shard merge of :mod:`repro.parallel`.

Modules
-------
``events``
    Event dataclasses and the batched :class:`EventLog`.
``session``
    The :class:`DynamicMatcher` workload API (validation, batching,
    repair-vs-recompute decision).
``repair``
    The :class:`RepairEngine`: displacement chains, the maintained
    available-pool skyline, tombstoned/buffered physical tree churn.
``baseline``
    :class:`RecomputeSession`, the rebuild-everything-per-flush baseline.
``workload``
    Deterministic event-stream generators and the replay oracle.
"""

from .baseline import RecomputeSession
from .events import (
    AddFunction,
    DeleteObject,
    Event,
    EventLog,
    InsertObject,
    RemoveFunction,
    replay_events,
)
from .repair import RepairEngine, RepairStats
from .session import DynamicMatcher, SessionCheckpoint
from .workload import (
    MIXED_CHURN,
    OBJECT_CHURN,
    PREFERENCE_CHURN,
    UpdateMix,
    apply_events,
    events_for_ratio,
    generate_events,
)

__all__ = [
    "AddFunction",
    "DeleteObject",
    "DynamicMatcher",
    "Event",
    "EventLog",
    "InsertObject",
    "MIXED_CHURN",
    "OBJECT_CHURN",
    "PREFERENCE_CHURN",
    "RecomputeSession",
    "RemoveFunction",
    "RepairEngine",
    "RepairStats",
    "SessionCheckpoint",
    "UpdateMix",
    "apply_events",
    "events_for_ratio",
    "generate_events",
    "replay_events",
]
