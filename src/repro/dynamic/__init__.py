"""Dynamic matching: incremental repair over streaming updates.

The static pipeline answers "what is the stable matching of this
snapshot"; this package answers it *continuously* while the snapshot
churns. A :class:`DynamicMatcher` session (opened through
:meth:`repro.MatchingEngine.open_session` / :func:`repro.open_session`)
consumes insert/delete/add/remove events and keeps the canonical stable
matching valid by localized displacement chains — the matching after any
event sequence equals a from-scratch ``repro.match()`` on the surviving
data.

Modules
-------
``events``
    Event dataclasses and the batched :class:`EventLog`.
``session``
    The :class:`DynamicMatcher` workload API (validation, batching,
    repair-vs-recompute decision).
``repair``
    The :class:`RepairEngine`: displacement chains, the maintained
    available-pool skyline, tombstoned/buffered physical tree churn.
``baseline``
    :class:`RecomputeSession`, the rebuild-everything-per-flush baseline.
``workload``
    Deterministic event-stream generators and the replay oracle.
"""

from .baseline import RecomputeSession
from .events import (
    AddFunction,
    DeleteObject,
    Event,
    EventLog,
    InsertObject,
    RemoveFunction,
    replay_events,
)
from .repair import RepairEngine, RepairStats
from .session import DynamicMatcher
from .workload import (
    MIXED_CHURN,
    OBJECT_CHURN,
    PREFERENCE_CHURN,
    UpdateMix,
    apply_events,
    events_for_ratio,
    generate_events,
)

__all__ = [
    "AddFunction",
    "DeleteObject",
    "DynamicMatcher",
    "Event",
    "EventLog",
    "InsertObject",
    "MIXED_CHURN",
    "OBJECT_CHURN",
    "PREFERENCE_CHURN",
    "RecomputeSession",
    "RemoveFunction",
    "RepairEngine",
    "RepairStats",
    "UpdateMix",
    "apply_events",
    "events_for_ratio",
    "generate_events",
    "replay_events",
]
