"""The long-lived dynamic matching session.

:class:`DynamicMatcher` is the workload-level API of the dynamic
subsystem: open it once (via
:meth:`repro.MatchingEngine.open_session` or :func:`repro.open_session`)
and feed it a stream of ``insert_object`` / ``delete_object`` /
``add_function`` / ``remove_function`` events; it keeps the canonical
stable matching valid at every read.

Events are validated eagerly, staged in an :class:`~repro.dynamic.events.EventLog`,
and applied in batches of ``config.batch_size`` (1 = immediately).
Applying a batch chooses between two strategies:

* **localized repair** (the default): each event runs one displacement
  chain in the :class:`~repro.dynamic.repair.RepairEngine` — work
  proportional to the disruption the event actually caused;
* **full recompute**: when a single batch carries at least
  ``config.repair_threshold × |F|`` events, per-event chains stop paying
  off and the session re-runs the configured matcher from scratch.

Reads (:meth:`matching`, :attr:`pairs`, :meth:`partner_of`) flush
pending events first, so results always reflect every submitted event.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.problem import MatchingProblem
from ..core.result import MatchPair
from ..engine.config import MatchingConfig
from ..engine.result import MatchResult
from ..errors import DimensionalityError, SessionError
from ..prefs import LinearPreference
from ..storage.stats import SearchStats
from .events import (
    AddFunction,
    DeleteObject,
    Event,
    EventLog,
    EventSubmitter,
    InsertObject,
    RemoveFunction,
)
from .repair import RepairEngine


@dataclass(frozen=True)
class SessionCheckpoint:
    """The complete logical state of a :class:`DynamicMatcher`, frozen.

    Captures everything the canonical matching is a function of — the
    surviving points and preference functions, the matched triples with
    their exact scores, the id-reuse blocklist — plus the event-log
    totals, so a restored session reports the same ``events_applied``
    counters it did at capture time. Physical state (tree layout,
    tombstone/pending buffers, skyline caches) is deliberately *not*
    captured: the matching is determined by logical state alone (the
    canonical greedy matching is unique), so :meth:`DynamicMatcher.restore`
    may rebuild physical state from scratch and still reproduce
    bit-identical pairs.
    """

    points: Tuple[Tuple[int, Tuple[float, ...]], ...]
    functions: Tuple[LinearPreference, ...]
    pairs: Tuple[Tuple[int, int, float], ...]
    blocked: Tuple[int, ...]
    events_applied: int
    event_counts: Tuple[Tuple[str, int], ...]


class DynamicMatcher(EventSubmitter):
    """A streaming matching session with incremental repair.

    Construct through the engine facade::

        session = repro.open_session(objects, prefs, backend="memory")
        session.insert_object(9001, (0.7, 0.4, 0.9))
        session.delete_object(17)
        session.add_function(repro.LinearPreference(500, (0.5, 0.3, 0.2)))
        result = session.matching()   # equals repro.match() on the
                                      # surviving data, at a fraction of
                                      # the cost

    The constructor itself expects an already-staged
    :class:`~repro.core.problem.MatchingProblem` whose config uses
    tree-preserving ``deletion_mode="filter"``.
    """

    def __init__(self, problem: MatchingProblem, config: MatchingConfig,
                 backend_name: str = "",
                 search_stats: Optional[SearchStats] = None,
                 on_change=None) -> None:
        for function in problem.functions:
            if not isinstance(function, LinearPreference):
                raise SessionError(
                    "dynamic sessions require linear preference functions; "
                    f"got {type(function).__name__}"
                )
        if config.deletion_mode != "filter":
            raise SessionError(
                "dynamic sessions require deletion_mode='filter' (the "
                "session owns all physical tree churn)"
            )
        self.config = config
        self.backend_name = backend_name
        self.search_stats = search_stats
        #: Optional observer called with each accepted event *before* it
        #: is queued — the hook a :class:`~repro.engine.plan.PreparedMatching`
        #: uses to invalidate its served-result cache the moment the
        #: session's object set starts diverging.
        self.on_change = on_change
        self.log = EventLog()
        self._repair = RepairEngine(problem, config, search_stats=search_stats)
        self._closed = False
        self._cpu_seconds = 0.0
        # Projected membership for eager validation of queued events.
        self._projected_objects = set(self._repair.points)
        self._projected_functions = set(self._repair.functions)
        # Ids blocked for reuse (deleted while physically rooted in the
        # tree; freed again by compaction) and ids inserted by events
        # still queued in the current batch.
        self._projected_blocked = set()
        self._queued_new = set()
        start = time.perf_counter()
        self._repair.full_rematch()
        self._cpu_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return self._repair.dims

    @property
    def num_objects(self) -> int:
        """Surviving objects, including queued (validated) events."""
        return len(self._projected_objects)

    @property
    def num_functions(self) -> int:
        return len(self._projected_functions)

    @property
    def pairs(self) -> List[MatchPair]:
        """Current stable pairs in canonical order (flushes first)."""
        self.flush()
        return self._repair.pairs()

    def partner_of(self, function_id: int) -> Optional[int]:
        """The object currently assigned to a function (or ``None``)."""
        self.flush()
        return self._repair.matched_function.get(function_id)

    def assigned_to(self, object_id: int) -> Optional[int]:
        """The function currently holding an object (or ``None``)."""
        self.flush()
        return self._repair.matched_object.get(object_id)

    def objects(self):
        """The surviving objects as a :class:`~repro.data.Dataset`."""
        self.flush()
        return self._repair.dataset()

    def functions(self) -> List[LinearPreference]:
        """The surviving preference functions, sorted by id."""
        self.flush()
        return self._repair.function_list()

    def io_snapshot(self):
        """Cumulative simulated I/O of the session's storage stack."""
        return self._repair.problem.io_stats.snapshot()

    @property
    def stats(self) -> Dict[str, int]:
        """Repair counters plus per-kind event totals."""
        counters = self._repair.stats.as_dict()
        counters.update(self.log.counts)
        counters["events_applied"] = self.log.applied
        return counters

    # ------------------------------------------------------------------
    # Event submission
    # ------------------------------------------------------------------
    def insert_object(self, object_id: int,
                      point: Iterable[float]) -> None:
        """Queue the arrival of a new object."""
        point = tuple(float(value) for value in point)
        self._check_open()
        if len(point) != self.dims:
            raise DimensionalityError(self.dims, len(point), "point")
        if any(not np.isfinite(v) or not 0.0 <= v <= 1.0 for v in point):
            raise SessionError(
                f"object {object_id} coordinates must be finite and in "
                f"[0, 1]; normalize raw data with Dataset.from_raw"
            )
        if object_id < 0:
            raise SessionError(f"object ids must be non-negative, got {object_id}")
        if object_id in self._projected_objects:
            raise SessionError(f"object id {object_id} is already present")
        if object_id in self._projected_blocked:
            raise SessionError(
                f"object id {object_id} was deleted and is not reusable "
                f"until the next compaction"
            )
        self._projected_objects.add(object_id)
        self._queued_new.add(object_id)
        self._submit(InsertObject(object_id, point))

    def delete_object(self, object_id: int) -> None:
        """Queue the departure of an existing object."""
        self._check_open()
        if object_id not in self._projected_objects:
            raise SessionError(f"unknown object id {object_id}")
        self._projected_objects.discard(object_id)
        # Only a *physically rooted* deleted id is blocked for reuse (its
        # old point sits in the tree until compaction). Deleting a
        # buffered insert — whether still queued or already applied but
        # pending compaction — frees the id immediately; the repair layer
        # drops its skyline cache on such reuse.
        if (
            object_id not in self._queued_new
            and object_id not in self._repair.pending
        ):
            self._projected_blocked.add(object_id)
        self._submit(DeleteObject(object_id))

    def add_function(self, function: LinearPreference) -> None:
        """Queue the arrival of a new preference function."""
        self._check_open()
        if not isinstance(function, LinearPreference):
            raise SessionError(
                "add_function expects a LinearPreference, got "
                f"{type(function).__name__}"
            )
        if function.dims != self.dims:
            raise DimensionalityError(self.dims, function.dims, "weights")
        if function.fid in self._projected_functions:
            raise SessionError(
                f"function id {function.fid} is already present"
            )
        self._projected_functions.add(function.fid)
        self._submit(AddFunction(function))

    def remove_function(self, function_id: int) -> None:
        """Queue the departure of an existing preference function."""
        self._check_open()
        if function_id not in self._projected_functions:
            raise SessionError(f"unknown function id {function_id}")
        self._projected_functions.discard(function_id)
        self._submit(RemoveFunction(function_id))

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def _submit(self, event: Event) -> None:
        # Observers run first: a validated event is about to change the
        # session's world, so bound caches must go stale *before* any
        # flush this submission may trigger.
        if self.on_change is not None:
            self.on_change(event)
        super()._submit(event)

    # ------------------------------------------------------------------
    # Batch application
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Apply every queued event now; returns how many were applied."""
        events = self.log.drain()
        if not events:
            return 0
        start = time.perf_counter()
        threshold = self.config.repair_threshold * max(
            1, len(self._repair.functions)
        )
        if len(events) >= threshold:
            self._apply_recompute(events)
        else:
            for event in events:
                self._apply_repair(event)
            self._repair.compact()
        # Re-derive the reuse blocklist from what is actually still
        # rooted in the tree (compaction may have freed ids).
        self._queued_new.clear()
        self._projected_blocked = set(self._repair.tombstones)
        self._cpu_seconds += time.perf_counter() - start
        return len(events)

    def _apply_repair(self, event: Event) -> None:
        if isinstance(event, InsertObject):
            self._repair.insert_object(event.object_id, event.point)
        elif isinstance(event, DeleteObject):
            self._repair.delete_object(event.object_id)
        elif isinstance(event, AddFunction):
            self._repair.add_function(event.function)
        else:
            self._repair.remove_function(event.function_id)

    def _apply_recompute(self, events: Sequence[Event]) -> None:
        """High-churn batch: apply structurally (in order), then rematch."""
        self._repair.apply_structural(events)
        self._repair.full_rematch()

    # ------------------------------------------------------------------
    # Checkpoint / restore (the repro.replay rewind hooks)
    # ------------------------------------------------------------------
    def checkpoint(self) -> SessionCheckpoint:
        """Capture the session's logical state (flushes first).

        The returned :class:`SessionCheckpoint` is immutable and holds
        no references to the session's mutable internals; it stays valid
        however far the session advances afterwards.
        """
        self._check_open()
        self.flush()
        repair = self._repair
        return SessionCheckpoint(
            points=tuple(sorted(repair.points.items())),
            functions=tuple(repair.function_list()),
            pairs=tuple(
                (fid, object_id, repair.pair_score[fid])
                for fid, object_id in sorted(repair.matched_function.items())
            ),
            blocked=tuple(sorted(self._projected_blocked)),
            events_applied=self.log.applied,
            event_counts=tuple(sorted(self.log.counts.items())),
        )

    def restore(self, checkpoint: SessionCheckpoint) -> None:
        """Return the session, in place, to a captured checkpoint.

        Rebuilds a fresh physical staging (backend problem + repair
        engine) from the checkpoint's logical state and installs the
        recorded matching wholesale via
        :meth:`~repro.dynamic.repair.RepairEngine.seed_matching`. Because
        the canonical matching and every repair chain depend only on the
        logical point/function state (unique greedy matching, canonical
        tie rules) — never on physical tree layout or tombstone
        placement — replaying the same event stream from the restored
        state reproduces bit-identical pairs and scores.

        Two deliberate non-goals: the restored physical tree is compact
        (the original's tombstone backlog is not reproduced, so the
        id-reuse blocklist can free ids *earlier* after the next flush),
        and ``on_change`` observers are not notified — a restore is a
        rewind, not churn; callers owning derived state (the serving
        cache, ``objects_version``) rewind it through their own
        snapshots (see :mod:`repro.replay`).
        """
        from ..engine.backends import get_backend

        self._check_open()
        # Pending-but-unflushed events would be silently lost otherwise;
        # apply them so the discard below is explicit state replacement.
        self.flush()
        from ..data import Dataset

        points = dict(checkpoint.points)
        functions = list(checkpoint.functions)
        dataset = Dataset.from_mapping(points, self.dims, name="session")
        problem = get_backend(self.config.backend).build_problem(
            dataset, functions, self.config
        )
        start = time.perf_counter()
        self._repair = RepairEngine(
            problem, self.config, search_stats=self.search_stats
        )
        self._repair.seed_matching(checkpoint.pairs)
        self._cpu_seconds += time.perf_counter() - start
        self.log = EventLog()
        self.log.applied = checkpoint.events_applied
        self.log.counts.update(dict(checkpoint.event_counts))
        self._projected_objects = set(points)
        self._projected_functions = {f.fid for f in functions}
        self._projected_blocked = set(checkpoint.blocked)
        self._queued_new = set()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def matching(self) -> MatchResult:
        """A :class:`~repro.engine.result.MatchResult` snapshot.

        Equal, pair for pair, to ``repro.match()`` on the surviving
        objects and functions with the session's configuration.
        """
        self.flush()
        repair = self._repair
        pairs = repair.pairs()
        matched = {pair.function_id for pair in pairs}
        unmatched = [
            fid for fid in sorted(repair.functions) if fid not in matched
        ]
        return MatchResult(
            pairs,
            unmatched_functions=unmatched,
            unmatched_objects_count=len(repair.points) - len(pairs),
            algorithm=f"dynamic-{self.config.algorithm}",
            backend=self.backend_name,
            io=self.io_snapshot(),
            cpu_seconds=self._cpu_seconds,
            seed=self.config.seed,
            stats={key: float(value) for key, value in self.stats.items()},
        )

    def close(self) -> "MatchResult":
        """Flush, snapshot, and refuse further events."""
        result = self.matching()
        self._closed = True
        return result

    def __enter__(self) -> "DynamicMatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicMatcher(|O|={self.num_objects}, "
            f"|F|={self.num_functions}, matched={len(self._repair.matched_function)}, "
            f"algorithm={self.config.algorithm!r}, pending={len(self.log)})"
        )
